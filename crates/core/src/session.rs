//! The [`Session`]: one compiled program, its whole artifact chain, and
//! coefficient-level incremental recompilation.
//!
//! A session owns the compiled artifacts the engines and the optimizer
//! share — graph, per-node ranges, the NA gain model, the per-sample
//! combinational view, built LTI engines, and the concurrent histogram
//! memo — behind lazily built, `Arc`-shared stages:
//!
//! ```text
//!            Dfg + input ranges                 (Session::new)
//!                    │
//!                    ▼
//!            node ranges  ───────────────┐      (lazy; counted)
//!                    │                   │
//!         ┌──────────┼──────────┐        │
//!         ▼          ▼          ▼        ▼
//!      NaModel   per-sample   WlConfig  coeff sites
//!         │        view       (per request)
//!         ▼
//!     LtiEngine (per bins)         histogram memo (shared, concurrent)
//! ```
//!
//! [`Session::with_coefficients`] is the incremental-recompilation seam:
//! a "same shape, new constants" update — the inner loop of design-space
//! exploration — patches the built stages instead of rebuilding them.
//! Lowering never reruns (the graph skeleton is cloned with constants
//! swapped), range analysis re-evaluates only the downstream cones of
//! the changed constants, and the NA model re-simulates impulse gains
//! only for sources whose transfer path crosses a changed coefficient,
//! cloning every other gain from the donor model.  Stage-build counters
//! ([`Session::stats`]) make the reuse observable and testable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use sna_dfg::{Dfg, DfgError, LtiOptions, NodeId, Op, RangeOptions};
use sna_fixp::WlConfig;
use sna_interval::Interval;

use crate::engine::{AnalysisReport, AnalysisRequest, WlChoice};
use crate::{EngineKind, HistMemo, LtiEngine, NaModel, SnaError};

/// How the node-range stage was computed (needed to patch it the same
/// way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RangeMethod {
    /// Interval fixpoint ([`Dfg::ranges_interval`]).
    Interval,
    /// LTI impulse-based ranges ([`Dfg::ranges_lti`]) — the fallback for
    /// linear feedback whose interval iteration diverges.
    Lti,
}

/// The node-range stage: per-node value intervals plus provenance.
#[derive(Debug)]
struct RangeStage {
    ranges: Arc<Vec<Interval>>,
    method: RangeMethod,
}

/// The per-sample stage of a sequential graph: the combinational view
/// with delay-state inputs appended, plus their value ranges.
#[derive(Debug)]
pub struct PerSample {
    /// The combinational view ([`Dfg::combinational_view`]).
    pub view: Dfg,
    /// Input ranges of the view: the original inputs followed by the
    /// delay-state ranges from range analysis of the original graph.
    pub ranges: Vec<Interval>,
}

/// Stage-build counters, shared across a session and every
/// coefficient-swapped descendant (so tests can assert that a swap did
/// *not* trigger full rebuilds).
#[derive(Debug, Default)]
struct Counters {
    range_builds: AtomicU64,
    range_patches: AtomicU64,
    na_builds: AtomicU64,
    na_patches: AtomicU64,
    gains_rebuilt: AtomicU64,
    gains_derived: AtomicU64,
    gains_reused: AtomicU64,
    view_builds: AtomicU64,
    lti_builds: AtomicU64,
    vm_compiles: AtomicU64,
}

/// A snapshot of a session family's stage-build counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Full range analyses run.
    pub range_builds: u64,
    /// Cone-limited (or fallback) range re-evaluations from
    /// [`Session::with_coefficients`].
    pub range_patches: u64,
    /// Full NA gain-model builds (one impulse analysis per source).
    pub na_builds: u64,
    /// Gain-model patches from [`Session::with_coefficients`].
    pub na_patches: u64,
    /// Impulse analyses re-simulated across all patches.
    pub gains_rebuilt: u64,
    /// Impulse responses derived from stored sequences by the consumer
    /// recurrence (no simulation) across all patches.
    pub gains_derived: u64,
    /// Impulse analyses cloned from a donor model across all patches.
    pub gains_reused: u64,
    /// Per-sample combinational views built.
    pub view_builds: u64,
    /// LTI engines built (one per requested bin count).
    pub lti_builds: u64,
    /// VM bytecode programs compiled (shape-level: shared across
    /// coefficient swaps).
    pub vm_compiles: u64,
}

/// Built LTI engines kept per session before the per-bins map is swept.
const LTI_CACHE_CAP: usize = 8;

/// One compiled program and its lazily built, shareable artifact chain
/// (stage graph in the source module's header docs and in
/// `crates/core/README.md`). All stages are `Arc`-shared and
/// thread-safe: a server can hand one session to many worker threads,
/// and an optimizer takes its model and memo from here instead of
/// rebuilding them.
#[derive(Debug)]
pub struct Session {
    dfg: Arc<Dfg>,
    input_ranges: Arc<Vec<Interval>>,
    counters: Arc<Counters>,
    ranges: OnceLock<Result<RangeStage, SnaError>>,
    na: OnceLock<Result<Arc<NaModel>, SnaError>>,
    per_sample: OnceLock<Result<Arc<PerSample>, SnaError>>,
    lti: Mutex<std::collections::HashMap<usize, Arc<LtiEngine>>>,
    hist_memo: Arc<HistMemo>,
    /// The lowered bytecode program (see `sna_vm`). Shape-only — no
    /// constant values or quantizers baked in — so coefficient swaps
    /// share it.
    vm: OnceLock<Arc<sna_vm::Program>>,
}

impl Session {
    /// Opens a session over a compiled graph and its input ranges.
    ///
    /// Nothing is analyzed yet; stages build on first use.
    ///
    /// # Errors
    ///
    /// [`SnaError::Dfg`] wrapping `WrongInputCount` when the range count
    /// does not match the graph's inputs.
    pub fn new(dfg: Dfg, input_ranges: Vec<Interval>) -> Result<Self, SnaError> {
        if input_ranges.len() != dfg.n_inputs() {
            return Err(SnaError::Dfg(DfgError::WrongInputCount {
                expected: dfg.n_inputs(),
                got: input_ranges.len(),
            }));
        }
        Ok(Session {
            dfg: Arc::new(dfg),
            input_ranges: Arc::new(input_ranges),
            counters: Arc::new(Counters::default()),
            ranges: OnceLock::new(),
            na: OnceLock::new(),
            per_sample: OnceLock::new(),
            lti: Mutex::new(std::collections::HashMap::new()),
            hist_memo: Arc::new(HistMemo::new()),
            vm: OnceLock::new(),
        })
    }

    /// The compiled graph.
    #[must_use]
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The declared input ranges, in input order.
    #[must_use]
    pub fn input_ranges(&self) -> &[Interval] {
        &self.input_ranges
    }

    /// The graph's coefficient vector: every `Const` value in
    /// [`Dfg::const_nodes`] order — the argument shape
    /// [`Session::with_coefficients`] expects back.
    #[must_use]
    pub fn coefficients(&self) -> Vec<f64> {
        self.dfg.const_values()
    }

    /// The session-owned concurrent histogram memo, shared with every
    /// evaluator derived from this session (see
    /// [`HistMemo`]).
    #[must_use]
    pub fn hist_memo(&self) -> &Arc<HistMemo> {
        &self.hist_memo
    }

    /// A snapshot of the stage-build counters of this session *family*
    /// (counters are shared with coefficient-swapped descendants).
    #[must_use]
    pub fn stats(&self) -> SessionStats {
        let c = &self.counters;
        SessionStats {
            range_builds: c.range_builds.load(Ordering::Relaxed),
            range_patches: c.range_patches.load(Ordering::Relaxed),
            na_builds: c.na_builds.load(Ordering::Relaxed),
            na_patches: c.na_patches.load(Ordering::Relaxed),
            gains_rebuilt: c.gains_rebuilt.load(Ordering::Relaxed),
            gains_derived: c.gains_derived.load(Ordering::Relaxed),
            gains_reused: c.gains_reused.load(Ordering::Relaxed),
            view_builds: c.view_builds.load(Ordering::Relaxed),
            lti_builds: c.lti_builds.load(Ordering::Relaxed),
            vm_compiles: c.vm_compiles.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Lazily built stages
    // ------------------------------------------------------------------

    fn ranges_stage(&self) -> Result<(Arc<Vec<Interval>>, RangeMethod), SnaError> {
        let stage = self.ranges.get_or_init(|| {
            self.counters.range_builds.fetch_add(1, Ordering::Relaxed);
            match self
                .dfg
                .ranges_interval(&self.input_ranges, &RangeOptions::default())
            {
                Ok(r) => Ok(RangeStage {
                    ranges: Arc::new(r),
                    method: RangeMethod::Interval,
                }),
                Err(DfgError::RangeDivergence { .. }) if self.dfg.is_linear() => self
                    .dfg
                    .ranges_lti(&self.input_ranges, &LtiOptions::default())
                    .map(|r| RangeStage {
                        ranges: Arc::new(r),
                        method: RangeMethod::Lti,
                    })
                    .map_err(SnaError::Dfg),
                Err(e) => Err(SnaError::Dfg(e)),
            }
        });
        match stage {
            Ok(s) => Ok((Arc::clone(&s.ranges), s.method)),
            Err(e) => Err(e.clone()),
        }
    }

    /// Per-node value ranges (the mirror of
    /// [`Dfg::ranges_auto`] with the default options), built once and
    /// shared.
    ///
    /// # Errors
    ///
    /// Range-analysis failures, cached: repeated calls fail fast.
    pub fn node_ranges(&self) -> Result<Arc<Vec<Interval>>, SnaError> {
        self.ranges_stage().map(|(r, _)| r)
    }

    /// The NA gain model, built once (per coefficient set) and shared.
    ///
    /// # Errors
    ///
    /// [`NaModel::build`]'s failures (nonlinear graphs, unstable
    /// feedback), cached.
    pub fn na_model(&self) -> Result<Arc<NaModel>, SnaError> {
        self.na
            .get_or_init(|| {
                // Linearity first, so nonlinear graphs keep the
                // `NonlinearNode` diagnostic even when their range
                // analysis would also fail.
                self.dfg.require_linear()?;
                let (ranges, _) = self.ranges_stage()?;
                self.counters.na_builds.fetch_add(1, Ordering::Relaxed);
                NaModel::build_with_ranges(&self.dfg, &ranges, &LtiOptions::default()).map(Arc::new)
            })
            .clone()
    }

    /// Whether the NA gain model stage has been built (or failed) —
    /// hit/miss accounting for callers that report model-level caching.
    #[must_use]
    pub fn na_model_built(&self) -> bool {
        self.na.get().is_some()
    }

    /// The per-sample combinational view of a sequential graph (delays
    /// become state inputs ranged by range analysis), built once and
    /// shared. Combinational graphs get a cheap passthrough copy.
    ///
    /// # Errors
    ///
    /// Range-analysis failures.
    pub fn per_sample(&self) -> Result<Arc<PerSample>, SnaError> {
        self.per_sample
            .get_or_init(|| {
                let mut ranges = (*self.input_ranges).clone();
                if !self.dfg.is_combinational() {
                    let (node_ranges, _) = self.ranges_stage()?;
                    ranges.extend(
                        self.dfg
                            .delay_nodes()
                            .iter()
                            .map(|d| node_ranges[d.index()]),
                    );
                }
                self.counters.view_builds.fetch_add(1, Ordering::Relaxed);
                Ok(Arc::new(PerSample {
                    view: self.dfg.combinational_view(),
                    ranges,
                }))
            })
            .clone()
    }

    /// The per-sample view plus a word-length configuration for it — the
    /// preamble shared by every combinational engine analyzing a
    /// sequential graph. Only [`WlChoice::Uniform`] can be remapped onto
    /// the derived graph (it has extra state-input nodes).
    ///
    /// # Errors
    ///
    /// [`SnaError::SequentialGraph`] for non-uniform word lengths;
    /// range-analysis / format failures otherwise.
    pub fn per_sample_config(
        &self,
        words: &WlChoice,
    ) -> Result<(Arc<PerSample>, WlConfig), SnaError> {
        let Some(bits) = words.uniform_bits() else {
            return Err(SnaError::SequentialGraph);
        };
        let ps = self.per_sample()?;
        let config = WlConfig::from_ranges(&ps.view, &ps.ranges, bits)?;
        Ok((ps, config))
    }

    /// The LTI engine at a given histogram resolution, built from the
    /// shared gain model and cached per `bins`.
    ///
    /// # Errors
    ///
    /// Same as [`Session::na_model`].
    pub fn lti_engine(&self, bins: usize) -> Result<Arc<LtiEngine>, SnaError> {
        {
            let cache = self.lti.lock().expect("lti cache lock");
            if let Some(engine) = cache.get(&bins) {
                return Ok(Arc::clone(engine));
            }
        }
        let model = self.na_model()?;
        let engine = Arc::new(LtiEngine::from_model(model, bins));
        let mut cache = self.lti.lock().expect("lti cache lock");
        if cache.len() >= LTI_CACHE_CAP {
            cache.clear();
        }
        let entry = cache.entry(bins).or_insert_with(|| {
            self.counters.lti_builds.fetch_add(1, Ordering::Relaxed);
            engine
        });
        Ok(Arc::clone(entry))
    }

    /// The lowered bytecode program of this graph's shape, compiled
    /// once and shared (including across [`Session::with_coefficients`]
    /// descendants — the program stores node ids, not values, so a
    /// coefficient swap cannot invalidate it).
    #[must_use]
    pub fn vm_program(&self) -> Arc<sna_vm::Program> {
        Arc::clone(self.vm.get_or_init(|| {
            self.counters.vm_compiles.fetch_add(1, Ordering::Relaxed);
            Arc::new(sna_vm::Program::compile(&self.dfg))
        }))
    }

    /// Whether the VM program stage has been compiled.
    #[must_use]
    pub fn vm_program_built(&self) -> bool {
        self.vm.get().is_some()
    }

    /// A word-length configuration for this graph under `choice`,
    /// built from the cached node ranges (bit-identical to
    /// `WlConfig::from_ranges` on the same graph).
    ///
    /// # Errors
    ///
    /// Range-analysis and format-construction failures.
    pub fn wl_config(&self, choice: &WlChoice) -> Result<WlConfig, SnaError> {
        match choice {
            WlChoice::Config(cfg) => Ok(cfg.clone()),
            WlChoice::Uniform(w) => {
                let ranges = self.node_ranges()?;
                WlConfig::from_precomputed_ranges(&ranges, &vec![*w; self.dfg.len()])
                    .map_err(SnaError::Fixp)
            }
            WlChoice::PerNode(w) => {
                let ranges = self.node_ranges()?;
                WlConfig::from_precomputed_ranges(&ranges, w).map_err(SnaError::Fixp)
            }
        }
    }

    // ------------------------------------------------------------------
    // Analysis dispatch
    // ------------------------------------------------------------------

    /// Resolves [`EngineKind::Auto`] against this graph's structure:
    /// LTI for linear graphs (with or without feedback), histogram
    /// propagation for nonlinear combinational graphs.
    ///
    /// # Errors
    ///
    /// [`SnaError::SequentialGraph`] for nonlinear sequential graphs,
    /// which no engine handles.
    pub fn resolve_engine(&self, kind: EngineKind) -> Result<EngineKind, SnaError> {
        match kind {
            EngineKind::Auto => {
                if self.dfg.is_linear() {
                    Ok(EngineKind::Lti)
                } else if self.dfg.is_combinational() {
                    Ok(EngineKind::Dfg)
                } else {
                    Err(SnaError::SequentialGraph)
                }
            }
            concrete => Ok(concrete),
        }
    }

    /// Runs one analysis request through the [`crate::engine::Engine`]
    /// trait, resolving `Auto`, and wraps the result with provenance and
    /// timing.
    ///
    /// # Errors
    ///
    /// The selected engine's failures.
    pub fn analyze(&self, req: &AnalysisRequest) -> Result<AnalysisReport, SnaError> {
        let started = Instant::now();
        // Pre-flight budget check: an already-expired deadline fails
        // before any engine work (engines with long inner loops also
        // check at their own checkpoints).
        req.budget.check()?;
        let kind = self.resolve_engine(req.engine)?;
        let engine = kind.engine().expect("resolved kinds are concrete");
        let mut reports = engine.run(self, req)?;
        if !req.include_pdf {
            for (_, report) in &mut reports {
                report.histogram = None;
            }
        }
        Ok(AnalysisReport {
            engine: kind,
            kind: engine.report_kind(),
            reports,
            elapsed: started.elapsed(),
        })
    }

    // ------------------------------------------------------------------
    // Coefficient-level incremental recompilation
    // ------------------------------------------------------------------

    /// A new session for "the same shape with these constants", reusing
    /// every artifact the swap cannot have invalidated.
    ///
    /// `coeffs` replaces the graph's `Const` values in
    /// [`Dfg::const_nodes`] order (compare [`Session::coefficients`]).
    /// Lowering never reruns — the graph skeleton is cloned with the
    /// values patched in.  If the donor's range stage is built, ranges
    /// are re-evaluated only inside the union downstream cone of the
    /// changed constants; if the donor's NA model is built, impulse
    /// gains are re-simulated only for sources whose transfer path
    /// crosses a changed local coefficient (a multiplier/divider whose
    /// constant-driven operand changed value) and cloned otherwise.
    /// Histogram state (the memo, LTI shapes, the per-sample view) is
    /// value-dependent and starts fresh.
    ///
    /// The returned session shares this session's stage counters, so
    /// [`Session::stats`] observes what was skipped.
    ///
    /// # Errors
    ///
    /// [`SnaError::WrongCoefficientCount`] for a mis-sized vector.
    /// Patch failures (e.g. ranges diverging under the new constants)
    /// are *not* errors here: the affected stage is left unbuilt and
    /// reports its failure lazily, exactly like a cold session.
    pub fn with_coefficients(&self, coeffs: &[f64]) -> Result<Session, SnaError> {
        let const_nodes = self.dfg.const_nodes();
        if coeffs.len() != const_nodes.len() {
            return Err(SnaError::WrongCoefficientCount {
                expected: const_nodes.len(),
                got: coeffs.len(),
            });
        }
        let old = self.dfg.const_values();
        let changed: Vec<NodeId> = const_nodes
            .iter()
            .zip(old.iter().zip(coeffs))
            .filter(|(_, (o, n))| o.to_bits() != n.to_bits())
            .map(|(&id, _)| id)
            .collect();
        if changed.is_empty() {
            // Identical coefficients: share everything, including built
            // stages and the histogram memo.
            return Ok(self.shallow_clone());
        }
        let dfg = Arc::new(
            self.dfg
                .with_const_values(coeffs)
                .expect("slot count checked above"),
        );
        let session = Session {
            dfg,
            input_ranges: Arc::clone(&self.input_ranges),
            counters: Arc::clone(&self.counters),
            ranges: OnceLock::new(),
            na: OnceLock::new(),
            per_sample: OnceLock::new(),
            lti: Mutex::new(std::collections::HashMap::new()),
            hist_memo: Arc::new(HistMemo::new()),
            vm: OnceLock::new(),
        };
        // The bytecode program is shape-only; the swap keeps it.
        if let Some(program) = self.vm.get() {
            let _ = session.vm.set(Arc::clone(program));
        }

        // Patch the range stage off the donor's, when it exists.
        if let Some(Ok(base)) = self.ranges.get() {
            if let Some(stage) = session.patched_ranges(base, &changed) {
                self.counters.range_patches.fetch_add(1, Ordering::Relaxed);
                let _ = session.ranges.set(Ok(stage));
            }
        }

        // Patch the gain model off the donor's, when both it and the new
        // range stage exist.
        if let Some(Ok(donor)) = self.na.get() {
            if let Some(Ok(stage)) = session.ranges.get() {
                let dirty = dirty_gain_sources(&session.dfg, &changed);
                if let Ok((model, patch)) =
                    donor.patched(&session.dfg, &stage.ranges, &LtiOptions::default(), &dirty)
                {
                    self.counters.na_patches.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .gains_rebuilt
                        .fetch_add(patch.rebuilt as u64, Ordering::Relaxed);
                    self.counters
                        .gains_derived
                        .fetch_add(patch.derived as u64, Ordering::Relaxed);
                    self.counters
                        .gains_reused
                        .fetch_add(patch.reused as u64, Ordering::Relaxed);
                    let _ = session.na.set(Ok(Arc::new(model)));
                }
            }
        }
        Ok(session)
    }

    /// Re-evaluates the donor's range stage under this session's
    /// constants, mirroring how the donor computed it. `None` means the
    /// patch failed; the stage stays unbuilt and rebuilds (and
    /// re-reports its failure) lazily.
    fn patched_ranges(&self, base: &RangeStage, changed: &[NodeId]) -> Option<RangeStage> {
        match base.method {
            RangeMethod::Interval => match self.dfg.ranges_interval_patched(
                &self.input_ranges,
                &RangeOptions::default(),
                &base.ranges,
                changed,
            ) {
                Ok(r) => Some(RangeStage {
                    ranges: Arc::new(r),
                    method: RangeMethod::Interval,
                }),
                // The swap may push a stable loop over the interval
                // engine's divergence edge; mirror `ranges_auto`'s LTI
                // fallback.
                Err(DfgError::RangeDivergence { .. }) if self.dfg.is_linear() => self
                    .dfg
                    .ranges_lti(&self.input_ranges, &LtiOptions::default())
                    .ok()
                    .map(|r| RangeStage {
                        ranges: Arc::new(r),
                        method: RangeMethod::Lti,
                    }),
                Err(_) => None,
            },
            // Impulse-based ranges are global in the coefficients; the
            // patch is a full (cheap relative to gains) re-run.
            RangeMethod::Lti => self
                .dfg
                .ranges_lti(&self.input_ranges, &LtiOptions::default())
                .ok()
                .map(|r| RangeStage {
                    ranges: Arc::new(r),
                    method: RangeMethod::Lti,
                }),
        }
    }

    /// A new handle onto the same compiled state (all stages shared).
    fn shallow_clone(&self) -> Session {
        let clone = Session {
            dfg: Arc::clone(&self.dfg),
            input_ranges: Arc::clone(&self.input_ranges),
            counters: Arc::clone(&self.counters),
            ranges: OnceLock::new(),
            na: OnceLock::new(),
            per_sample: OnceLock::new(),
            lti: Mutex::new(self.lti.lock().expect("lti cache lock").clone()),
            hist_memo: Arc::clone(&self.hist_memo),
            vm: OnceLock::new(),
        };
        if let Some(program) = self.vm.get() {
            let _ = clone.vm.set(Arc::clone(program));
        }
        if let Some(stage) = self.ranges.get() {
            let copied = match stage {
                Ok(s) => Ok(RangeStage {
                    ranges: Arc::clone(&s.ranges),
                    method: s.method,
                }),
                Err(e) => Err(e.clone()),
            };
            let _ = clone.ranges.set(copied);
        }
        if let Some(model) = self.na.get() {
            let _ = clone.na.set(model.clone());
        }
        if let Some(ps) = self.per_sample.get() {
            let _ = clone.per_sample.set(ps.clone());
        }
        clone
    }

    // ------------------------------------------------------------------
    // Artifact-store serialization
    // ------------------------------------------------------------------

    /// Encodes the session's compiled skeleton for the persistent
    /// artifact store: the graph, its input ranges, and every *built*
    /// artifact stage — node ranges (with their provenance, so patching
    /// behaves identically after a reload), the NA gain model, and the
    /// VM bytecode. Stages that are unbuilt (or failed) are simply
    /// omitted; an imported session rebuilds them lazily like a cold
    /// one.
    ///
    /// All floats travel as exact bit patterns: an imported session
    /// answers every request **bit-identically** to the exported one.
    #[must_use]
    pub fn export_wire(&self) -> Vec<u8> {
        let mut w = sna_store::WireWriter::new();
        w.bytes(&self.dfg.to_wire());
        w.len(self.input_ranges.len());
        for r in self.input_ranges.iter() {
            w.f64(r.lo());
            w.f64(r.hi());
        }
        match self.ranges.get() {
            Some(Ok(stage)) => {
                w.u8(match stage.method {
                    RangeMethod::Interval => 1,
                    RangeMethod::Lti => 2,
                });
                w.len(stage.ranges.len());
                for r in stage.ranges.iter() {
                    w.f64(r.lo());
                    w.f64(r.hi());
                }
            }
            _ => w.u8(0),
        }
        match self.na.get() {
            Some(Ok(model)) => {
                w.u8(1);
                w.bytes(&model.to_wire());
            }
            _ => w.u8(0),
        }
        match self.vm.get() {
            Some(program) => {
                w.u8(1);
                w.bytes(&program.to_wire());
            }
            None => w.u8(0),
        }
        w.finish()
    }

    /// Decodes a skeleton written by [`Session::export_wire`],
    /// **pre-seeding** the stored stages so that later requests rebuild
    /// nothing: the stage-build counters ([`Session::stats`]) of an
    /// imported session stay at zero for every stage the export
    /// carried.
    ///
    /// # Errors
    ///
    /// `sna_store::WireError` on any malformed, truncated or
    /// inconsistent input (stage shapes are validated against the
    /// decoded graph) — never panics, so a corrupt store object always
    /// degrades to a clean recompile in the caller.
    pub fn import_wire(bytes: &[u8]) -> Result<Session, sna_store::WireError> {
        use sna_store::{WireError, WireReader};
        let mut r = WireReader::new(bytes);
        let dfg = Dfg::from_wire(&r.bytes()?)?;
        let n_inputs = r.read_count(16)?;
        if n_inputs != dfg.n_inputs() {
            return Err(WireError::new("input range count mismatch"));
        }
        let mut input_ranges = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            let (lo, hi) = (r.f64()?, r.f64()?);
            input_ranges.push(
                Interval::new(lo, hi).map_err(|e| WireError::new(format!("input range: {e}")))?,
            );
        }

        let range_stage = match r.u8()? {
            0 => None,
            tag @ (1 | 2) => {
                let n = r.read_count(16)?;
                if n != dfg.len() {
                    return Err(WireError::new("node range count mismatch"));
                }
                let mut ranges = Vec::with_capacity(n);
                for _ in 0..n {
                    let (lo, hi) = (r.f64()?, r.f64()?);
                    ranges.push(
                        Interval::new(lo, hi)
                            .map_err(|e| WireError::new(format!("node range: {e}")))?,
                    );
                }
                Some(RangeStage {
                    ranges: Arc::new(ranges),
                    method: if tag == 1 {
                        RangeMethod::Interval
                    } else {
                        RangeMethod::Lti
                    },
                })
            }
            t => return Err(WireError::new(format!("bad range stage tag {t}"))),
        };
        let na_model = match r.u8()? {
            0 => None,
            1 => Some(NaModel::from_wire(
                &r.bytes()?,
                dfg.len(),
                dfg.outputs().len(),
            )?),
            t => return Err(WireError::new(format!("bad model tag {t}"))),
        };
        let vm_program = match r.u8()? {
            0 => None,
            1 => {
                let program = sna_vm::Program::from_wire(&r.bytes()?)?;
                if program.n_inputs() != dfg.n_inputs() {
                    return Err(WireError::new("program input count mismatch"));
                }
                Some(program)
            }
            t => return Err(WireError::new(format!("bad program tag {t}"))),
        };
        r.expect_end()?;

        let session = Session::new(dfg, input_ranges)
            .map_err(|e| WireError::new(format!("invalid session: {e}")))?;
        if let Some(stage) = range_stage {
            let _ = session.ranges.set(Ok(stage));
        }
        if let Some(model) = na_model {
            let _ = session.na.set(Ok(Arc::new(model)));
        }
        if let Some(program) = vm_program {
            let _ = session.vm.set(Arc::new(program));
        }
        Ok(session)
    }
}

/// The sources whose impulse gains a coefficient swap can change: a
/// source is dirty iff some path from it to an output crosses a
/// multiplier/divider whose *constant-driven* operand changed value.
///
/// Sound over-approximation: `carriers` = constant-driven nodes inside
/// the downstream cone of the changed constants (their zero-input values
/// shifted); `sites` = `Mul`/`Div` nodes with a carrier operand (their
/// local linear coefficient changed); dirty = everything strictly
/// upstream of a site (the injection must *enter* the site — injections
/// at or below a site's output never see its coefficient).
fn dirty_gain_sources(dfg: &Dfg, changed: &[NodeId]) -> Vec<bool> {
    let dep = dfg.signal_dependent_mask();
    let down = dfg.downstream_mask(changed);
    let sites: Vec<NodeId> = dfg
        .nodes()
        .filter(|(_, node)| matches!(node.op(), Op::Mul | Op::Div))
        .filter(|(_, node)| {
            node.args()
                .iter()
                .any(|a| down[a.index()] && !dep[a.index()])
        })
        .map(|(id, _)| id)
        .collect();
    dfg.upstream_of(&sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReportKind;
    use sna_dfg::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    /// A 3-tap symmetric FIR (deduped end coefficients).
    fn fir3() -> (Dfg, Vec<Interval>) {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let x1 = b.delay(x);
        let x2 = b.delay(x1);
        let c_end = b.constant(0.25);
        let c_mid = b.constant(0.5);
        let t0 = b.mul(c_end, x);
        let t1 = b.mul(c_mid, x1);
        let t2 = b.mul(c_end, x2);
        let s = b.add(t0, t1);
        let y = b.add(s, t2);
        b.output("y", y);
        (b.build().unwrap(), vec![iv(-1.0, 1.0)])
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<HistMemo>();
    }

    #[test]
    fn stages_build_once_and_share() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        assert_eq!(s.stats(), SessionStats::default());
        let r1 = s.node_ranges().unwrap();
        let r2 = s.node_ranges().unwrap();
        assert!(Arc::ptr_eq(&r1, &r2));
        let m1 = s.na_model().unwrap();
        let m2 = s.na_model().unwrap();
        assert!(Arc::ptr_eq(&m1, &m2));
        let e1 = s.lti_engine(64).unwrap();
        let e2 = s.lti_engine(64).unwrap();
        assert!(Arc::ptr_eq(&e1, &e2));
        let stats = s.stats();
        assert_eq!(stats.range_builds, 1);
        assert_eq!(stats.na_builds, 1);
        assert_eq!(stats.lti_builds, 1);
    }

    #[test]
    fn session_analysis_matches_direct_engine_calls() {
        let (g, r) = fir3();
        let s = Session::new(g.clone(), r.clone()).unwrap();
        let req = AnalysisRequest {
            engine: EngineKind::Na,
            words: WlChoice::Uniform(10),
            bins: 64,
            ..AnalysisRequest::default()
        };
        let via_session = s.analyze(&req).unwrap();
        assert_eq!(via_session.engine, EngineKind::Na);
        assert_eq!(via_session.kind, ReportKind::QuantizationNoise);
        let model = NaModel::build(&g, &r, &LtiOptions::default()).unwrap();
        let cfg = WlConfig::from_ranges(&g, &r, 10).unwrap();
        let direct = model.evaluate(&g, &cfg);
        assert_eq!(via_session.reports.len(), direct.len());
        for ((n1, a), (n2, b)) in via_session.reports.iter().zip(&direct) {
            assert_eq!(n1, n2);
            assert_eq!(a.mean.to_bits(), b.mean.to_bits());
            assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        }
    }

    #[test]
    fn include_pdf_false_strips_histograms() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        let mut req = AnalysisRequest {
            engine: EngineKind::Lti,
            words: WlChoice::Uniform(10),
            bins: 32,
            ..AnalysisRequest::default()
        };
        let with = s.analyze(&req).unwrap();
        assert!(with.reports[0].1.histogram.is_some());
        req.include_pdf = false;
        let without = s.analyze(&req).unwrap();
        assert!(without.reports[0].1.histogram.is_none());
        // Moments are unaffected.
        assert_eq!(
            with.reports[0].1.variance.to_bits(),
            without.reports[0].1.variance.to_bits()
        );
    }

    #[test]
    fn auto_resolves_by_structure() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        assert_eq!(s.resolve_engine(EngineKind::Auto).unwrap(), EngineKind::Lti);
        assert_eq!(s.resolve_engine(EngineKind::Dfg).unwrap(), EngineKind::Dfg);

        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul(x, x);
        b.output("y", y);
        let s = Session::new(b.build().unwrap(), vec![iv(-1.0, 1.0)]).unwrap();
        assert_eq!(s.resolve_engine(EngineKind::Auto).unwrap(), EngineKind::Dfg);
    }

    #[test]
    fn with_coefficients_skips_lowering_and_full_range_reanalysis() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        // Build the chain cold.
        s.na_model().unwrap();
        let before = s.stats();
        assert_eq!(
            (before.range_builds, before.na_builds, before.range_patches),
            (1, 1, 0)
        );

        // Swap one coefficient (the middle tap).
        let mut coeffs = s.coefficients();
        assert_eq!(coeffs, vec![0.25, 0.5]);
        coeffs[1] = 0.4;
        let swapped = s.with_coefficients(&coeffs).unwrap();
        assert_eq!(swapped.coefficients(), vec![0.25, 0.4]);

        let after = swapped.stats();
        // No new full builds: lowering is structurally impossible to
        // re-run here, and range analysis + the gain model were patched.
        assert_eq!(after.range_builds, 1, "{after:?}");
        assert_eq!(after.na_builds, 1, "{after:?}");
        assert_eq!(after.range_patches, 1, "{after:?}");
        assert_eq!(after.na_patches, 1, "{after:?}");
        assert!(after.gains_reused > 0, "{after:?}");
        // The delay-chain sources upstream of the retuned tap are
        // derived by the consumer recurrence, not re-simulated.
        assert!(after.gains_derived > 0, "{after:?}");
        assert!(
            after.gains_rebuilt <= 1,
            "only the changed constant itself may need a forward sim: {after:?}"
        );
        // The stages really are present without further building.
        assert!(swapped.ranges.get().is_some());
        assert!(swapped.na.get().is_some());
    }

    #[test]
    fn coefficient_swap_matches_a_cold_session() {
        let (g, r) = fir3();
        let s = Session::new(g.clone(), r.clone()).unwrap();
        s.na_model().unwrap();
        let mut coeffs = s.coefficients();
        coeffs[0] = 0.3;
        coeffs[1] = 0.45;
        let swapped = s.with_coefficients(&coeffs).unwrap();

        let cold = Session::new(g.with_const_values(&coeffs).unwrap(), r).unwrap();
        let req = AnalysisRequest {
            engine: EngineKind::Na,
            words: WlChoice::Uniform(12),
            bins: 64,
            ..AnalysisRequest::default()
        };
        let a = swapped.analyze(&req).unwrap();
        let b = cold.analyze(&req).unwrap();
        for ((n1, ra), (n2, rb)) in a.reports.iter().zip(&b.reports) {
            assert_eq!(n1, n2);
            let tol = 1e-12 * rb.variance.abs().max(1e-300);
            assert!(
                (ra.variance - rb.variance).abs() <= tol,
                "variance {} vs {}",
                ra.variance,
                rb.variance
            );
            assert!((ra.mean - rb.mean).abs() <= 1e-12 * rb.mean.abs().max(1e-30));
        }
    }

    #[test]
    fn identical_coefficients_share_everything() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        s.na_model().unwrap();
        let same = s.with_coefficients(&s.coefficients()).unwrap();
        assert!(Arc::ptr_eq(&s.dfg, &same.dfg));
        assert!(Arc::ptr_eq(s.hist_memo(), same.hist_memo()));
        let (m1, m2) = (s.na_model().unwrap(), same.na_model().unwrap());
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(s.stats().na_builds, 1);
    }

    #[test]
    fn wrong_coefficient_count_is_reported() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        assert!(matches!(
            s.with_coefficients(&[0.1]),
            Err(SnaError::WrongCoefficientCount {
                expected: 2,
                got: 1
            })
        ));
    }

    #[test]
    fn dirty_sources_exclude_paths_below_the_changed_coefficient() {
        let (g, _) = fir3();
        // Change the middle-tap constant (node order: x=0, x1=1, x2=2,
        // c_end=3, c_mid=4, t0=5, t1=6, t2=7, s=8, y=9).
        let dirty = dirty_gain_sources(&g, &[NodeId::from_index(4)]);
        // Upstream of the t1 multiplier: x, x1, and c_mid itself.
        assert!(dirty[0] && dirty[1] && dirty[4]);
        // The adder chain and the other taps' multipliers inject below
        // the changed coefficient: clean.
        assert!(!dirty[5] && !dirty[6] && !dirty[7] && !dirty[8] && !dirty[9]);
        // The untouched end coefficient is clean too.
        assert!(!dirty[3]);
    }

    #[test]
    fn additive_constant_swaps_invalidate_no_gains() {
        // y = 0.5·x + c: changing c shifts values but no transfer path
        // coefficient, so every gain is reusable.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.5, x);
        let c = b.constant(0.25);
        let y = b.add(t, c);
        b.output("y", y);
        let g = b.build().unwrap();
        let s = Session::new(g, vec![iv(-1.0, 1.0)]).unwrap();
        s.na_model().unwrap();
        let mut coeffs = s.coefficients();
        // coefficients in id order: [0.5 (mul), 0.25 (additive)].
        coeffs[1] = 0.3;
        let swapped = s.with_coefficients(&coeffs).unwrap();
        let stats = swapped.stats();
        assert_eq!(stats.gains_rebuilt, 0, "{stats:?}");
        assert!(stats.gains_reused > 0, "{stats:?}");
        // And the reports still track the new constant exactly.
        let req = AnalysisRequest {
            engine: EngineKind::Na,
            words: WlChoice::Uniform(6),
            bins: 32,
            ..AnalysisRequest::default()
        };
        let a = swapped.analyze(&req).unwrap();
        let cold = Session::new(swapped.dfg().clone(), swapped.input_ranges().to_vec()).unwrap();
        let b = cold.analyze(&req).unwrap();
        assert_eq!(a.reports[0].1.mean.to_bits(), b.reports[0].1.mean.to_bits());
    }

    #[test]
    fn export_import_round_trip_rebuilds_nothing() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        let req = AnalysisRequest {
            engine: EngineKind::Na,
            words: WlChoice::Uniform(10),
            bins: 64,
            ..AnalysisRequest::default()
        };
        let cold = s.analyze(&req).unwrap();
        let _ = s.vm_program(); // force the bytecode stage too
        let bytes = s.export_wire();

        let warm = Session::import_wire(&bytes).unwrap();
        let again = warm.analyze(&req).unwrap();
        let stats = warm.stats();
        assert_eq!(stats.range_builds, 0, "{stats:?}");
        assert_eq!(stats.na_builds, 0, "{stats:?}");
        assert_eq!(stats.vm_compiles, 0, "{stats:?}");
        assert!(warm.vm_program_built());
        for ((n1, r1), (n2, r2)) in cold.reports.iter().zip(again.reports.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(r1.mean.to_bits(), r2.mean.to_bits());
            assert_eq!(r1.variance.to_bits(), r2.variance.to_bits());
        }
        // The export is a fixpoint: re-export is byte-identical.
        assert_eq!(warm.export_wire(), bytes);
    }

    #[test]
    fn export_of_unbuilt_session_imports_as_cold() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        let warm = Session::import_wire(&s.export_wire()).unwrap();
        assert!(!warm.vm_program_built());
        // Stages still build lazily, exactly like a cold session.
        warm.na_model().unwrap();
        assert_eq!(warm.stats().na_builds, 1);
    }

    #[test]
    fn import_rejects_damage_without_panicking() {
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        s.na_model().unwrap();
        let _ = s.vm_program();
        let good = s.export_wire();
        for cut in 0..good.len() {
            assert!(Session::import_wire(&good[..cut]).is_err(), "cut at {cut}");
        }
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            let _ = Session::import_wire(&bad); // may err, must not panic
        }
    }

    #[test]
    fn import_rejects_cross_graph_stage_shapes() {
        // Splice the range stage of a smaller graph into a bigger one's
        // export: the node-count check must catch it.
        let (g, r) = fir3();
        let s = Session::new(g, r).unwrap();
        s.node_ranges().unwrap();
        let mut w = sna_store::WireWriter::new();
        w.bytes(&s.dfg().to_wire());
        w.len(1);
        w.f64(-1.0);
        w.f64(1.0);
        w.u8(1); // claims an interval range stage...
        w.len(2); // ...with the wrong node count
        for _ in 0..2 {
            w.f64(0.0);
            w.f64(1.0);
        }
        w.u8(0);
        w.u8(0);
        assert!(Session::import_wire(&w.finish()).is_err());
    }
}
