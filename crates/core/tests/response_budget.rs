//! Regression coverage for the `MAX_RESPONSE_FLOATS` storage budget
//! (ROADMAP follow-on): a model too large to keep all impulse-response
//! sequences must still patch correctly through
//! `Session::with_coefficients` — the budgeted-out sources fall back to
//! forward simulation, and the patched analysis agrees with a
//! from-scratch compile within 1e-12.

use sna_core::{AnalysisRequest, EngineKind, NaModel, Session, WlChoice};
use sna_dfg::DfgBuilder;
use sna_interval::Interval;

/// A tapped-delay-line with enough (source × output) response mass to
/// overflow the storage budget: a 160-deep chain feeding 32 scaled
/// outputs.
fn oversized() -> (sna_dfg::Dfg, Vec<Interval>) {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let taps = b.delay_chain(x, 160);
    for k in 0..32 {
        let c = b.constant(0.015625 + k as f64 * 0.001953125);
        let m = b.mul(c, taps[5 * k + 4]);
        b.output(format!("o{k}"), m);
    }
    (b.build().unwrap(), vec![Interval::new(-1.0, 1.0).unwrap()])
}

#[test]
fn oversized_models_cross_the_response_budget() {
    let (g, r) = oversized();
    let s = Session::new(g, r).unwrap();
    let model = s.na_model().unwrap();
    assert!(
        model.stored_response_floats() <= NaModel::RESPONSE_FLOAT_BUDGET,
        "stored {} floats, budget {}",
        model.stored_response_floats(),
        NaModel::RESPONSE_FLOAT_BUDGET
    );
    assert!(
        model.budgeted_out_sources() > 0,
        "the test graph must actually cross the budget \
         (stored {} floats over {} sources)",
        model.stored_response_floats(),
        model.budgeted_out_sources()
    );
}

#[test]
fn budgeted_fallback_patch_matches_a_from_scratch_compile() {
    let (g, r) = oversized();
    let s = Session::new(g.clone(), r.clone()).unwrap();
    s.na_model().unwrap();

    // Retune coefficients at both ends of the chain: the deep one's
    // dirty cone reaches sources whose response sequences were dropped
    // by the budget, forcing the forward-simulation fallback.
    let mut coeffs = s.coefficients();
    let last = coeffs.len() - 1;
    coeffs[0] *= 1.5;
    coeffs[last] *= 0.5;
    let patched = s.with_coefficients(&coeffs).unwrap();

    let stats = patched.stats();
    assert_eq!(stats.na_patches, 1, "{stats:?}");
    assert_eq!(stats.na_builds, 1, "no full rebuild: {stats:?}");
    assert!(
        stats.gains_rebuilt > 0,
        "the budget fallback must re-simulate some sources: {stats:?}"
    );

    let cold = Session::new(g.with_const_values(&coeffs).unwrap(), r).unwrap();
    let req = AnalysisRequest {
        engine: EngineKind::Na,
        words: WlChoice::Uniform(12),
        bins: 32,
        include_pdf: false,
        ..AnalysisRequest::default()
    };
    let a = patched.analyze(&req).unwrap();
    let b = cold.analyze(&req).unwrap();
    assert_eq!(a.reports.len(), b.reports.len());
    for ((n1, ra), (n2, rb)) in a.reports.iter().zip(&b.reports) {
        assert_eq!(n1, n2);
        let tol = 1e-12 * rb.variance.abs().max(1e-300);
        assert!(
            (ra.variance - rb.variance).abs() <= tol,
            "{n1}: variance {} vs {}",
            ra.variance,
            rb.variance
        );
        assert!(
            (ra.mean - rb.mean).abs() <= 1e-12 * rb.mean.abs().max(1e-30),
            "{n1}: mean {} vs {}",
            ra.mean,
            rb.mean
        );
    }
}
