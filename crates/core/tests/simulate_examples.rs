//! Acceptance suite for the `sna-vm` simulation backend over every
//! shipped `examples/*.sna` datapath:
//!
//! 1. **Differential**: the VM's paired exact/quantized lanes are
//!    **bit-identical** to the scalar `Simulator` / `FixedSimulator`
//!    on 64-step traces — sequential graphs, feedback, and
//!    range-overridden nodes included.  Bit-identical, not "within
//!    1e-12": the VM executes the same operations in the same order
//!    per lane (one instruction per node, no reassociation), so any
//!    divergence is a real semantics bug.
//! 2. **Statistical**: empirical (mean, variance) from ≥1e5 sampled
//!    paths agree with the analytic prediction within
//!    `5·standard-error + documented model tolerance`, across five
//!    different seeds (the flake check).
//! 3. **Determinism**: the same seed produces bit-identical reports
//!    whatever the worker count.

use std::path::PathBuf;
use std::sync::Arc;

use sna_core::{Session, SimRequest};
use sna_dfg::Simulator;
use sna_fixp::{FixedSimulator, WlConfig};
use sna_vm::{Executable, Program};

fn examples() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.unwrap().path();
            (path.extension().is_some_and(|e| e == "sna")).then(|| {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let source = std::fs::read_to_string(&path).unwrap();
                (name, source)
            })
        })
        .collect();
    out.sort();
    assert!(out.len() >= 7, "expected the full example set, got {out:?}");
    out
}

/// A tiny deterministic generator for in-range input traces (the test
/// needs reproducible streams, not statistical quality).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[test]
fn vm_lanes_are_bit_identical_to_the_scalar_simulators_on_every_example() {
    const LANES: usize = 8;
    const STEPS: usize = 64;
    for (name, source) in examples() {
        let lowered = sna_lang::compile(&source).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let dfg = &lowered.dfg;
        // 9 bits is the floor for `rgb.sna` (its `+128` constants need
        // 8 integer bits + sign).
        for bits in [9u8, 12, 20] {
            let config = WlConfig::from_ranges(dfg, &lowered.input_ranges, bits)
                .unwrap_or_else(|e| panic!("{name} @ {bits} bits: {e}"));
            let program = Arc::new(Program::compile(dfg));
            let exe = Executable::new(Arc::clone(&program), dfg, &config);
            let mut state = exe.new_state(LANES);

            let mut refs: Vec<Simulator> = (0..LANES).map(|_| Simulator::new(dfg)).collect();
            let mut fixes: Vec<FixedSimulator> = (0..LANES)
                .map(|_| FixedSimulator::new(dfg, &config))
                .collect();
            let mut rng = Lcg(0xD1F * u64::from(bits));

            for t in 0..STEPS {
                // One frame per input, lane-major — fresh draws each
                // step, uniform over the declared range.
                let frames: Vec<Vec<f64>> = lowered
                    .input_ranges
                    .iter()
                    .map(|r| {
                        (0..LANES)
                            .map(|_| r.lo() + (r.hi() - r.lo()) * rng.next_unit())
                            .collect()
                    })
                    .collect();
                exe.step(&mut state, &frames).unwrap();
                for lane in 0..LANES {
                    let inputs: Vec<f64> = (0..dfg.n_inputs()).map(|j| frames[j][lane]).collect();
                    let want_exact = refs[lane].step(&inputs).unwrap();
                    let want_fixed = fixes[lane].step(&inputs).unwrap();
                    for k in 0..dfg.outputs().len() {
                        assert_eq!(
                            exe.exact_out(&state, k)[lane].to_bits(),
                            want_exact[k].to_bits(),
                            "{name} @ {bits} bits: exact lane diverged (t={t}, output {k})"
                        );
                        assert_eq!(
                            exe.quant_out(&state, k)[lane].to_bits(),
                            want_fixed[k].to_bits(),
                            "{name} @ {bits} bits: quant lane diverged (t={t}, output {k})"
                        );
                    }
                }
            }
        }
    }
}

/// Per-example *model* tolerance on top of the pure sampling error.
///
/// The analytic predictions are models, not ground truth, and their
/// known gaps (all pre-dating the VM — the scalar Monte-Carlo harness
/// measures the same numbers) set the floor here:
///
/// * **Variance** (relative): the NA/LTI source model injects
///   independent uniform rounding noise per node.  Feedback filters
///   (`biquad`, `fir`, `fir_taps`, `diffeq`) violate independence —
///   requantization errors recirculate and correlate across taps — so
///   the model *under*-predicts their variance by a design-dependent
///   constant factor (the paper's own predicted-vs-actual tables show
///   the same effect).
/// * **Mean** (in units of the error std-dev): coefficient rounding
///   `δc` is a deterministic offset whose output contribution is
///   `δc·x`.  With non-zero-mean inputs (`rgb`: [70,100] pixels,
///   `quadratic`: coefficient inputs in [9,10] etc.) that bias is not
///   captured by the gain model, which predicts a zero mean.
fn model_tolerance(example: &str) -> (f64, f64) {
    // (variance_rel_tol, mean_tol_in_stddevs)
    match example {
        "biquad.sna" => (3.5, 0.5),
        "fir.sna" => (1.2, 0.5),
        "fir_taps.sna" => (1.0, 0.5),
        "diffeq.sna" => (0.6, 0.5),
        "quadratic.sna" => (0.4, 2.5),
        "rgb.sna" => (0.4, 1.0),
        "vec_dot.sna" => (0.3, 0.5),
        other => panic!("no tolerance calibrated for {other}"),
    }
}

#[test]
fn empirical_statistics_match_the_prediction_within_documented_bounds() {
    const PATHS: usize = 100_000;
    const SEEDS: [u64; 5] = [0x5eed_cafe, 1, 42, 0xDEAD_BEEF, 0x0123_4567_89AB_CDEF];
    for (name, source) in examples() {
        let lowered = sna_lang::compile(&source).unwrap();
        let session = Session::new(lowered.dfg, lowered.input_ranges).unwrap();
        let (var_tol, mean_tol) = model_tolerance(&name);
        for seed in SEEDS {
            let report = session
                .simulate(&SimRequest {
                    paths: PATHS,
                    seed,
                    ..Default::default()
                })
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.paths >= PATHS, "{name}: {} paths", report.paths);
            for out in &report.outputs {
                let n = out.samples as f64;
                let std = out.empirical.variance.sqrt();
                let Some(predicted) = &out.predicted else {
                    continue; // nonlinear sequential: nothing to check against
                };

                // Mean: 5·(sampling std error) + the documented bias
                // allowance.  Consecutive samples of one trajectory are
                // correlated, so inflate the iid standard error by a
                // conservative 3×.
                let se_mean = 3.0 * std / n.sqrt();
                let bound = 5.0 * se_mean + mean_tol * std;
                let gap = out.mean_gap.as_ref().unwrap();
                assert!(
                    gap.abs <= bound,
                    "{name} `{}` seed {seed:#x}: mean gap {:.3e} > bound {bound:.3e} \
                     (empirical {:.3e}, predicted {:.3e})",
                    out.name,
                    gap.abs,
                    out.empirical.mean,
                    predicted.mean
                );

                // Variance: 5·(relative sampling error of s², ~√(2/n),
                // same 3× correlation inflation) + the model allowance.
                let rel_bound = var_tol + 5.0 * 3.0 * (2.0 / n).sqrt();
                let vgap = out.variance_gap.as_ref().unwrap();
                let rel = vgap.rel.unwrap_or(f64::INFINITY);
                assert!(
                    rel <= rel_bound,
                    "{name} `{}` seed {seed:#x}: variance off by {:.1}% > {:.1}% \
                     (empirical {:.3e}, predicted {:.3e})",
                    out.name,
                    rel * 100.0,
                    rel_bound * 100.0,
                    out.empirical.variance,
                    predicted.variance
                );
            }
        }
    }
}

#[test]
fn same_seed_is_bit_identical_across_worker_counts() {
    for name in ["fir.sna", "rgb.sna"] {
        let (_, source) = examples().into_iter().find(|(n, _)| n == name).unwrap();
        let lowered = sna_lang::compile(&source).unwrap();
        let session = Session::new(lowered.dfg, lowered.input_ranges).unwrap();
        let reference = session
            .simulate(&SimRequest {
                paths: 30_000,
                workers: 1,
                ..Default::default()
            })
            .unwrap();
        for workers in [4usize, 8] {
            let report = session
                .simulate(&SimRequest {
                    paths: 30_000,
                    workers,
                    ..Default::default()
                })
                .unwrap();
            for (a, b) in reference.outputs.iter().zip(&report.outputs) {
                assert_eq!(
                    a.empirical.mean.to_bits(),
                    b.empirical.mean.to_bits(),
                    "{name}: mean diverged at {workers} workers"
                );
                assert_eq!(
                    a.empirical.variance.to_bits(),
                    b.empirical.variance.to_bits(),
                    "{name}: variance diverged at {workers} workers"
                );
                assert_eq!(
                    a.empirical.support, b.empirical.support,
                    "{name}: support diverged at {workers} workers"
                );
            }
        }
    }
}
