//! Property-based check of coefficient-level incremental recompilation:
//! a `Session::with_coefficients` swap must agree with a from-scratch
//! compile of the swapped graph to within 1e-12, while the stage-build
//! counters show that lowering and full range analysis never re-ran.

use proptest::prelude::*;
use sna_core::{AnalysisRequest, EngineKind, Session, WlChoice};
use sna_designs::fir;

/// Deterministic coefficient perturbation: replace a seed-chosen subset
/// of the coefficient vector with fresh dyadic values in (-0.75, 0.75).
fn perturb(coeffs: &[f64], seed: u64) -> Vec<f64> {
    fn next(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 16
    }
    // Dyadic rationals: short to print, exactly representable. Redraw
    // until the slot really changes, so a chained perturbation can never
    // be a bitwise no-op (which would skip the patch paths the counter
    // assertions below rely on).
    fn fresh(state: &mut u64, current: f64) -> f64 {
        loop {
            let v = ((next(state) % 383) as f64 - 191.0) / 256.0;
            if v.to_bits() != current.to_bits() {
                return v;
            }
        }
    }
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = coeffs.to_vec();
    let mut touched = false;
    for c in &mut out {
        if next(&mut state).is_multiple_of(3) {
            *c = fresh(&mut state, *c);
            touched = true;
        }
    }
    if !touched {
        // Always change at least one slot so the swap is a real swap.
        let k = (next(&mut state) as usize) % out.len();
        out[k] = fresh(&mut state, out[k]);
    }
    out
}

fn na_request(bits: u8) -> AnalysisRequest {
    AnalysisRequest {
        engine: EngineKind::Na,
        words: WlChoice::Uniform(bits),
        bins: 32,
        ..AnalysisRequest::default()
    }
}

fn assert_close(tag: &str, a: f64, b: f64) {
    let tol = 1e-12 * b.abs().max(1e-300);
    assert!(
        (a - b).abs() <= tol,
        "{tag}: swapped {a:e} vs cold {b:e} (diff {:e})",
        (a - b).abs()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn coefficient_swapped_sessions_match_from_scratch_compiles(seed in 0u64..1_000_000_000) {
        let design = fir(9);
        let base = Session::new(design.dfg.clone(), design.input_ranges.clone()).unwrap();
        // Build the full chain cold so the swap has artifacts to patch.
        base.na_model().unwrap();

        let coeffs = perturb(&base.coefficients(), seed);
        let swapped = base.with_coefficients(&coeffs).unwrap();
        prop_assert_eq!(swapped.coefficients(), coeffs.clone());

        let cold = Session::new(
            design.dfg.with_const_values(&coeffs).unwrap(),
            design.input_ranges.clone(),
        )
        .unwrap();

        for bits in [8u8, 12, 20] {
            let a = swapped.analyze(&na_request(bits)).unwrap();
            let b = cold.analyze(&na_request(bits)).unwrap();
            prop_assert_eq!(a.reports.len(), b.reports.len());
            for ((n1, ra), (n2, rb)) in a.reports.iter().zip(&b.reports) {
                prop_assert_eq!(n1, n2);
                assert_close("mean", ra.mean, rb.mean);
                assert_close("variance", ra.variance, rb.variance);
                assert_close("power", ra.power, rb.power);
                assert_close("lo", ra.support.0, rb.support.0);
                assert_close("hi", ra.support.1, rb.support.1);
            }
        }

        // A second swap chains off the first (donor-of-donor) and still
        // matches scratch.
        let coeffs2 = perturb(&coeffs, seed.wrapping_add(1));
        let chained = swapped.with_coefficients(&coeffs2).unwrap();
        let cold2 = Session::new(
            design.dfg.with_const_values(&coeffs2).unwrap(),
            design.input_ranges.clone(),
        )
        .unwrap();
        let a = chained.analyze(&na_request(12)).unwrap();
        let b = cold2.analyze(&na_request(12)).unwrap();
        for ((_, ra), (_, rb)) in a.reports.iter().zip(&b.reports) {
            assert_close("chained variance", ra.variance, rb.variance);
        }

        // The counters prove the incremental path ran: one full range
        // analysis and one full model build for the whole family.
        let stats = swapped.stats();
        prop_assert_eq!(stats.range_builds, 1);
        prop_assert_eq!(stats.na_builds, 1);
        prop_assert_eq!(stats.range_patches, 2);
        prop_assert_eq!(stats.na_patches, 2);
        prop_assert!(stats.gains_reused > 0);
    }
}
