//! `sna store` — inspect and maintain the persistent artifact store
//! behind `--store-dir` (see `crates/store/README.md` for the on-disk
//! layout).
//!
//! * `ls` lists every object (kind, key, size, recency tick) plus the
//!   total footprint.
//! * `gc --budget BYTES` evicts least-recently-used objects until the
//!   store fits the byte budget.
//! * `verify` re-checks every object frame (magic, version, CRC);
//!   `--repair` additionally deletes the objects that fail.

use sna_store::ObjectInfo;

use crate::common::{open_store, parse_format, unknown_flag, Args, CliError, Format};
use crate::Json;

const USAGE: &str = "sna store <ls|gc|verify> --store-dir DIR [--budget BYTES] [--repair] \
                     [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut format = Format::Human;
    let mut store_dir: Option<String> = None;
    let mut budget: Option<u64> = None;
    let mut repair = false;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            "budget" => budget = Some(args.parse_value("budget")?),
            "repair" => repair = true,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let verb = *args
        .files()
        .first()
        .ok_or_else(|| CliError::Usage(format!("missing <ls|gc|verify> verb\nusage: {USAGE}")))?;
    let Some(dir) = store_dir else {
        return Err(CliError::Usage(format!(
            "--store-dir is required\nusage: {USAGE}"
        )));
    };
    let store = open_store(&dir)?;
    match verb {
        "ls" => {
            if budget.is_some() || repair {
                return Err(CliError::Usage(format!(
                    "--budget/--repair do not apply to `ls`\nusage: {USAGE}"
                )));
            }
            let mut objects = store.ls();
            objects.sort_by(|a, b| (&a.kind, a.key).cmp(&(&b.kind, b.key)));
            let total = store.total_bytes();
            Ok(match format {
                Format::Human => {
                    let mut out = String::new();
                    for o in &objects {
                        out.push_str(&object_human(o));
                    }
                    out.push_str(&format!(
                        "{} object(s) · {} byte(s) in `{dir}`\n",
                        objects.len(),
                        total
                    ));
                    out
                }
                Format::Json => Json::Obj(vec![
                    ("command".into(), Json::str("store")),
                    ("verb".into(), Json::str("ls")),
                    ("dir".into(), Json::str(dir)),
                    (
                        "objects".into(),
                        Json::Arr(objects.iter().map(object_json).collect()),
                    ),
                    ("total_bytes".into(), json_u64(total)),
                ])
                .to_string(),
            })
        }
        "gc" => {
            if repair {
                return Err(CliError::Usage(format!(
                    "--repair does not apply to `gc`\nusage: {USAGE}"
                )));
            }
            let Some(budget) = budget else {
                return Err(CliError::Usage(format!(
                    "`gc` needs --budget BYTES\nusage: {USAGE}"
                )));
            };
            let report = store
                .gc(budget)
                .map_err(|e| CliError::failed(format!("gc failed: {e}")))?;
            Ok(match format {
                Format::Human => format!(
                    "gc: kept {} object(s) ({} byte(s)) · removed {} object(s) \
                     ({} byte(s) freed) · budget {budget} byte(s)\n",
                    report.kept, report.kept_bytes, report.removed, report.freed_bytes
                ),
                Format::Json => Json::Obj(vec![
                    ("command".into(), Json::str("store")),
                    ("verb".into(), Json::str("gc")),
                    ("dir".into(), Json::str(dir)),
                    ("budget_bytes".into(), json_u64(budget)),
                    ("kept".into(), json_u64(report.kept)),
                    ("kept_bytes".into(), json_u64(report.kept_bytes)),
                    ("removed".into(), json_u64(report.removed)),
                    ("freed_bytes".into(), json_u64(report.freed_bytes)),
                ])
                .to_string(),
            })
        }
        "verify" => {
            if budget.is_some() {
                return Err(CliError::Usage(format!(
                    "--budget does not apply to `verify`\nusage: {USAGE}"
                )));
            }
            let report = store.verify(repair);
            let out = match format {
                Format::Human => {
                    let mut out = String::new();
                    for o in &report.corrupt {
                        out.push_str("corrupt: ");
                        out.push_str(&object_human(o));
                    }
                    out.push_str(&format!(
                        "verify: {} ok · {} corrupt{}\n",
                        report.ok,
                        report.corrupt.len(),
                        if repair && !report.corrupt.is_empty() {
                            " (deleted)"
                        } else {
                            ""
                        }
                    ));
                    out
                }
                Format::Json => Json::Obj(vec![
                    ("command".into(), Json::str("store")),
                    ("verb".into(), Json::str("verify")),
                    ("dir".into(), Json::str(dir)),
                    ("repair".into(), Json::Bool(repair)),
                    ("ok".into(), json_u64(report.ok)),
                    (
                        "corrupt".into(),
                        Json::Arr(report.corrupt.iter().map(object_json).collect()),
                    ),
                ])
                .to_string(),
            };
            if report.corrupt.is_empty() {
                Ok(out)
            } else {
                // Corrupt objects make `verify` exit 1 (like a failed
                // batch, the full report still belongs on stdout).
                Err(CliError::BatchFailed(out))
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown store verb `{other}`\nusage: {USAGE}"
        ))),
    }
}

fn object_human(o: &ObjectInfo) -> String {
    format!(
        "{:<12} {:016x}  {:>9} byte(s)  tick {}\n",
        o.kind, o.key, o.size, o.tick
    )
}

fn object_json(o: &ObjectInfo) -> Json {
    Json::Obj(vec![
        ("kind".into(), Json::str(o.kind.clone())),
        ("key".into(), Json::str(format!("{:016x}", o.key))),
        ("size".into(), json_u64(o.size)),
        ("tick".into(), json_u64(o.tick)),
    ])
}

fn json_u64(v: u64) -> Json {
    Json::int(usize::try_from(v).unwrap_or(usize::MAX))
}
