//! A minimal JSON document model and serializer.
//!
//! The workspace has no serde (offline build — see `shims/README.md`), and
//! the CLI only ever *emits* JSON, so a tiny value tree plus a writer is
//! the whole requirement. Output is deterministic: object keys keep
//! insertion order.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for integer counts.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A `[lo, hi]` pair.
    pub fn pair(lo: f64, hi: f64) -> Json {
        Json::Arr(vec![Json::Num(lo), Json::Num(hi)])
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if !v.is_finite() => f.write_str("null"),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) if items.is_empty() => f.write_str("[]"),
            Json::Arr(items) => {
                // Scalar-only arrays print on one line.
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    f.write_str("[")?;
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            f.write_str(", ")?;
                        }
                        item.write(f, indent)?;
                    }
                    return f.write_str("]");
                }
                f.write_str("[\n")?;
                for (k, item) in items.iter().enumerate() {
                    write!(f, "{}", "  ".repeat(indent + 1))?;
                    item.write(f, indent + 1)?;
                    if k + 1 < items.len() {
                        f.write_str(",")?;
                    }
                    f.write_str("\n")?;
                }
                write!(f, "{}]", "  ".repeat(indent))
            }
            Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
            Json::Obj(fields) => {
                f.write_str("{\n")?;
                for (k, (key, value)) in fields.iter().enumerate() {
                    write!(f, "{}", "  ".repeat(indent + 1))?;
                    write_escaped(f, key)?;
                    f.write_str(": ")?;
                    value.write(f, indent + 1)?;
                    if k + 1 < fields.len() {
                        f.write_str(",")?;
                    }
                    f.write_str("\n")?;
                }
                write!(f, "{}}}", "  ".repeat(indent))
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("fir")),
            ("ok".into(), Json::Bool(true)),
            ("bits".into(), Json::int(8)),
            ("support".into(), Json::pair(-0.5, 0.5)),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
        ]);
        let text = doc.to_string();
        assert!(text.contains("\"name\": \"fir\""));
        assert!(text.contains("\"support\": [-0.5, 0.5]"));
        assert!(text.contains("\"x\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn output_is_valid_enough_to_hand_check() {
        let doc = Json::Arr(vec![
            Json::Obj(vec![("k".into(), Json::int(1))]),
            Json::Obj(vec![("k".into(), Json::int(2))]),
        ]);
        let text = doc.to_string();
        assert_eq!(text.matches("\"k\"").count(), 2);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with(']'));
    }
}
