//! `sna-cli` — the `sna` command-line tool.
//!
//! One binary drives the whole analyze → optimize → synthesize pipeline
//! of the DAC'08 reproduction over textual `.sna` datapaths (see the
//! `sna-lang` crate for the language):
//!
//! ```text
//! sna parse    <file>.sna [--dot | --canon] [--format human|json]
//! sna analyze  <file>.sna [--engine auto|na|dfg|lti|symbolic|cartesian]
//!                         [--bits N] [--bins N] [--format human|json]
//! sna optimize <file>.sna [--method greedy|waterfill|anneal|group-greedy|
//!                          exhaustive|uniform|all]
//!                         [--ref-bits W] [--budget X] [--start W]
//!                         [--radius R] [--format human|json]
//! sna synth    <file>.sna [--bits N] [--clock NS] [--format human|json]
//! ```
//!
//! # Examples
//!
//! ```text
//! $ sna analyze examples/fir.sna --engine dfg --bits 8 --format json
//! $ sna optimize examples/diffeq.sna --method all --ref-bits 12
//! $ sna synth examples/rgb.sna --bits 10
//! $ sna parse examples/quadratic.sna --dot | dot -Tsvg > quadratic.svg
//! ```
//!
//! All commands exit 0 on success, 1 on analysis/compile failures (with
//! caret-style diagnostics on stderr), and 2 on usage errors. The library
//! surface ([`run`]) returns the rendered output instead of printing, so
//! integration tests drive the CLI in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze_cmd;
mod common;
mod json;
mod optimize_cmd;
mod parse_cmd;
mod synth_cmd;

pub use common::CliError;
pub use json::Json;

const USAGE: &str = "usage: sna <parse|analyze|optimize|synth> <file>.sna [options]\n\
                     \n\
                     commands:\n\
                     \x20 parse     validate a .sna file; dump a summary, DOT, or canonical form\n\
                     \x20 analyze   per-output noise reports (engines: auto, na, dfg, lti,\n\
                     \x20           symbolic, cartesian)\n\
                     \x20 optimize  noise-constrained word-length search (greedy, waterfill,\n\
                     \x20           anneal, group-greedy, exhaustive, uniform, all)\n\
                     \x20 synth     schedule + bind + cost report for one configuration\n\
                     \n\
                     run `sna <command>` with no arguments for command-specific usage";

/// Dispatches a full argument vector (without the program name) and
/// returns what should be printed on stdout.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed invocations (exit code 2),
/// [`CliError::Failed`] for compile/analysis failures (exit code 1).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "parse" => parse_cmd::run(rest),
        "analyze" => analyze_cmd::run(rest),
        "optimize" => optimize_cmd::run(rest),
        "synth" => synth_cmd::run(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}
