//! `sna-cli` — the `sna` command-line tool.
//!
//! One binary drives the whole analyze → optimize → synthesize pipeline
//! of the DAC'08 reproduction over textual `.sna` datapaths (see the
//! `sna-lang` crate for the language), plus the batch and server modes
//! built on the `sna-service` execution layer:
//!
//! ```text
//! sna parse    <file>.sna [--dot | --canon] [--format human|json]
//! sna analyze  <file>.sna... [--manifest list.txt] [--jobs N]
//!                         [--engine auto|na|dfg|lti|symbolic|cartesian]
//!                         [--bits N] [--bins N] [--format human|json]
//! sna optimize <file>.sna... [--manifest list.txt] [--jobs N]
//!                         [--method greedy|waterfill|anneal|group-greedy|
//!                          exhaustive|uniform|all]
//!                         [--ref-bits W] [--budget X] [--start W]
//!                         [--radius R] [--format human|json]
//!                         [--pareto [--points N] [--checkpoint-every K]
//!                          [--w-lo W] [--w-hi W]]
//! sna simulate <file>.sna... [--manifest list.txt] [--jobs N]
//!                         [--bits N] [--bins N] [--paths N] [--seed N]
//!                         [--steps N] [--warmup N] [--workers N]
//!                         [--format human|json]
//! sna synth    <file>.sna [--bits N] [--clock NS] [--format human|json]
//! sna trace    <fit|replay|report> <file>.sna... --trace data.csv
//!                         [--manifest list.txt] [--jobs N] [--bits N]
//!                         [--bins N] [--warmup N] [--workers N]
//!                         [--store-dir DIR] [--format human|json]
//! sna serve    [--listen addr:port] [--max-conns N] [--store-dir DIR]
//! sna store    <ls|gc|verify> --store-dir DIR [--budget BYTES] [--repair]
//! ```
//!
//! # Examples
//!
//! ```text
//! $ sna analyze examples/fir.sna --engine dfg --bits 8 --format json
//! $ sna analyze examples/*.sna --jobs 4 --format json
//! $ sna optimize examples/diffeq.sna --method all --ref-bits 12
//! $ sna simulate examples/fir.sna --bits 10 --paths 200000 --seed 7
//! $ sna synth examples/rgb.sna --bits 10
//! $ echo '{"cmd":"analyze","path":"examples/fir.sna"}' | sna serve
//! ```
//!
//! `analyze`, `simulate`, and `optimize` accept many files (and/or a `--manifest`
//! file listing one path per line). In batch mode the files fan out
//! across `--jobs` worker threads sharing one compile cache; per-file
//! output is byte-identical to the single-file invocation, failures are
//! reported inline without stopping the batch, and a trailing summary
//! line carries file/ok/err counts, cache hits/misses, and timing.
//! `serve` keeps that cache alive across requests — the line-oriented
//! JSON protocol is documented in `crates/service/README.md`.
//!
//! `--store-dir DIR` (on `analyze`, `simulate`, `optimize`, and `serve`)
//! backs the compile cache with the persistent content-addressed
//! artifact store from `crates/store`: compiled models are warm-loaded
//! across process restarts and spilled back at quiet points, and
//! `optimize --pareto` checkpoints its sweep there so an interrupted
//! exploration resumes bit-identically. `sna store` inspects and
//! maintains such a directory.
//!
//! All commands exit 0 on success, 1 on analysis/compile failures (with
//! caret-style diagnostics on stderr), and 2 on usage errors. A batch
//! where some files failed also exits 1 — its full output (per-file
//! documents, inline errors, summary) still goes to stdout, so scripts
//! detect partial failure from the exit code without parsing the
//! summary. The library surface ([`run`]) returns the rendered output
//! instead of printing, so integration tests drive the CLI in-process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze_cmd;
mod common;
mod optimize_cmd;
mod parse_cmd;
mod serve_cmd;
mod simulate_cmd;
mod store_cmd;
mod synth_cmd;
mod trace_cmd;

pub use common::CliError;
/// The JSON document model, re-exported from `sna-service` — the single
/// authority for JSON in this workspace. Every CLI module consumes this
/// re-export (`crate::Json`); there are no private copies or conversion
/// shims.
pub use sna_service::Json;

const USAGE: &str = "usage: sna <parse|analyze|simulate|optimize|synth|trace|serve|store> [<file>.sna...] [options]\n\
                     \n\
                     commands:\n\
                     \x20 parse     validate a .sna file; dump a summary, DOT, or canonical form\n\
                     \x20 analyze   per-output noise reports (engines: auto, na, dfg, lti,\n\
                     \x20           symbolic, cartesian); many files fan out across --jobs workers\n\
                     \x20 simulate  Monte-Carlo simulation on the bytecode VM; empirical error\n\
                     \x20           statistics next to the analytic prediction\n\
                     \x20 optimize  noise-constrained word-length search (greedy, waterfill,\n\
                     \x20           anneal, group-greedy, exhaustive, uniform, all); --pareto\n\
                     \x20           runs the resumable multi-objective design-space sweep\n\
                     \x20 synth     schedule + bind + cost report for one configuration\n\
                     \x20 trace     trace-driven noise analysis: fit input ranges from a\n\
                     \x20           recorded CSV, replay it through the VM, report measured\n\
                     \x20           output noise next to the empirical-range prediction\n\
                     \x20 serve     long-running line-oriented JSON server (stdin/stdout or\n\
                     \x20           --listen addr:port) with compiled-model caching\n\
                     \x20 store     ls/gc/verify a persistent artifact store (--store-dir on\n\
                     \x20           analyze/simulate/optimize/serve warm-starts from it)\n\
                     \n\
                     run `sna <command>` with no arguments for command-specific usage";

/// Dispatches a full argument vector (without the program name) and
/// returns what should be printed on stdout.
///
/// # Errors
///
/// [`CliError::Usage`] for malformed invocations (exit code 2),
/// [`CliError::Failed`] for compile/analysis failures (exit code 1),
/// [`CliError::BatchFailed`] for a batch with at least one failed file
/// (exit code 1; the payload is the full batch output, stdout-bound).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some(command) = argv.first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "parse" => parse_cmd::run(rest),
        "analyze" => analyze_cmd::run(rest),
        "simulate" => simulate_cmd::run(rest),
        "optimize" => optimize_cmd::run(rest),
        "synth" => synth_cmd::run(rest),
        "trace" => trace_cmd::run(rest),
        "serve" => serve_cmd::run(rest),
        "store" => store_cmd::run(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}
