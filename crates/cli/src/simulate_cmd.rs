//! `sna simulate` — Monte-Carlo simulation of one or many `.sna`
//! datapaths on the `sna-vm` bytecode backend, reporting empirical
//! per-output error statistics next to the analytic model's prediction
//! (the paper's Table-2 "Actual Values" cross-check).
//!
//! The report is a pure function of the file and the request: the same
//! `--seed` produces bit-identical numbers whatever `--workers` says.
//! Linear graphs carry an NA prediction, nonlinear combinational ones a
//! histogram-propagation prediction; nonlinear sequential graphs have
//! no model column — the simulation is the only number anyone has.
//!
//! With several files (or `--manifest`) the command runs in batch mode
//! exactly like `analyze`: files fan out across `--jobs` workers
//! sharing one compile cache, per-file output stays byte-identical to
//! the single-file invocation.

use sna_core::SimReport;
use sna_service::exec::{self, SimulateParams};

use crate::common::{
    collect_files, open_store, parse_format, parse_jobs, report_human, run_batch, unknown_flag,
    Args, CliError, Format,
};
use crate::Json;

const USAGE: &str = "sna simulate <file>.sna... [--manifest list.txt] [--jobs N] \
                     [--bits N] [--bins N] [--paths N] [--seed N] [--steps N] \
                     [--warmup N] [--workers N] [--store-dir DIR] [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new_multi(argv);
    let mut format = Format::Human;
    let mut params = SimulateParams::default();
    let mut jobs: usize = sna_service::default_jobs();
    let mut manifest: Option<String> = None;
    let mut store_dir: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "bits" => params.bits = args.parse_value("bits")?,
            "bins" => params.bins = args.parse_value("bins")?,
            "paths" => params.paths = args.parse_value("paths")?,
            "seed" => params.seed = args.parse_value("seed")?,
            "steps" => params.steps = Some(args.parse_value("steps")?),
            "warmup" => params.warmup = Some(args.parse_value("warmup")?),
            "workers" => params.workers = args.parse_value("workers")?,
            "jobs" => jobs = parse_jobs(&mut args)?,
            "manifest" => manifest = Some(args.value("manifest")?.to_string()),
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let (files, batch) = collect_files(args.files(), manifest.as_deref(), USAGE)?;
    let store = match &store_dir {
        Some(dir) => Some(open_store(dir)?),
        None => None,
    };
    run_batch(
        "simulate",
        files,
        batch,
        jobs,
        format,
        store,
        |path, entry| {
            let report = exec::simulate(entry, &params).map_err(CliError::Failed)?;
            Ok(render(path, &params, format, &report))
        },
    )
}

/// One file's output — exactly the historical single-file form.
fn render(path: &str, params: &SimulateParams, format: Format, report: &SimReport) -> String {
    match format {
        Format::Human => {
            let mut out = format!(
                "{path}: simulate · {} bits · {} paths × {} steps ({} warmup) · seed {:#x}\n",
                params.bits, report.paths, report.steps, report.warmup, report.seed
            );
            match report.predicted_by {
                Some(engine) => out.push_str(&format!(
                    "predicted by the `{}` engine; gaps are empirical − predicted\n",
                    engine.name()
                )),
                None => out.push_str("no analytic model applies; empirical numbers only\n"),
            }
            for output in &report.outputs {
                out.push('\n');
                out.push_str(&report_human(&output.name, &output.empirical, true));
                if let Some(predicted) = &output.predicted {
                    out.push_str(&format!(
                        "  predicted mean {:>13.6e} · variance {:>13.6e}\n",
                        predicted.mean, predicted.variance
                    ));
                }
                if let (Some(mg), Some(vg)) = (&output.mean_gap, &output.variance_gap) {
                    out.push_str(&format!(
                        "  gap       mean {:>13.6e}{} · variance {:>13.6e}{}\n",
                        mg.abs,
                        rel_suffix(mg.rel),
                        vg.abs,
                        rel_suffix(vg.rel),
                    ));
                }
            }
            out
        }
        Format::Json => {
            let mut fields = vec![
                ("command".into(), Json::str("simulate")),
                ("file".into(), Json::str(path)),
                ("engine".into(), Json::str("simulate")),
                ("bits".into(), Json::int(params.bits as usize)),
                ("bins".into(), Json::int(params.bins)),
            ];
            fields.extend(exec::simulate_json_fields(report, true));
            Json::Obj(fields).to_string()
        }
    }
}

fn rel_suffix(rel: Option<f64>) -> String {
    rel.map_or(String::new(), |r| format!(" ({:.2}% rel)", r * 100.0))
}
