//! `sna analyze` — run a noise analysis engine over a `.sna` datapath and
//! report per-output [`NoiseReport`]s.
//!
//! Engines `auto`, `na`, `lti` work on the graph as written (including
//! linear feedback). `dfg` and `symbolic` are combinational engines: on a
//! sequential graph they analyze the *per-sample combinational view*
//! (delays become state inputs whose ranges come from range analysis).
//! `cartesian` runs the paper's Section-4 exact algorithm on the *value*
//! uncertainty of the inputs — it characterizes the output PDF rather
//! than quantization noise.

use sna_core::{CartesianEngine, EngineKind, NoiseReport, SnaAnalysis, UncertainInput};
use sna_dfg::RangeOptions;
use sna_interval::Interval;
use sna_lang::Lowered;

use crate::common::{
    combinational_with_ranges, config_for, load, parse_format, report_human, report_json,
    unknown_flag, Args, CliError, Format,
};
use crate::json::Json;

const USAGE: &str = "sna analyze <file>.sna [--engine auto|na|dfg|lti|symbolic|cartesian] \
                     [--bits N] [--bins N] [--format human|json]";

/// The engine selector, including the non-`SnaAnalysis` Cartesian engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Engine {
    Auto,
    Na,
    Dfg,
    Lti,
    Symbolic,
    Cartesian,
}

impl Engine {
    fn parse(raw: &str) -> Result<Self, CliError> {
        Ok(match raw {
            "auto" => Engine::Auto,
            "na" => Engine::Na,
            "dfg" => Engine::Dfg,
            "lti" => Engine::Lti,
            "symbolic" => Engine::Symbolic,
            "cartesian" => Engine::Cartesian,
            other => {
                return Err(CliError::Usage(format!(
                    "unknown engine `{other}` (expected auto, na, dfg, lti, symbolic or cartesian)"
                )))
            }
        })
    }

    fn name(self) -> &'static str {
        match self {
            Engine::Auto => "auto",
            Engine::Na => "na",
            Engine::Dfg => "dfg",
            Engine::Lti => "lti",
            Engine::Symbolic => "symbolic",
            Engine::Cartesian => "cartesian",
        }
    }
}

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut format = Format::Human;
    let mut engine = Engine::Auto;
    let mut bits: u8 = 12;
    let mut bins: usize = 64;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "engine" => engine = Engine::parse(args.value("engine")?)?,
            "bits" => bits = args.parse_value("bits")?,
            "bins" => bins = args.parse_value("bins")?,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let path = args.file(USAGE)?;
    let (lowered, _) = load(path)?;

    let reports = analyze(&lowered, engine, bits, bins)?;

    Ok(match format {
        Format::Human => {
            let mut out = format!(
                "{path}: engine {} · {} bits · {} bins\n",
                engine.name(),
                bits,
                bins
            );
            if engine == Engine::Cartesian {
                out.push_str("(value-uncertainty PDF of the outputs, not quantization noise)\n");
            }
            for (name, report) in &reports {
                out.push('\n');
                out.push_str(&report_human(name, report, true));
            }
            out
        }
        Format::Json => Json::Obj(vec![
            ("command".into(), Json::str("analyze")),
            ("file".into(), Json::str(path)),
            ("engine".into(), Json::str(engine.name())),
            ("bits".into(), Json::int(bits as usize)),
            ("bins".into(), Json::int(bins)),
            (
                "kind".into(),
                Json::str(if engine == Engine::Cartesian {
                    "value-pdf"
                } else {
                    "quantization-noise"
                }),
            ),
            (
                "reports".into(),
                Json::Arr(
                    reports
                        .iter()
                        .map(|(name, r)| report_json(name, r, true))
                        .collect(),
                ),
            ),
        ])
        .to_string(),
    })
}

fn analyze(
    lowered: &Lowered,
    engine: Engine,
    bits: u8,
    bins: usize,
) -> Result<Vec<(String, NoiseReport)>, CliError> {
    match engine {
        Engine::Cartesian => cartesian(lowered, bins),
        Engine::Auto | Engine::Na | Engine::Lti => {
            let kind = match engine {
                Engine::Auto => EngineKind::Auto,
                Engine::Na => EngineKind::Na,
                _ => EngineKind::Lti,
            };
            let config = config_for(lowered, bits)?;
            SnaAnalysis::new(&lowered.dfg, &config, &lowered.input_ranges)
                .engine(kind)
                .bins(bins)
                .run()
                .map_err(|e| CliError::failed(format!("analysis failed: {e}")))
        }
        Engine::Dfg | Engine::Symbolic => {
            // Combinational engines: analyze the per-sample view.
            let kind = if engine == Engine::Dfg {
                EngineKind::Dfg
            } else {
                EngineKind::Symbolic
            };
            let (view, ranges) = combinational_with_ranges(lowered)?;
            let config = sna_fixp::WlConfig::from_ranges(&view, &ranges, bits)
                .map_err(|e| CliError::failed(format!("cannot build configuration: {e}")))?;
            SnaAnalysis::new(&view, &config, &ranges)
                .engine(kind)
                .bins(bins)
                .run()
                .map_err(|e| CliError::failed(format!("analysis failed: {e}")))
        }
    }
}

/// The Section-4 exact algorithm over the inputs' value uncertainty.
fn cartesian(lowered: &Lowered, bins: usize) -> Result<Vec<(String, NoiseReport)>, CliError> {
    if !lowered.dfg.is_combinational() {
        return Err(CliError::failed(
            "the cartesian engine handles combinational datapaths only \
             (this one contains delays)",
        ));
    }
    let inputs: Vec<UncertainInput> = lowered
        .dfg
        .input_names()
        .iter()
        .zip(&lowered.input_ranges)
        .map(|(name, range)| {
            UncertainInput::uniform(name.clone(), range.lo(), range.hi(), bins)
                .map_err(|e| CliError::failed(format!("input `{name}`: {e}")))
        })
        .collect::<Result<_, _>>()?;
    // Fail early (and only once) if interval evaluation cannot cover the
    // full input box — sub-boxes are subsets, so they inherit success.
    let full: Vec<_> = lowered.input_ranges.clone();
    lowered
        .dfg
        .output_ranges(&full, &RangeOptions::default())
        .map_err(|e| CliError::failed(format!("interval evaluation failed: {e}")))?;

    let engine = CartesianEngine::new(bins.max(2) * 2);
    // The engine sweeps every input sub-box once *per analyzed output*,
    // and each interval evaluation computes all outputs at once. Memoize
    // the per-sub-box output vector (bounded) so multi-output datapaths
    // pay for one sweep's worth of interval evaluations, not k.
    const MEMO_CAP: usize = 1 << 20;
    let multi_output = lowered.dfg.outputs().len() > 1;
    let memo: std::cell::RefCell<std::collections::HashMap<Vec<u64>, Vec<Interval>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
    let eval_outputs = |ranges: &[Interval]| -> Vec<Interval> {
        let compute = || {
            lowered
                .dfg
                .output_ranges(ranges, &RangeOptions::default())
                .expect("sub-box of a checked input box evaluates")
                .into_iter()
                .map(|(_, iv)| iv)
                .collect::<Vec<_>>()
        };
        if !multi_output {
            return compute();
        }
        let key: Vec<u64> = ranges
            .iter()
            .flat_map(|r| [r.lo().to_bits(), r.hi().to_bits()])
            .collect();
        if let Some(cached) = memo.borrow().get(&key) {
            return cached.clone();
        }
        let value = compute();
        let mut memo = memo.borrow_mut();
        if memo.len() < MEMO_CAP {
            memo.insert(key, value.clone());
        }
        value
    };
    lowered
        .dfg
        .outputs()
        .iter()
        .enumerate()
        .map(|(k, (name, _))| {
            let report = engine
                .analyze(&inputs, |ranges| eval_outputs(ranges)[k])
                .map_err(|e| CliError::failed(format!("cartesian analysis failed: {e}")))?;
            Ok((name.clone(), report))
        })
        .collect()
}
