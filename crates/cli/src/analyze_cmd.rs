//! `sna analyze` — run a noise analysis engine over one or many `.sna`
//! datapaths and report per-output [`NoiseReport`]s.
//!
//! Engines `auto`, `na`, `lti` work on the graph as written (including
//! linear feedback). `dfg` and `symbolic` are combinational engines: on a
//! sequential graph they analyze the *per-sample combinational view*
//! (delays become state inputs whose ranges come from range analysis).
//! `cartesian` runs the paper's Section-4 exact algorithm on the *value*
//! uncertainty of the inputs — it characterizes the output PDF rather
//! than quantization noise.
//!
//! With several files (or `--manifest`) the command runs in batch mode:
//! the files fan out across `--jobs` workers sharing one compile cache,
//! per-file output is byte-identical to the single-file invocation, and a
//! trailing summary line reports counts, cache hits, and timing.

use sna_core::NoiseReport;
use sna_service::exec::{self, AnalyzeEngine, AnalyzeParams};

use crate::common::{
    collect_files, open_store, parse_format, parse_jobs, report_human, run_batch, unknown_flag,
    Args, CliError, Format,
};
use crate::Json;

const USAGE: &str = "sna analyze <file>.sna... [--manifest list.txt] [--jobs N] \
                     [--engine auto|na|dfg|lti|symbolic|cartesian] \
                     [--bits N] [--bins N] [--store-dir DIR] [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new_multi(argv);
    let mut format = Format::Human;
    let mut engine = AnalyzeEngine::Auto;
    let mut bits: u8 = 12;
    let mut bins: usize = 64;
    let mut jobs: usize = sna_service::default_jobs();
    let mut manifest: Option<String> = None;
    let mut store_dir: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "engine" => {
                engine = AnalyzeEngine::parse(args.value("engine")?).map_err(CliError::Usage)?;
            }
            "bits" => bits = args.parse_value("bits")?,
            "bins" => bins = args.parse_value("bins")?,
            "jobs" => jobs = parse_jobs(&mut args)?,
            "manifest" => manifest = Some(args.value("manifest")?.to_string()),
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let (files, batch) = collect_files(args.files(), manifest.as_deref(), USAGE)?;
    let params = AnalyzeParams { engine, bits, bins };
    let store = match &store_dir {
        Some(dir) => Some(open_store(dir)?),
        None => None,
    };
    run_batch(
        "analyze",
        files,
        batch,
        jobs,
        format,
        store,
        |path, entry| {
            let reports = exec::analyze(entry, &params).map_err(CliError::Failed)?;
            Ok(render(path, engine, bits, bins, format, &reports))
        },
    )
}

/// One file's output — exactly the historical single-file form.
fn render(
    path: &str,
    engine: AnalyzeEngine,
    bits: u8,
    bins: usize,
    format: Format,
    reports: &[(String, NoiseReport)],
) -> String {
    match format {
        Format::Human => {
            let mut out = format!(
                "{path}: engine {} · {} bits · {} bins\n",
                engine.name(),
                bits,
                bins
            );
            if engine == AnalyzeEngine::Cartesian {
                out.push_str("(value-uncertainty PDF of the outputs, not quantization noise)\n");
            }
            for (name, report) in reports {
                out.push('\n');
                out.push_str(&report_human(name, report, true));
            }
            out
        }
        Format::Json => Json::Obj(vec![
            ("command".into(), Json::str("analyze")),
            ("file".into(), Json::str(path)),
            ("engine".into(), Json::str(engine.name())),
            ("bits".into(), Json::int(bits as usize)),
            ("bins".into(), Json::int(bins)),
            (
                "kind".into(),
                Json::str(if engine == AnalyzeEngine::Cartesian {
                    "value-pdf"
                } else {
                    "quantization-noise"
                }),
            ),
            (
                "reports".into(),
                Json::Arr(
                    reports
                        .iter()
                        .map(|(name, r)| exec::report_json(name, r, true))
                        .collect(),
                ),
            ),
        ])
        .to_string(),
    }
}
