use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match sna_cli::run(&argv) {
        Ok(output) => {
            // Write directly (not println!) so a closed pipe — e.g.
            // `sna ... | head` — ends the program quietly instead of
            // panicking on EPIPE.
            let mut stdout = std::io::stdout().lock();
            let newline = if output.ends_with('\n') || output.is_empty() {
                ""
            } else {
                "\n"
            };
            match write!(stdout, "{output}{newline}").and_then(|()| stdout.flush()) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error writing output: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(e.exit_code() as u8)
        }
    }
}
