use std::io::Write as _;
use std::process::ExitCode;

/// Writes command output to stdout. Write directly (not println!) so a
/// closed pipe — e.g. `sna ... | head` — ends the program quietly
/// instead of panicking on EPIPE.
fn write_stdout(output: &str) -> ExitCode {
    let mut stdout = std::io::stdout().lock();
    let newline = if output.ends_with('\n') || output.is_empty() {
        ""
    } else {
        "\n"
    };
    match write!(stdout, "{output}{newline}").and_then(|()| stdout.flush()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error writing output: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match sna_cli::run(&argv) {
        Ok(output) => write_stdout(&output),
        Err(e) => {
            // A partially failed batch still prints its full output on
            // stdout — only the exit code marks the failure. Everything
            // else reports on stderr.
            match e.stdout_output() {
                Some(output) => {
                    let _ = write_stdout(output);
                }
                None => eprintln!("{e}"),
            }
            ExitCode::from(u8::try_from(e.exit_code()).unwrap_or(1))
        }
    }
}
