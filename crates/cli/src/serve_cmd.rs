//! `sna serve` — the long-running server mode.
//!
//! By default the line-oriented JSON protocol runs over stdin/stdout:
//! one request per line, one compact JSON response per line (see
//! `crates/service/README.md` for the schema). With `--listen addr:port`
//! the same protocol runs over TCP on the `poll(2)` event-loop
//! transport: one reactor thread multiplexes every connection (bounded
//! accept, slow-client backpressure, idle timeouts), a worker pool runs
//! the requests, and all connections share one compile cache — so a
//! model built for one client serves every later request for the same
//! datapath. SIGTERM (and `shutdown` via the protocol's EOF) drains
//! gracefully: in-flight requests finish, late ones are refused.

use std::sync::Arc;
use std::time::Duration;

use sna_service::{CompileCache, Counter, ExecLimits, FaultPlan, ServerConfig, StatsRegistry};

use crate::common::{open_store, unknown_flag, Args, CliError};

const USAGE: &str = "sna serve [--listen addr:port] [--max-conns N] [--idle-timeout SECS] \
                     [--drain-timeout SECS] [--write-buf-cap BYTES] [--workers N] \
                     [--request-timeout MS] [--store-dir DIR] [--fault-plan SPEC]";

/// Runs the subcommand. Returns when stdin reaches EOF (stdio mode) or
/// the server finishes draining after SIGTERM (TCP mode).
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut listen: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut store_dir: Option<String> = None;
    let mut tcp_flag_seen: Option<&'static str> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "listen" => listen = Some(args.value("listen")?.to_string()),
            "max-conns" => {
                config.max_conns = args.parse_value("max-conns")?;
                tcp_flag_seen = Some("--max-conns");
            }
            "idle-timeout" => {
                config.idle_timeout = Duration::from_secs(args.parse_value("idle-timeout")?);
                tcp_flag_seen = Some("--idle-timeout");
            }
            "drain-timeout" => {
                config.drain_timeout = Duration::from_secs(args.parse_value("drain-timeout")?);
                tcp_flag_seen = Some("--drain-timeout");
            }
            "write-buf-cap" => {
                config.write_buf_cap = args.parse_value("write-buf-cap")?;
                tcp_flag_seen = Some("--write-buf-cap");
            }
            "workers" => {
                config.workers = args.parse_value("workers")?;
                tcp_flag_seen = Some("--workers");
            }
            // Applies to both transports, so it never trips the
            // `--listen`-only guard below.
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            "request-timeout" => {
                let ms: u64 = args.parse_value("request-timeout")?;
                if ms == 0 {
                    return Err(CliError::Usage(
                        "--request-timeout must be at least 1 ms".to_string(),
                    ));
                }
                config.request_timeout = Some(Duration::from_millis(ms));
            }
            "fault-plan" => {
                let spec = args.value("fault-plan")?;
                let plan = FaultPlan::parse(spec)
                    .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?;
                config.fault_plan = Some(Arc::new(plan));
                tcp_flag_seen = Some("--fault-plan");
            }
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    if let Some(stray) = args.files().first() {
        return Err(CliError::Usage(format!(
            "serve takes no file argument (got `{stray}`); send requests over the protocol\n\
             usage: {USAGE}"
        )));
    }
    if listen.is_none() {
        if let Some(flag) = tcp_flag_seen {
            return Err(CliError::Usage(format!(
                "{flag} only applies with --listen\nusage: {USAGE}"
            )));
        }
    }

    let store = store_dir.as_deref().map(open_store).transpose()?;
    let new_cache = || match &store {
        Some(s) => CompileCache::new().with_store(Arc::clone(s)),
        None => CompileCache::new(),
    };

    match listen {
        None => {
            let cache = new_cache();
            let stats = StatsRegistry::new();
            let limits = ExecLimits {
                request_timeout: config.request_timeout,
                pre_cancelled: false,
            };
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let report = sna_service::serve_stats_limited(
                stdin.lock(),
                stdout.lock(),
                &cache,
                &stats,
                &limits,
            )
            .map_err(|e| CliError::failed(format!("serve failed: {e}")))?;
            let cache_stats = cache.stats();
            // The protocol owns stdout; the sign-off goes to stderr.
            eprintln!(
                "served {} request(s), {} error(s) · cache {} hit(s) / {} miss(es){}",
                report.requests,
                report.errors,
                cache_stats.hits,
                cache_stats.misses,
                store_signoff(&cache)
            );
            Ok(String::new())
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|e| CliError::failed(format!("cannot listen on `{addr}`: {e}")))?;
            let cache = Arc::new(new_cache());
            let stats = Arc::new(StatsRegistry::new());
            let handle =
                sna_service::spawn_server(listener, Arc::clone(&cache), Arc::clone(&stats), config)
                    .map_err(|e| CliError::failed(format!("serve failed: {e}")))?;
            eprintln!("sna serve: listening on {}", handle.local_addr());
            handle
                .install_termination_handler()
                .map_err(|e| CliError::failed(format!("cannot install SIGTERM handler: {e}")))?;
            // Blocks until SIGTERM triggers the drain and the reactor
            // (plus its workers) exits.
            handle
                .join()
                .map_err(|e| CliError::failed(format!("serve failed: {e}")))?;
            let cache_stats = cache.stats();
            eprintln!(
                "sna serve: drained · {} request(s), {} error(s) \
                 ({} timeout(s) / {} cancelled / {} panic(s)) · \
                 conns {} accepted / {} rejected / {} timed out / {} drained · \
                 cache {} hit(s) / {} miss(es){}",
                stats.get(Counter::Requests),
                stats.get(Counter::Errors),
                stats.get(Counter::Timeouts),
                stats.get(Counter::Cancelled),
                stats.get(Counter::Panics),
                stats.get(Counter::Accepted),
                stats.get(Counter::Rejected),
                stats.get(Counter::TimedOut),
                stats.get(Counter::Drained),
                cache_stats.hits,
                cache_stats.misses,
                store_signoff(&cache)
            );
            Ok(String::new())
        }
    }
}

/// Spills the cache to its store (the drain is the quiet point — every
/// lazily built stage is final now) and renders the store counters for
/// the sign-off line. Empty without `--store-dir`.
fn store_signoff(cache: &CompileCache) -> String {
    let Some(store) = cache.store() else {
        return String::new();
    };
    cache.spill();
    let s = store.stats();
    format!(
        " · store {} hit(s) / {} miss(es) / {} write(s) / {} corrupt",
        s.hits, s.misses, s.writes, s.corrupt
    )
}
