//! `sna serve` — the long-running server mode.
//!
//! By default the line-oriented JSON protocol runs over stdin/stdout:
//! one request per line, one compact JSON response per line (see
//! `crates/service/README.md` for the schema). With `--listen addr:port`
//! the same protocol runs over TCP, one thread per connection, all
//! connections sharing one compile cache — so a model built for one
//! client serves every later request for the same datapath.

use std::sync::Arc;

use sna_service::CompileCache;

use crate::common::{unknown_flag, Args, CliError};

const USAGE: &str = "sna serve [--listen addr:port] [--max-conns N]";

/// Runs the subcommand. Returns only when the input reaches EOF
/// (stdin/stdout mode) or `--max-conns` connections have been served.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut listen: Option<String> = None;
    let mut max_conns: Option<u64> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "listen" => listen = Some(args.value("listen")?.to_string()),
            "max-conns" => max_conns = Some(args.parse_value("max-conns")?),
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    if let Some(stray) = args.files().first() {
        return Err(CliError::Usage(format!(
            "serve takes no file argument (got `{stray}`); send requests over the protocol\n\
             usage: {USAGE}"
        )));
    }
    if max_conns.is_some() && listen.is_none() {
        return Err(CliError::Usage(format!(
            "--max-conns only applies with --listen\nusage: {USAGE}"
        )));
    }

    match listen {
        None => {
            let cache = CompileCache::new();
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let report = sna_service::serve(stdin.lock(), stdout.lock(), &cache)
                .map_err(|e| CliError::failed(format!("serve failed: {e}")))?;
            let stats = cache.stats();
            // The protocol owns stdout; the sign-off goes to stderr.
            eprintln!(
                "served {} request(s), {} error(s) · cache {} hit(s) / {} miss(es)",
                report.requests, report.errors, stats.hits, stats.misses
            );
            Ok(String::new())
        }
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .map_err(|e| CliError::failed(format!("cannot listen on `{addr}`: {e}")))?;
            let local = listener.local_addr().map(|a| a.to_string()).unwrap_or(addr);
            eprintln!("sna serve: listening on {local}");
            let cache = Arc::new(CompileCache::new());
            sna_service::serve_tcp(&listener, &cache, max_conns)
                .map_err(|e| CliError::failed(format!("serve failed: {e}")))?;
            Ok(String::new())
        }
    }
}
