//! `sna trace` — trace-driven noise analysis: recorded input signals
//! in, empirical noise reports out.
//!
//! Three modes share one ingestion path (streaming CSV → per-column
//! `OnlineStats` → fitted ranges and histograms):
//!
//! * `fit` — bind the CSV columns to the datapath's inputs and report
//!   the measured ranges/moments that replace the declared ranges.
//! * `replay` — drive the VM's paired exact/quantized lanes with the
//!   recorded rows and report the *measured* output noise alone.
//! * `report` — `replay` plus the analytic prediction computed from the
//!   *fitted* (empirical) input ranges, with abs/rel gaps per output.
//!
//! The replay is deterministic: the trace is cut into fixed segments
//! that map onto VM lanes, so the numbers are bit-identical whatever
//! `--workers` says. With `--store-dir` the fitted input ranges are
//! spilled to the artifact store as `tracefit` objects (keyed by
//! program fingerprint × trace content), alongside the compile cache's
//! usual skeleton spill.

use std::sync::Arc;

use sna_core::TraceReport;
use sna_service::exec::{self, TraceParams};
use sna_store::{fnv1a_64, Store, WireWriter};
use sna_trace::TraceLimits;

use crate::common::{
    collect_files, open_store, parse_format, parse_jobs, report_human, run_batch, unknown_flag,
    Args, CliError, Format,
};
use crate::Json;

const USAGE: &str = "sna trace <fit|replay|report> <file>.sna... --trace data.csv \
                     [--manifest list.txt] [--jobs N] [--bits N] [--bins N] \
                     [--warmup N] [--workers N] [--store-dir DIR] [--format human|json]";

/// Object kind of a spilled fitted-range artifact.
const TRACEFIT_KIND: &str = "tracefit";

/// Version tag leading every `tracefit` payload.
const TRACEFIT_VERSION: u32 = 1;

/// The three subverbs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Fit,
    Replay,
    Report,
}

impl Mode {
    fn parse(raw: &str) -> Result<Mode, CliError> {
        match raw {
            "fit" => Ok(Mode::Fit),
            "replay" => Ok(Mode::Replay),
            "report" => Ok(Mode::Report),
            other => Err(CliError::Usage(format!(
                "unknown trace mode `{other}` (expected fit, replay or report)\nusage: {USAGE}"
            ))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Mode::Fit => "fit",
            Mode::Replay => "replay",
            Mode::Report => "report",
        }
    }
}

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new_multi(argv);
    let mut format = Format::Human;
    let mut params = TraceParams::default();
    let mut jobs: usize = sna_service::default_jobs();
    let mut manifest: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut trace_path: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "trace" => trace_path = Some(args.value("trace")?.to_string()),
            "bits" => params.bits = args.parse_value("bits")?,
            "bins" => params.bins = args.parse_value("bins")?,
            "warmup" => params.warmup = Some(args.parse_value("warmup")?),
            "workers" => params.workers = args.parse_value("workers")?,
            "jobs" => jobs = parse_jobs(&mut args)?,
            "manifest" => manifest = Some(args.value("manifest")?.to_string()),
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let Some((mode_raw, file_args)) = args.files().split_first() else {
        return Err(CliError::Usage(format!(
            "missing <fit|replay|report> mode\nusage: {USAGE}"
        )));
    };
    let mode = Mode::parse(mode_raw)?;
    params.predict = mode == Mode::Report;
    let Some(trace_path) = trace_path else {
        return Err(CliError::Usage(format!(
            "missing --trace data.csv\nusage: {USAGE}"
        )));
    };
    let csv = std::fs::read_to_string(&trace_path)
        .map_err(|e| CliError::failed(format!("cannot read `{trace_path}`: {e}")))?;
    let (files, batch) = collect_files(file_args, manifest.as_deref(), USAGE)?;
    // The fitted-range spill target: the SAME handle the batch's compile
    // cache spills through — a second handle on the directory would
    // clobber the index entries the other one wrote.
    let fit_store: Option<Arc<Store>> = match &store_dir {
        Some(dir) => Some(open_store(dir)?),
        None => None,
    };
    let csv_key = fnv1a_64(csv.as_bytes());
    run_batch(
        "trace",
        files,
        batch,
        jobs,
        format,
        fit_store.clone(),
        |path, entry| {
            let budget = sna_core::Budget::unlimited();
            let trace = exec::ingest_trace(&csv, &entry.session, &TraceLimits::default(), &budget)
                .map_err(CliError::Failed)?;
            let fit =
                exec::trace_fit(&entry.session, &trace, params.bins).map_err(CliError::Failed)?;
            if let Some(store) = &fit_store {
                spill_fit(store, entry.fingerprint ^ csv_key, &fit);
            }
            match mode {
                Mode::Fit => Ok(render_fit(path, &trace, params.bins, format, &fit)),
                Mode::Replay | Mode::Report => {
                    let report =
                        exec::trace_report(entry, &trace, &params).map_err(CliError::Failed)?;
                    Ok(render(path, mode, &params, format, &report))
                }
            }
        },
    )
}

/// Writes the fitted ranges/moments to the artifact store, keyed by
/// `program fingerprint ⊕ trace-content hash` so re-runs over the same
/// pair land on the same object. Spill failures are non-fatal — the
/// store is an accelerator, never a correctness dependency.
fn spill_fit(store: &Store, key: u64, fit: &[sna_core::TraceInputFit]) {
    let mut w = WireWriter::new();
    w.u32(TRACEFIT_VERSION);
    w.len(fit.len());
    for f in fit {
        w.str(&f.name);
        w.u64(f.samples as u64);
        w.f64(f.mean);
        w.f64(f.variance);
        w.f64(f.range.lo());
        w.f64(f.range.hi());
    }
    let _ = store.put(TRACEFIT_KIND, key, &w.finish());
}

/// One file's `fit` output.
fn render_fit(
    path: &str,
    trace: &sna_trace::Trace,
    bins: usize,
    format: Format,
    fit: &[sna_core::TraceInputFit],
) -> String {
    match format {
        Format::Human => {
            let mut out = format!(
                "{path}: trace fit · {} row(s) · {} skipped · {} bins\n",
                trace.rows(),
                trace.skipped(),
                bins
            );
            for f in fit {
                out.push_str(&format!(
                    "input `{}`\n  samples   {:>13}\n  mean      {:>13.6e}\n  \
                     variance  {:>13.6e}\n  range     [{:.6e}, {:.6e}]\n",
                    f.name,
                    f.samples,
                    f.mean,
                    f.variance,
                    f.range.lo(),
                    f.range.hi(),
                ));
            }
            out
        }
        Format::Json => {
            let fields = vec![
                ("command".into(), Json::str("trace")),
                ("file".into(), Json::str(path)),
                ("engine".into(), Json::str("trace")),
                ("mode".into(), Json::str("fit")),
                ("bins".into(), Json::int(bins)),
                ("rows".into(), Json::int(trace.rows())),
                ("skipped".into(), Json::int(trace.skipped())),
                ("fit".into(), exec::trace_fit_json(fit, true)),
            ];
            Json::Obj(fields).to_string()
        }
    }
}

/// One file's `replay`/`report` output — the JSON shape matches the
/// server's `trace` verb field-for-field (plus `command`/`file`).
fn render(
    path: &str,
    mode: Mode,
    params: &TraceParams,
    format: Format,
    report: &TraceReport,
) -> String {
    match format {
        Format::Human => {
            let mut out = format!(
                "{path}: trace {} · {} bits · {} row(s) · {} skipped · {} warmup\n",
                mode.name(),
                params.bits,
                report.rows,
                report.skipped,
                report.warmup
            );
            match report.predicted_by {
                Some(engine) => out.push_str(&format!(
                    "predicted by the `{}` engine over the fitted ranges; \
                     gaps are measured − predicted\n",
                    engine.name()
                )),
                None => out.push_str("measured numbers only (no analytic prediction)\n"),
            }
            for output in &report.outputs {
                out.push('\n');
                out.push_str(&report_human(&output.name, &output.empirical, true));
                if let Some(predicted) = &output.predicted {
                    out.push_str(&format!(
                        "  predicted mean {:>13.6e} · variance {:>13.6e}\n",
                        predicted.mean, predicted.variance
                    ));
                }
                if let (Some(mg), Some(vg)) = (&output.mean_gap, &output.variance_gap) {
                    out.push_str(&format!(
                        "  gap       mean {:>13.6e}{} · variance {:>13.6e}{}\n",
                        mg.abs,
                        rel_suffix(mg.rel),
                        vg.abs,
                        rel_suffix(vg.rel),
                    ));
                }
            }
            out
        }
        Format::Json => {
            let mut fields = vec![
                ("command".into(), Json::str("trace")),
                ("file".into(), Json::str(path)),
                ("engine".into(), Json::str("trace")),
                ("mode".into(), Json::str(mode.name())),
                ("bits".into(), Json::int(params.bits as usize)),
                ("bins".into(), Json::int(params.bins)),
            ];
            fields.extend(exec::trace_json_fields(report, true));
            Json::Obj(fields).to_string()
        }
    }
}

fn rel_suffix(rel: Option<f64>) -> String {
    rel.map_or(String::new(), |r| format!(" ({:.2}% rel)", r * 100.0))
}
