//! `sna synth` — run the HLS flow (schedule, bind, cost) for one
//! word-length configuration of a `.sna` datapath.

use sna_core::Session;
use sna_hls::SynthesisConstraints;
use sna_service::exec;

use crate::common::{load, parse_format, unknown_flag, Args, CliError, Format};
use crate::Json;

const USAGE: &str = "sna synth <file>.sna [--bits N] [--clock NS] [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut format = Format::Human;
    let mut bits: u8 = 12;
    let mut clock: f64 = SynthesisConstraints::default().clock_ns;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "bits" => bits = args.parse_value("bits")?,
            "clock" => clock = args.parse_value("clock")?,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    let path = args.file(USAGE)?;
    let (lowered, _) = load(path)?;
    let session = Session::new(lowered.dfg, lowered.input_ranges)
        .map_err(|e| CliError::failed(e.to_string()))?;

    let imp = exec::synth(&session, bits, clock).map_err(CliError::Failed)?;
    let cost = &imp.cost;

    Ok(match format {
        Format::Human => format!(
            "{path}: {bits}-bit implementation @ {clock} ns clock\n\
             \n\
             area      {:>10.1} µm²  (FUs {:.1}, registers {:.1}, muxes {:.1})\n\
             power     {:>10.1} µW\n\
             latency   {:>10} cycles\n\
             energy    {:>10.2} pJ/sample\n\
             schedule  {:>10} scheduled op(s)\n",
            cost.area_um2,
            cost.fu_area_um2,
            cost.reg_area_um2,
            cost.mux_area_um2,
            cost.power_uw,
            cost.latency_cycles,
            cost.energy_per_sample_pj,
            imp.schedule.n_ops(),
        ),
        Format::Json => Json::Obj(vec![
            ("command".into(), Json::str("synth")),
            ("file".into(), Json::str(path)),
            ("bits".into(), Json::int(bits as usize)),
            ("clock_ns".into(), Json::Num(clock)),
            ("cost".into(), exec::cost_json(cost)),
            ("scheduled_ops".into(), Json::int(imp.schedule.n_ops())),
        ])
        .to_string(),
    })
}
