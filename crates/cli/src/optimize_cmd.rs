//! `sna optimize` — noise-constrained word-length optimization of a
//! `.sna` datapath with the five `sna_opt::Optimizer` search methods.
//!
//! The budget defaults to the noise power of the uniform `--ref-bits`
//! reference design (the paper's "Fixed WL" column); `--budget` overrides
//! it with an explicit noise power. `--method all` runs every budgeted
//! method and prints a comparison.

use sna_hls::SynthesisConstraints;
use sna_opt::{AnnealOptions, Evaluation, Optimizer};

use crate::common::{load, parse_format, unknown_flag, Args, CliError, Format};
use crate::json::Json;

const USAGE: &str = "sna optimize <file>.sna \
                     [--method greedy|waterfill|anneal|group-greedy|exhaustive|uniform|all] \
                     [--ref-bits W] [--budget X] [--start W] [--radius R] [--format human|json]";

const METHODS: [&str; 5] = [
    "greedy",
    "waterfill",
    "anneal",
    "group-greedy",
    "exhaustive",
];

/// `--method all` runs the methods that scale to real designs;
/// `exhaustive` is opt-in because its search space is exponential in the
/// node count.
const ALL_METHODS: [&str; 4] = ["greedy", "waterfill", "anneal", "group-greedy"];

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut format = Format::Human;
    let mut method = "greedy".to_string();
    let mut ref_bits: u8 = 12;
    let mut budget: Option<f64> = None;
    let mut start: u8 = 16;
    let mut radius: u8 = 1;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "method" => method = args.value("method")?.to_string(),
            "ref-bits" => ref_bits = args.parse_value("ref-bits")?,
            "budget" => budget = Some(args.parse_value("budget")?),
            "start" => start = args.parse_value("start")?,
            "radius" => radius = args.parse_value("radius")?,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    if method != "all" && method != "uniform" && !METHODS.contains(&method.as_str()) {
        return Err(CliError::Usage(format!(
            "unknown method `{method}`\nusage: {USAGE}"
        )));
    }
    let path = args.file(USAGE)?;
    let (lowered, _) = load(path)?;

    let optimizer = Optimizer::new(
        &lowered.dfg,
        &lowered.input_ranges,
        SynthesisConstraints::default(),
    )
    .map_err(|e| CliError::failed(format!("cannot build the optimizer: {e}")))?;

    // The reference design also supplies the default budget.
    let reference = optimizer
        .uniform(ref_bits)
        .map_err(|e| CliError::failed(format!("reference synthesis failed: {e}")))?;
    let budget = budget.unwrap_or(reference.noise_power);

    let mut results: Vec<(String, Evaluation)> = Vec::new();
    let run_one = |name: &str, optimizer: &Optimizer| -> Result<Evaluation, CliError> {
        let r = match name {
            "uniform" => optimizer.uniform(start),
            "greedy" => optimizer.greedy(budget, start),
            "waterfill" => optimizer.waterfill(budget),
            "anneal" => optimizer.anneal(budget, start, &AnnealOptions::default()),
            "group-greedy" => optimizer.group_greedy(budget, start),
            "exhaustive" => optimizer.exhaustive(budget, ref_bits, radius, 2_000_000),
            _ => unreachable!("validated above"),
        };
        r.map_err(|e| CliError::failed(format!("method `{name}` failed: {e}")))
    };
    if method == "all" {
        for name in ALL_METHODS {
            results.push((name.to_string(), run_one(name, &optimizer)?));
        }
    } else {
        results.push((method.clone(), run_one(&method, &optimizer)?));
    }

    Ok(match format {
        Format::Human => human(path, budget, &reference, &results),
        Format::Json => json(path, budget, &reference, &results).to_string(),
    })
}

fn eval_human(tag: &str, e: &Evaluation) -> String {
    format!(
        "{tag:<14} noise {:>12.6e}  area {:>10.1} µm²  power {:>9.1} µW  \
         latency {:>3} cyc  weighted {:>12.1}\n",
        e.noise_power, e.cost.area_um2, e.cost.power_uw, e.cost.latency_cycles, e.weighted_cost
    )
}

fn human(
    path: &str,
    budget: f64,
    reference: &Evaluation,
    results: &[(String, Evaluation)],
) -> String {
    let mut out = format!("{path}: noise budget {budget:.6e}\n\n");
    out.push_str(&eval_human("reference", reference));
    for (name, e) in results {
        out.push_str(&eval_human(name, e));
    }
    if let Some((_, best)) = results
        .iter()
        .min_by(|a, b| a.1.weighted_cost.total_cmp(&b.1.weighted_cost))
    {
        out.push_str(&format!(
            "\nbest: {:.1}% of reference weighted cost · word lengths {:?}\n",
            100.0 * best.weighted_cost / reference.weighted_cost,
            best.word_lengths
        ));
    }
    out
}

fn eval_json(e: &Evaluation) -> Json {
    Json::Obj(vec![
        (
            "word_lengths".into(),
            Json::Arr(
                e.word_lengths
                    .iter()
                    .map(|&w| Json::int(w as usize))
                    .collect(),
            ),
        ),
        ("noise_power".into(), Json::Num(e.noise_power)),
        ("weighted_cost".into(), Json::Num(e.weighted_cost)),
        (
            "cost".into(),
            Json::Obj(vec![
                ("area_um2".into(), Json::Num(e.cost.area_um2)),
                ("power_uw".into(), Json::Num(e.cost.power_uw)),
                (
                    "latency_cycles".into(),
                    Json::int(e.cost.latency_cycles as usize),
                ),
                ("fu_area_um2".into(), Json::Num(e.cost.fu_area_um2)),
                ("reg_area_um2".into(), Json::Num(e.cost.reg_area_um2)),
                ("mux_area_um2".into(), Json::Num(e.cost.mux_area_um2)),
                (
                    "energy_per_sample_pj".into(),
                    Json::Num(e.cost.energy_per_sample_pj),
                ),
            ]),
        ),
    ])
}

fn json(path: &str, budget: f64, reference: &Evaluation, results: &[(String, Evaluation)]) -> Json {
    Json::Obj(vec![
        ("command".into(), Json::str("optimize")),
        ("file".into(), Json::str(path)),
        ("budget".into(), Json::Num(budget)),
        ("reference".into(), eval_json(reference)),
        (
            "results".into(),
            Json::Obj(
                results
                    .iter()
                    .map(|(name, e)| (name.clone(), eval_json(e)))
                    .collect(),
            ),
        ),
    ])
}
