//! `sna optimize` — noise-constrained word-length optimization of one or
//! many `.sna` datapaths with the five `sna_opt::Optimizer` search
//! methods.
//!
//! The budget defaults to the noise power of the uniform `--ref-bits`
//! reference design (the paper's "Fixed WL" column); `--budget` overrides
//! it with an explicit noise power. `--method all` runs every budgeted
//! method and prints a comparison. Several files (or `--manifest`) run in
//! batch mode across `--jobs` workers with a trailing summary line.
//!
//! `--pareto` switches to the resumable design-space explorer instead:
//! a geometric ladder of `--points` noise budgets between the noise of
//! the uniform `--w-hi` and `--w-lo` designs is swept once per cost
//! objective (area, power, latency), and the non-dominated frontier is
//! reported. With `--store-dir` the sweep checkpoints its frontier every
//! `--checkpoint-every` candidates into the persistent artifact store,
//! and an interrupted sweep resumes from the last checkpoint — the
//! resumed frontier is bit-identical to an uninterrupted run.

use sna_hls::SynthesisConstraints;
use sna_opt::{pareto_explore, Evaluation, ParetoOutcome, ParetoSweepSpec};
use sna_service::exec::{self, OptimizeParams};
use sna_service::CompileCache;

use crate::common::{
    collect_files, open_store, parse_format, parse_jobs, run_batch, unknown_flag, Args, CliError,
    Format,
};
use crate::Json;

const USAGE: &str = "sna optimize <file>.sna... [--manifest list.txt] [--jobs N] \
                     [--method greedy|waterfill|anneal|group-greedy|exhaustive|uniform|all] \
                     [--ref-bits W] [--budget X] [--start W] [--radius R] \
                     [--restarts N] [--threads N] [--store-dir DIR] [--format human|json]\n\
                     \x20      --pareto [--points N] [--checkpoint-every K] [--w-lo W] [--w-hi W]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new_multi(argv);
    let mut format = Format::Human;
    let mut params = OptimizeParams::default();
    let mut jobs: usize = sna_service::default_jobs();
    let mut manifest: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut pareto = false;
    let mut spec = ParetoSweepSpec::default();
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "method" => params.method = args.value("method")?.to_string(),
            "ref-bits" => params.ref_bits = args.parse_value("ref-bits")?,
            "budget" => params.budget = Some(args.parse_value("budget")?),
            "start" => params.start = args.parse_value("start")?,
            "radius" => params.radius = args.parse_value("radius")?,
            "restarts" => params.restarts = args.parse_value("restarts")?,
            "threads" => {
                params.threads = args.parse_value("threads")?;
                spec.threads = params.threads;
            }
            "jobs" => jobs = parse_jobs(&mut args)?,
            "manifest" => manifest = Some(args.value("manifest")?.to_string()),
            "store-dir" => store_dir = Some(args.value("store-dir")?.to_string()),
            "pareto" => pareto = true,
            "points" => spec.noise_points = args.parse_value("points")?,
            "checkpoint-every" => spec.checkpoint_every = args.parse_value("checkpoint-every")?,
            "w-lo" => spec.w_lo = args.parse_value("w-lo")?,
            "w-hi" => spec.w_hi = args.parse_value("w-hi")?,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    if pareto {
        return run_pareto(
            &args,
            manifest.as_deref(),
            store_dir.as_deref(),
            &spec,
            format,
        );
    }
    let d = ParetoSweepSpec::default();
    if (
        spec.noise_points,
        spec.checkpoint_every,
        spec.w_lo,
        spec.w_hi,
    ) != (d.noise_points, d.checkpoint_every, d.w_lo, d.w_hi)
    {
        return Err(CliError::Usage(format!(
            "--points/--checkpoint-every/--w-lo/--w-hi only apply with --pareto\nusage: {USAGE}"
        )));
    }
    exec::validate_method(&params.method)
        .map_err(|e| CliError::Usage(format!("{e}\nusage: {USAGE}")))?;
    let (files, batch) = collect_files(args.files(), manifest.as_deref(), USAGE)?;
    let store = match &store_dir {
        Some(dir) => Some(open_store(dir)?),
        None => None,
    };
    run_batch(
        "optimize",
        files,
        batch,
        jobs,
        format,
        store,
        |path, entry| {
            let out = exec::optimize(&entry.session, &params).map_err(CliError::Failed)?;
            Ok(match format {
                Format::Human => human(path, out.budget, &out.reference, &out.results),
                Format::Json => json(path, out.budget, &out.reference, &out.results).to_string(),
            })
        },
    )
}

/// The `--pareto` mode: one file, one resumable sweep.
fn run_pareto(
    args: &Args,
    manifest: Option<&str>,
    store_dir: Option<&str>,
    spec: &ParetoSweepSpec,
    format: Format,
) -> Result<String, CliError> {
    if manifest.is_some() || args.files().len() > 1 {
        return Err(CliError::Usage(format!(
            "--pareto sweeps a single file (no --manifest / batch)\nusage: {USAGE}"
        )));
    }
    let path = args.file(USAGE)?;
    let store = store_dir.map(open_store).transpose()?;
    // The compile goes through a store-backed cache so a warm store also
    // skips the model build, not just the sweep prefix.
    let cache = match &store {
        Some(s) => CompileCache::new().with_store(s.clone()),
        None => CompileCache::new(),
    };
    let entry = crate::common::load_cached(&cache, path)?;
    let outcome = pareto_explore(
        &entry.session,
        SynthesisConstraints::default(),
        spec,
        store.as_deref(),
    );
    // Spill before propagating a sweep failure: the compiled skeleton is
    // valid whatever the sweep did, and losing it would make the retry
    // recompile from scratch instead of warm-loading.
    if store.is_some() {
        cache.spill();
    }
    let outcome = outcome.map_err(|e| CliError::failed(format!("pareto sweep failed: {e}")))?;
    Ok(match format {
        Format::Human => pareto_human(path, spec, &outcome),
        Format::Json => pareto_json(path, spec, &outcome).to_string(),
    })
}

fn pareto_human(path: &str, spec: &ParetoSweepSpec, outcome: &ParetoOutcome) -> String {
    let mut out = format!(
        "{path}: pareto sweep · widths {}..{} · {} noise point(s) × 3 objective(s) = \
         {} candidate(s)\n\
         evaluated {} (resumed at {}) · {} checkpoint(s) written · frontier {} point(s)\n\n",
        spec.w_lo,
        spec.w_hi,
        spec.noise_points,
        outcome.total,
        outcome.evaluated,
        outcome.resumed_at,
        outcome.checkpoints,
        outcome.frontier.len()
    );
    for p in &outcome.frontier {
        out.push_str(&eval_human(p.objective.as_str(), &p.eval));
    }
    out
}

fn pareto_json(path: &str, spec: &ParetoSweepSpec, outcome: &ParetoOutcome) -> Json {
    Json::Obj(vec![
        ("command".into(), Json::str("optimize")),
        ("mode".into(), Json::str("pareto")),
        ("file".into(), Json::str(path)),
        ("w_lo".into(), Json::int(spec.w_lo as usize)),
        ("w_hi".into(), Json::int(spec.w_hi as usize)),
        ("points".into(), Json::int(spec.noise_points)),
        ("total".into(), Json::int(outcome.total)),
        ("evaluated".into(), Json::int(outcome.evaluated)),
        ("resumed_at".into(), Json::int(outcome.resumed_at)),
        ("checkpoints".into(), Json::int(outcome.checkpoints)),
        (
            "frontier".into(),
            Json::Arr(
                outcome
                    .frontier
                    .iter()
                    .map(|p| {
                        let Json::Obj(mut fields) = exec::eval_json(&p.eval) else {
                            unreachable!("eval_json returns an object");
                        };
                        fields.insert(0, ("objective".into(), Json::str(p.objective.as_str())));
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

fn eval_human(tag: &str, e: &Evaluation) -> String {
    format!(
        "{tag:<14} noise {:>12.6e}  area {:>10.1} µm²  power {:>9.1} µW  \
         latency {:>3} cyc  weighted {:>12.1}\n",
        e.noise_power, e.cost.area_um2, e.cost.power_uw, e.cost.latency_cycles, e.weighted_cost
    )
}

fn human(
    path: &str,
    budget: f64,
    reference: &Evaluation,
    results: &[(String, Evaluation)],
) -> String {
    let mut out = format!("{path}: noise budget {budget:.6e}\n\n");
    out.push_str(&eval_human("reference", reference));
    for (name, e) in results {
        out.push_str(&eval_human(name, e));
    }
    if let Some((_, best)) = results
        .iter()
        .min_by(|a, b| a.1.weighted_cost.total_cmp(&b.1.weighted_cost))
    {
        out.push_str(&format!(
            "\nbest: {:.1}% of reference weighted cost · word lengths {:?}\n",
            100.0 * best.weighted_cost / reference.weighted_cost,
            best.word_lengths
        ));
    }
    out
}

fn json(path: &str, budget: f64, reference: &Evaluation, results: &[(String, Evaluation)]) -> Json {
    Json::Obj(vec![
        ("command".into(), Json::str("optimize")),
        ("file".into(), Json::str(path)),
        ("budget".into(), Json::Num(budget)),
        ("reference".into(), exec::eval_json(reference)),
        (
            "results".into(),
            Json::Obj(
                results
                    .iter()
                    .map(|(name, e)| (name.clone(), exec::eval_json(e)))
                    .collect(),
            ),
        ),
    ])
}
