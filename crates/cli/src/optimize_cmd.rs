//! `sna optimize` — noise-constrained word-length optimization of one or
//! many `.sna` datapaths with the five `sna_opt::Optimizer` search
//! methods.
//!
//! The budget defaults to the noise power of the uniform `--ref-bits`
//! reference design (the paper's "Fixed WL" column); `--budget` overrides
//! it with an explicit noise power. `--method all` runs every budgeted
//! method and prints a comparison. Several files (or `--manifest`) run in
//! batch mode across `--jobs` workers with a trailing summary line.

use sna_opt::Evaluation;
use sna_service::exec::{self, OptimizeParams};

use crate::common::{
    collect_files, parse_format, parse_jobs, run_batch, unknown_flag, Args, CliError, Format,
};
use crate::Json;

const USAGE: &str = "sna optimize <file>.sna... [--manifest list.txt] [--jobs N] \
                     [--method greedy|waterfill|anneal|group-greedy|exhaustive|uniform|all] \
                     [--ref-bits W] [--budget X] [--start W] [--radius R] \
                     [--restarts N] [--threads N] [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new_multi(argv);
    let mut format = Format::Human;
    let mut params = OptimizeParams::default();
    let mut jobs: usize = sna_service::default_jobs();
    let mut manifest: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "method" => params.method = args.value("method")?.to_string(),
            "ref-bits" => params.ref_bits = args.parse_value("ref-bits")?,
            "budget" => params.budget = Some(args.parse_value("budget")?),
            "start" => params.start = args.parse_value("start")?,
            "radius" => params.radius = args.parse_value("radius")?,
            "restarts" => params.restarts = args.parse_value("restarts")?,
            "threads" => params.threads = args.parse_value("threads")?,
            "jobs" => jobs = parse_jobs(&mut args)?,
            "manifest" => manifest = Some(args.value("manifest")?.to_string()),
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    exec::validate_method(&params.method)
        .map_err(|e| CliError::Usage(format!("{e}\nusage: {USAGE}")))?;
    let (files, batch) = collect_files(args.files(), manifest.as_deref(), USAGE)?;
    run_batch("optimize", files, batch, jobs, format, |path, entry| {
        let out = exec::optimize(&entry.session, &params).map_err(CliError::Failed)?;
        Ok(match format {
            Format::Human => human(path, out.budget, &out.reference, &out.results),
            Format::Json => json(path, out.budget, &out.reference, &out.results).to_string(),
        })
    })
}

fn eval_human(tag: &str, e: &Evaluation) -> String {
    format!(
        "{tag:<14} noise {:>12.6e}  area {:>10.1} µm²  power {:>9.1} µW  \
         latency {:>3} cyc  weighted {:>12.1}\n",
        e.noise_power, e.cost.area_um2, e.cost.power_uw, e.cost.latency_cycles, e.weighted_cost
    )
}

fn human(
    path: &str,
    budget: f64,
    reference: &Evaluation,
    results: &[(String, Evaluation)],
) -> String {
    let mut out = format!("{path}: noise budget {budget:.6e}\n\n");
    out.push_str(&eval_human("reference", reference));
    for (name, e) in results {
        out.push_str(&eval_human(name, e));
    }
    if let Some((_, best)) = results
        .iter()
        .min_by(|a, b| a.1.weighted_cost.total_cmp(&b.1.weighted_cost))
    {
        out.push_str(&format!(
            "\nbest: {:.1}% of reference weighted cost · word lengths {:?}\n",
            100.0 * best.weighted_cost / reference.weighted_cost,
            best.word_lengths
        ));
    }
    out
}

fn json(path: &str, budget: f64, reference: &Evaluation, results: &[(String, Evaluation)]) -> Json {
    Json::Obj(vec![
        ("command".into(), Json::str("optimize")),
        ("file".into(), Json::str(path)),
        ("budget".into(), Json::Num(budget)),
        ("reference".into(), exec::eval_json(reference)),
        (
            "results".into(),
            Json::Obj(
                results
                    .iter()
                    .map(|(name, e)| (name.clone(), exec::eval_json(e)))
                    .collect(),
            ),
        ),
    ])
}
