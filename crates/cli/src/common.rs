//! Shared plumbing for the `sna` subcommands: error type, argument
//! helpers, program loading, and the report formatting used by more than
//! one command.

use std::fmt;
use std::path::Path;

use sna_core::NoiseReport;
use sna_dfg::Dfg;
use sna_fixp::WlConfig;
use sna_hist::RenderOptions;
use sna_interval::Interval;
use sna_lang::{render_all, Lowered};

use crate::json::Json;

/// A CLI failure: what to print on stderr, and the exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad command line; prints usage advice. Exit code 2.
    Usage(String),
    /// Source diagnostics (already rendered) or runtime failures. Exit
    /// code 1.
    Failed(String),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) => 1,
        }
    }

    /// Convenience for `Failed` with a formatted message.
    pub fn failed(message: impl Into<String>) -> Self {
        CliError::Failed(message.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failed(m) => f.write_str(m),
        }
    }
}

/// Output format selector (`--format`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Format {
    /// Prose + tables for terminals.
    #[default]
    Human,
    /// A single JSON document on stdout.
    Json,
}

/// Reads and compiles a `.sna` file, rendering diagnostics on failure.
pub fn load(path: &str) -> Result<(Lowered, String), CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::failed(format!("cannot read `{path}`: {e}")))?;
    let origin = Path::new(path)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    match sna_lang::compile(&source) {
        Ok(lowered) => Ok((lowered, source)),
        Err(diags) => Err(CliError::Failed(render_all(&diags, &source, &origin))),
    }
}

/// Simple flag cursor over the argument list.
pub struct Args<'a> {
    argv: &'a [String],
    pos: usize,
    file: Option<&'a str>,
}

impl<'a> Args<'a> {
    /// Wraps the arguments following the subcommand name.
    pub fn new(argv: &'a [String]) -> Self {
        Args {
            argv,
            pos: 0,
            file: None,
        }
    }

    /// Steps to the next flag, collecting the single positional argument
    /// (the file) along the way. Returns `None` when exhausted.
    pub fn next_flag(&mut self) -> Option<&'a str> {
        while self.pos < self.argv.len() {
            let arg = self.argv[self.pos].as_str();
            self.pos += 1;
            if let Some(flag) = arg.strip_prefix("--") {
                return Some(flag);
            }
            if self.file.replace(arg).is_some() {
                // Second positional: report through the usage path.
                return Some("__extra_positional__");
            }
        }
        None
    }

    /// The value following the current flag.
    pub fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        if self.pos < self.argv.len() && !self.argv[self.pos].starts_with("--") {
            let v = self.argv[self.pos].as_str();
            self.pos += 1;
            Ok(v)
        } else {
            Err(CliError::Usage(format!("--{flag} needs a value")))
        }
    }

    /// Parses the current flag's value.
    pub fn parse_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("--{flag}: cannot parse `{raw}`")))
    }

    /// The positional file argument, required.
    pub fn file(&self, usage: &str) -> Result<&'a str, CliError> {
        self.file
            .ok_or_else(|| CliError::Usage(format!("missing <file>.sna argument\nusage: {usage}")))
    }
}

/// Parses `--format` values.
pub fn parse_format(raw: &str) -> Result<Format, CliError> {
    match raw {
        "human" => Ok(Format::Human),
        "json" => Ok(Format::Json),
        other => Err(CliError::Usage(format!(
            "--format must be `human` or `json`, got `{other}`"
        ))),
    }
}

/// Rejects unknown flags uniformly (also catches stray positionals).
pub fn unknown_flag(flag: &str, usage: &str) -> CliError {
    if flag == "__extra_positional__" {
        CliError::Usage(format!("more than one <file> given\nusage: {usage}"))
    } else {
        CliError::Usage(format!("unknown flag `--{flag}`\nusage: {usage}"))
    }
}

/// Builds the word-length configuration every analysis shares.
pub fn config_for(lowered: &Lowered, bits: u8) -> Result<WlConfig, CliError> {
    WlConfig::from_ranges(&lowered.dfg, &lowered.input_ranges, bits)
        .map_err(|e| CliError::failed(format!("cannot build a {bits}-bit configuration: {e}")))
}

/// The combinational per-sample view of a sequential graph, with the
/// delay-state inputs appended and their value ranges derived from range
/// analysis of the original graph.
pub fn combinational_with_ranges(lowered: &Lowered) -> Result<(Dfg, Vec<Interval>), CliError> {
    if lowered.dfg.is_combinational() {
        return Ok((lowered.dfg.clone(), lowered.input_ranges.clone()));
    }
    let node_ranges = lowered
        .dfg
        .ranges_auto(
            &lowered.input_ranges,
            &sna_dfg::RangeOptions::default(),
            &sna_dfg::LtiOptions::default(),
        )
        .map_err(|e| CliError::failed(format!("range analysis failed: {e}")))?;
    let mut ranges = lowered.input_ranges.clone();
    ranges.extend(
        lowered
            .dfg
            .delay_nodes()
            .iter()
            .map(|d| node_ranges[d.index()]),
    );
    Ok((lowered.dfg.combinational_view(), ranges))
}

/// One noise report as a JSON object.
pub fn report_json(name: &str, report: &NoiseReport, include_pdf: bool) -> Json {
    let mut fields = vec![
        ("output".to_string(), Json::str(name)),
        ("mean".to_string(), Json::Num(report.mean)),
        ("variance".to_string(), Json::Num(report.variance)),
        ("std_dev".to_string(), Json::Num(report.std_dev())),
        ("power".to_string(), Json::Num(report.power)),
        (
            "support".to_string(),
            Json::pair(report.support.0, report.support.1),
        ),
    ];
    let (lo95, hi95) = report.credible_interval(0.95);
    fields.push(("credible95".to_string(), Json::pair(lo95, hi95)));
    match &report.histogram {
        Some(h) if include_pdf => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                    (
                        "masses".to_string(),
                        Json::Arr(h.probs().iter().map(|&m| Json::Num(m)).collect()),
                    ),
                ]),
            ));
        }
        Some(h) => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                ]),
            ));
        }
        None => fields.push(("histogram".to_string(), Json::Null)),
    }
    Json::Obj(fields)
}

/// One noise report in terminal form, optionally with the ASCII PDF.
pub fn report_human(name: &str, report: &NoiseReport, plot: bool) -> String {
    let (lo95, hi95) = report.credible_interval(0.95);
    let mut out = format!(
        "output `{name}`\n  mean      {:>13.6e}\n  variance  {:>13.6e}\n  \
         std dev   {:>13.6e}\n  power     {:>13.6e}\n  bounds    [{:.6e}, {:.6e}]\n  \
         95% cred. [{:.6e}, {:.6e}]\n",
        report.mean,
        report.variance,
        report.std_dev(),
        report.power,
        report.support.0,
        report.support.1,
        lo95,
        hi95,
    );
    if plot {
        if let Some(h) = &report.histogram {
            out.push_str("  pdf:\n");
            let rendered = h.render_ascii(&RenderOptions {
                bar_width: 40,
                max_rows: 16,
                show_cdf: false,
            });
            for line in rendered.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}
