//! Shared plumbing for the `sna` subcommands: error type, argument
//! helpers, program loading, batch fan-out, and the report formatting
//! used by more than one command.

use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sna_core::NoiseReport;
use sna_hist::RenderOptions;
use sna_lang::{render_all, Lowered};
use sna_service::{CompileCache, CompiledEntry};
use sna_store::Store;

use crate::Json;

/// A CLI failure: what to print, and the exit code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// Bad command line; prints usage advice on stderr. Exit code 2.
    Usage(String),
    /// Source diagnostics (already rendered) or runtime failures; prints
    /// on stderr. Exit code 1.
    Failed(String),
    /// A batch where at least one file failed. The payload is the full
    /// batch output (per-file documents, inline errors, and the trailing
    /// summary) and belongs on *stdout* exactly as on success — only the
    /// exit code (1) differs, so scripts and CI can detect partial
    /// failure without parsing the summary line.
    BatchFailed(String),
}

impl CliError {
    /// The process exit code for this error.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Failed(_) | CliError::BatchFailed(_) => 1,
        }
    }

    /// Convenience for `Failed` with a formatted message.
    pub fn failed(message: impl Into<String>) -> Self {
        CliError::Failed(message.into())
    }

    /// For [`CliError::BatchFailed`], the batch output that belongs on
    /// stdout; `None` for the stderr-bound variants.
    #[must_use]
    pub fn stdout_output(&self) -> Option<&str> {
        match self {
            CliError::BatchFailed(out) => Some(out),
            _ => None,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Failed(m) | CliError::BatchFailed(m) => f.write_str(m),
        }
    }
}

/// Output format selector (`--format`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Format {
    /// Prose + tables for terminals.
    #[default]
    Human,
    /// A single JSON document on stdout (per file, in batch mode).
    Json,
}

/// The diagnostics origin for a path: its file name.
fn origin_of(path: &str) -> String {
    Path::new(path)
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Reads and compiles a `.sna` file, rendering diagnostics on failure.
pub fn load(path: &str) -> Result<(Lowered, String), CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::failed(format!("cannot read `{path}`: {e}")))?;
    match sna_lang::compile(&source) {
        Ok(lowered) => Ok((lowered, source)),
        Err(diags) => Err(CliError::Failed(render_all(
            &diags,
            &source,
            &origin_of(path),
        ))),
    }
}

/// Reads a `.sna` file and compiles it through the shared cache —
/// repeated paths (and repeated *contents*) in one batch compile once.
pub fn load_cached(cache: &CompileCache, path: &str) -> Result<Arc<CompiledEntry>, CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError::failed(format!("cannot read `{path}`: {e}")))?;
    cache
        .get_or_compile(&source)
        .map(|(entry, _)| entry)
        .map_err(|diags| CliError::Failed(render_all(&diags, &source, &origin_of(path))))
}

/// Simple flag cursor over the argument list.
pub struct Args<'a> {
    argv: &'a [String],
    pos: usize,
    files: Vec<&'a str>,
    /// Whether more than one positional (file) argument is legal.
    allow_many: bool,
}

impl<'a> Args<'a> {
    /// Wraps the arguments following a single-file subcommand's name.
    pub fn new(argv: &'a [String]) -> Self {
        Args {
            argv,
            pos: 0,
            files: Vec::new(),
            allow_many: false,
        }
    }

    /// Wraps the arguments of a batch-capable subcommand: any number of
    /// positional files.
    pub fn new_multi(argv: &'a [String]) -> Self {
        Args {
            allow_many: true,
            ..Args::new(argv)
        }
    }

    /// Steps to the next flag, collecting positional arguments (the
    /// files) along the way. Returns `None` when exhausted.
    pub fn next_flag(&mut self) -> Option<&'a str> {
        while self.pos < self.argv.len() {
            let arg = self.argv[self.pos].as_str();
            self.pos += 1;
            if let Some(flag) = arg.strip_prefix("--") {
                return Some(flag);
            }
            self.files.push(arg);
            if !self.allow_many && self.files.len() > 1 {
                // Second positional: report through the usage path.
                return Some("__extra_positional__");
            }
        }
        None
    }

    /// The value following the current flag.
    pub fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        if self.pos < self.argv.len() && !self.argv[self.pos].starts_with("--") {
            let v = self.argv[self.pos].as_str();
            self.pos += 1;
            Ok(v)
        } else {
            Err(CliError::Usage(format!("--{flag} needs a value")))
        }
    }

    /// Parses the current flag's value.
    pub fn parse_value<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("--{flag}: cannot parse `{raw}`")))
    }

    /// The positional file argument, required.
    pub fn file(&self, usage: &str) -> Result<&'a str, CliError> {
        self.files
            .first()
            .copied()
            .ok_or_else(|| CliError::Usage(format!("missing <file>.sna argument\nusage: {usage}")))
    }

    /// All positional file arguments, in order (may be empty when a
    /// manifest supplies the files).
    pub fn files(&self) -> &[&'a str] {
        &self.files
    }
}

/// Parses and validates a `--jobs` value (shared by every batch-capable
/// subcommand).
pub fn parse_jobs(args: &mut Args) -> Result<usize, CliError> {
    let jobs: usize = args.parse_value("jobs")?;
    if jobs == 0 {
        return Err(CliError::Usage("--jobs must be at least 1".to_string()));
    }
    Ok(jobs)
}

/// Parses `--format` values.
pub fn parse_format(raw: &str) -> Result<Format, CliError> {
    match raw {
        "human" => Ok(Format::Human),
        "json" => Ok(Format::Json),
        other => Err(CliError::Usage(format!(
            "--format must be `human` or `json`, got `{other}`"
        ))),
    }
}

/// Opens (creating if absent) the persistent artifact store behind
/// `--store-dir`, shared by every subcommand that accepts the flag.
pub fn open_store(dir: &str) -> Result<Arc<Store>, CliError> {
    Store::open(dir)
        .map(Arc::new)
        .map_err(|e| CliError::failed(format!("cannot open store `{dir}`: {e}")))
}

/// Rejects unknown flags uniformly (also catches stray positionals).
pub fn unknown_flag(flag: &str, usage: &str) -> CliError {
    if flag == "__extra_positional__" {
        CliError::Usage(format!("more than one <file> given\nusage: {usage}"))
    } else {
        CliError::Usage(format!("unknown flag `--{flag}`\nusage: {usage}"))
    }
}

/// The file list of a batch-capable subcommand: the positionals plus the
/// optional manifest (one path per line; blank lines and `#` comments
/// skipped). The boolean is `true` when the invocation is *batch mode* —
/// more than one file, or any manifest — which switches on per-file
/// error recovery and the trailing summary.
pub fn collect_files(
    positionals: &[&str],
    manifest: Option<&str>,
    usage: &str,
) -> Result<(Vec<String>, bool), CliError> {
    let mut files: Vec<String> = positionals.iter().map(|s| s.to_string()).collect();
    if let Some(path) = manifest {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::failed(format!("cannot read manifest `{path}`: {e}")))?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            files.push(line.to_string());
        }
    }
    if files.is_empty() {
        return Err(CliError::Usage(format!(
            "missing <file>.sna argument\nusage: {usage}"
        )));
    }
    let batch = manifest.is_some() || files.len() > 1;
    Ok((files, batch))
}

/// Total attempts per file in batch mode: one try plus two retries.
const BATCH_ATTEMPTS: u32 = 3;

/// First-retry backoff; doubles per further attempt, plus jitter.
const BACKOFF_BASE_MS: u64 = 10;

/// Whether a per-file failure is worth retrying: I/O-level read
/// failures (a network filesystem blip, a file mid-rsync) — never
/// compile diagnostics or analysis errors, which are deterministic and
/// would fail identically on every attempt.
fn is_transient(e: &CliError) -> bool {
    matches!(e, CliError::Failed(m) if m.starts_with("cannot read "))
}

/// The batch fault hook: `SNA_FAULT_BATCH=fail@N:K` makes the `N`-th
/// file (1-based, input order) fail its first `K` attempts with a
/// transient read error. This is how the retry path is exercised
/// deterministically in tests and CI; malformed specs are ignored (the
/// hook is not a user-facing interface).
fn parse_batch_fault() -> Option<(usize, u32)> {
    let spec = std::env::var("SNA_FAULT_BATCH").ok()?;
    let (n, k) = spec.strip_prefix("fail@")?.split_once(':')?;
    Some((n.parse().ok()?, k.parse().ok()?))
}

/// Sleeps the exponential-backoff pause before retry number `attempt`
/// (1-based). The jitter is drawn from a generator seeded by the path,
/// so a rerun backs off identically while concurrent files
/// desynchronize instead of thundering back together.
fn backoff_sleep(path: &str, attempt: u32) {
    let base = BACKOFF_BASE_MS << (attempt - 1);
    let mut h = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a over the path bytes
    for b in path.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(h ^ u64::from(attempt));
    let jitter = rng.gen_range(0..base);
    std::thread::sleep(Duration::from_millis(base + jitter));
}

/// Fans `per_file` out over `files` on `jobs` workers through one shared
/// [`CompileCache`], concatenating the per-file outputs in input order.
///
/// Single-file invocations (`batch == false`) behave exactly like the
/// historical CLI: the file's output alone, errors propagated with exit
/// code 1. In batch mode each file's failure is reported inline (and as
/// an `"error"` document under `--format json`), the remaining files
/// still run, and a trailing summary line reports file/ok/err counts,
/// retry count, cache hit/miss counts, and total/cached time. A batch
/// with any failed file returns [`CliError::BatchFailed`] carrying that
/// same output, so the process exits 1 while stdout stays identical to
/// the all-ok case.
///
/// Transient failures (see [`is_transient`]) are retried up to
/// [`BATCH_ATTEMPTS`] times with exponential backoff and deterministic
/// per-path jitter before counting as errors; the summary's `retries`
/// field reports how many retry attempts the whole batch spent.
///
/// With `store` set the cache warm-loads compiled skeletons from (and
/// spills back to) the persistent artifact store, and the batch summary
/// gains store hit/miss/write counts. Callers that write their own
/// artifacts (e.g. `trace`'s fitted ranges) must pass the *same* handle
/// they write through: each handle persists its own in-memory index on
/// `put`, so a second handle on the directory would clobber the other's
/// entries.
pub fn run_batch<F>(
    command: &str,
    files: Vec<String>,
    batch: bool,
    jobs: usize,
    format: Format,
    store: Option<Arc<Store>>,
    per_file: F,
) -> Result<String, CliError>
where
    F: Fn(&str, &Arc<CompiledEntry>) -> Result<String, CliError> + Sync,
{
    let cache = match store {
        Some(store) => CompileCache::new().with_store(store),
        None => CompileCache::new(),
    };
    let started = Instant::now();
    let n_files = files.len();
    let fault = parse_batch_fault();
    let retries = AtomicU64::new(0);
    let outcomes: Vec<(String, Result<String, CliError>, f64)> =
        sna_service::run_ordered(files, jobs, |index, path| {
            let job_started = Instant::now();
            let mut attempt = 0u32;
            let result = loop {
                let injected = fault.is_some_and(|(n, k)| index + 1 == n && attempt < k);
                let result = if injected {
                    Err(CliError::failed(format!(
                        "cannot read `{path}`: injected transient fault"
                    )))
                } else {
                    load_cached(&cache, &path).and_then(|entry| per_file(&path, &entry))
                };
                match result {
                    Err(ref e) if batch && attempt + 1 < BATCH_ATTEMPTS && is_transient(e) => {
                        attempt += 1;
                        retries.fetch_add(1, Ordering::Relaxed);
                        backoff_sleep(&path, attempt);
                    }
                    other => break other,
                }
            };
            let elapsed_ms = job_started.elapsed().as_secs_f64() * 1e3;
            (path, result, elapsed_ms)
        });
    // Spill-through at the quiet point: stages built during this run
    // (lazily, per verb) reach the store before the process exits.
    if cache.store().is_some() {
        cache.spill();
    }
    if !batch {
        let (_, result, _) = outcomes.into_iter().next().expect("one file");
        return result;
    }

    let stats = cache.stats();
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let ok = outcomes.iter().filter(|(_, r, _)| r.is_ok()).count();
    let errors = n_files - ok;
    let mut out = String::new();
    for (path, result, _) in &outcomes {
        match result {
            Ok(text) => {
                out.push_str(text);
                if !text.ends_with('\n') {
                    out.push('\n');
                }
            }
            Err(e) => match format {
                Format::Human => {
                    out.push_str(&format!("{e}\n"));
                }
                Format::Json => {
                    // Self-describing error documents: consumers must be
                    // able to attribute a failure to its file without
                    // counting positions against the input list.
                    let doc = Json::Obj(vec![
                        ("command".into(), Json::str(command)),
                        ("file".into(), Json::str(path.clone())),
                        ("error".into(), Json::str(e.to_string())),
                    ]);
                    out.push_str(&doc.to_string());
                    out.push('\n');
                }
            },
        }
        if format == Format::Human {
            out.push('\n');
        }
    }
    let job_ms: f64 = outcomes.iter().map(|(_, _, ms)| ms).sum();
    let retries = retries.load(Ordering::Relaxed);
    let store_stats = cache.store().map(|s| s.stats());
    match format {
        Format::Human => {
            let store_part = store_stats.as_ref().map_or(String::new(), |s| {
                format!(
                    "store {} hit(s) / {} miss(es) / {} write(s) · ",
                    s.hits, s.misses, s.writes
                )
            });
            out.push_str(&format!(
                "batch: {n_files} file(s) · {ok} ok · {errors} err · {retries} retried · \
                 {jobs} job(s) · \
                 cache {} hit(s) / {} miss(es) · \
                 {store_part}{total_ms:.1} ms wall ({job_ms:.1} ms in jobs)\n",
                stats.hits, stats.misses
            ));
        }
        Format::Json => {
            let mut fields = vec![
                ("command".into(), Json::str(command)),
                ("files".into(), Json::int(n_files)),
                ("ok".into(), Json::int(ok)),
                ("errors".into(), Json::int(errors)),
                (
                    "retries".into(),
                    Json::int(usize::try_from(retries).unwrap_or(usize::MAX)),
                ),
                ("jobs".into(), Json::int(jobs)),
                (
                    "cache_hits".into(),
                    Json::int(usize::try_from(stats.hits).unwrap_or(usize::MAX)),
                ),
                (
                    "cache_misses".into(),
                    Json::int(usize::try_from(stats.misses).unwrap_or(usize::MAX)),
                ),
            ];
            if let Some(s) = &store_stats {
                let as_int = |v: u64| Json::int(usize::try_from(v).unwrap_or(usize::MAX));
                fields.push(("store_hits".into(), as_int(s.hits)));
                fields.push(("store_misses".into(), as_int(s.misses)));
                fields.push(("store_writes".into(), as_int(s.writes)));
                fields.push(("store_corrupt".into(), as_int(s.corrupt)));
            }
            fields.push(("total_ms".into(), Json::Num(total_ms)));
            fields.push(("job_ms".into(), Json::Num(job_ms)));
            let summary = Json::Obj(vec![("summary".into(), Json::Obj(fields))]);
            out.push_str(&summary.to_compact());
            out.push('\n');
        }
    }
    if errors > 0 {
        return Err(CliError::BatchFailed(out));
    }
    Ok(out)
}

/// One noise report in terminal form, optionally with the ASCII PDF.
pub fn report_human(name: &str, report: &NoiseReport, plot: bool) -> String {
    let (lo95, hi95) = report.credible_interval(0.95);
    let mut out = format!(
        "output `{name}`\n  mean      {:>13.6e}\n  variance  {:>13.6e}\n  \
         std dev   {:>13.6e}\n  power     {:>13.6e}\n  bounds    [{:.6e}, {:.6e}]\n  \
         95% cred. [{:.6e}, {:.6e}]\n",
        report.mean,
        report.variance,
        report.std_dev(),
        report.power,
        report.support.0,
        report.support.1,
        lo95,
        hi95,
    );
    if plot {
        if let Some(h) = &report.histogram {
            out.push_str("  pdf:\n");
            let rendered = h.render_ascii(&RenderOptions {
                bar_width: 40,
                max_rows: 16,
                show_cdf: false,
            });
            for line in rendered.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}
