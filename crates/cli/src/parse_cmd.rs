//! `sna parse` — validate a `.sna` file; dump a summary, DOT, or the
//! canonical source form.

use sna_lang::Lowered;
use sna_service::exec;

use crate::common::{load, parse_format, unknown_flag, Args, CliError, Format};
use crate::Json;

const USAGE: &str = "sna parse <file>.sna [--dot | --canon] [--format human|json]";

/// Runs the subcommand.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(argv);
    let mut format = Format::Human;
    let mut dot = false;
    let mut canon = false;
    while let Some(flag) = args.next_flag() {
        match flag {
            "format" => format = parse_format(args.value("format")?)?,
            "dot" => dot = true,
            "canon" => canon = true,
            other => return Err(unknown_flag(other, USAGE)),
        }
    }
    if dot && canon {
        return Err(CliError::Usage(format!(
            "--dot and --canon are mutually exclusive\nusage: {USAGE}"
        )));
    }
    if (dot || canon) && format == Format::Json {
        return Err(CliError::Usage(format!(
            "--format json cannot combine with --dot/--canon (their output is not JSON)\n\
             usage: {USAGE}"
        )));
    }
    let path = args.file(USAGE)?;
    let (lowered, source) = load(path)?;

    if dot {
        return Ok(lowered.dfg.to_dot());
    }
    if canon {
        // Re-parse only (lowering already validated the semantics).
        let program = sna_lang::parse(&source).expect("already compiled");
        return Ok(program.to_string());
    }
    Ok(match format {
        Format::Human => human(path, &lowered),
        Format::Json => json(path, &lowered).to_string(),
    })
}

fn human(path: &str, lowered: &Lowered) -> String {
    let dfg = &lowered.dfg;
    let c = dfg.op_counts();
    let mut out = format!("{path}: ok\n");
    out.push_str(&format!(
        "  {} node(s): {} input(s), {} const(s), {} add, {} sub, {} mul, {} div, {} neg, {} delay\n",
        dfg.len(),
        c.inputs,
        c.consts,
        c.adds,
        c.subs,
        c.muls,
        c.divs,
        c.negs,
        c.delays
    ));
    out.push_str(&format!(
        "  depth {} · {} · {}\n",
        dfg.depth(),
        if dfg.is_combinational() {
            "combinational"
        } else {
            "sequential"
        },
        if dfg.is_linear() {
            "linear"
        } else {
            "nonlinear"
        },
    ));
    for (name, range) in dfg.input_names().iter().zip(&lowered.input_ranges) {
        out.push_str(&format!(
            "  input  {name} in [{}, {}]\n",
            range.lo(),
            range.hi()
        ));
    }
    for (name, node) in dfg.outputs() {
        out.push_str(&format!("  output {name} = node {node}\n"));
    }
    out
}

fn json(path: &str, lowered: &Lowered) -> Json {
    let mut fields = vec![
        ("command".into(), Json::str("parse")),
        ("file".into(), Json::str(path)),
        ("ok".into(), Json::Bool(true)),
    ];
    fields.extend(exec::parse_facts_json(&lowered.dfg, &lowered.input_ranges));
    Json::Obj(fields)
}
