//! Batch retry-with-backoff tests, in their own integration-test binary
//! because the `SNA_FAULT_BATCH` hook is a process-wide environment
//! variable: here it cannot race the main CLI suite's batches, and the
//! tests below run serially against it.

use std::path::PathBuf;

use sna_cli::{run, CliError};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn temp_program(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("sna-batch-retry-{tag}.sna"));
    std::fs::write(&path, "input x in [-1, 1];\ny = 0.5*x;\noutput y;\n").unwrap();
    path.to_string_lossy().into_owned()
}

/// The whole suite in one `#[test]`: the cases share the env-var hook
/// and must not interleave.
#[test]
fn transient_failures_are_retried_and_reported() {
    let a = temp_program("a");
    let b = temp_program("b");

    // Case 1: the second file fails twice transiently, then succeeds on
    // its final attempt — the batch is fully ok and reports 2 retries.
    std::env::set_var("SNA_FAULT_BATCH", "fail@2:2");
    let out = run(&argv(&[
        "analyze", &a, &b, "--jobs", "1", "--format", "json",
    ]))
    .unwrap();
    assert!(out.contains(r#""ok":2"#), "{out}");
    assert!(out.contains(r#""errors":0"#), "{out}");
    assert!(out.contains(r#""retries":2"#), "{out}");

    // Case 2: three transient failures exhaust the attempt budget (1 try
    // + 2 retries) — the file counts as an error, the batch exits 1,
    // but the other file's output and the summary still render.
    std::env::set_var("SNA_FAULT_BATCH", "fail@2:3");
    let err = run(&argv(&[
        "analyze", &a, &b, "--jobs", "1", "--format", "json",
    ]))
    .unwrap_err();
    let CliError::BatchFailed(out) = err else {
        panic!("expected BatchFailed, got {err:?}");
    };
    assert!(out.contains("injected transient fault"), "{out}");
    assert!(out.contains(r#""ok":1"#), "{out}");
    assert!(out.contains(r#""errors":1"#), "{out}");
    assert!(out.contains(r#""retries":2"#), "{out}");

    // Case 3: compile diagnostics are deterministic, never retried.
    std::env::remove_var("SNA_FAULT_BATCH");
    let bad = std::env::temp_dir().join("sna-batch-retry-bad.sna");
    std::fs::write(&bad, "input x in [-1, 1];\ny = 0.5*z;\noutput y;\n").unwrap();
    let bad = bad.to_string_lossy().into_owned();
    let err = run(&argv(&[
        "analyze", &a, &bad, "--jobs", "2", "--format", "human",
    ]))
    .unwrap_err();
    let CliError::BatchFailed(out) = err else {
        panic!("expected BatchFailed, got {err:?}");
    };
    assert!(out.contains("0 retried"), "{out}");

    // Case 4: single-file mode never retries — the historical contract
    // (fail fast, exit 1) is unchanged even with the hook armed.
    std::env::set_var("SNA_FAULT_BATCH", "fail@1:1");
    let err = run(&argv(&["analyze", &a])).unwrap_err();
    assert!(
        matches!(&err, CliError::Failed(m) if m.contains("injected transient fault")),
        "single-file mode must surface the first failure unretried: {err:?}"
    );
    std::env::remove_var("SNA_FAULT_BATCH");
}

/// The human summary carries the retry count too.
#[test]
fn human_summary_reports_retries_without_the_hook() {
    // No env-var games here (the serial test above owns the hook; this
    // one just checks the zero-retry rendering on a clean batch).
    let a = temp_program("h1");
    let manifest = std::env::temp_dir().join("sna-batch-retry-manifest.txt");
    std::fs::write(&manifest, format!("{a}\n")).unwrap();
    let out = run(&argv(&[
        "analyze",
        "--manifest",
        &manifest.to_string_lossy(),
        "--jobs",
        "1",
    ]))
    .unwrap();
    assert!(out.contains("retried"), "{out}");
    let _ = PathBuf::from(a);
}
