//! In-process integration tests for the `sna` CLI: every subcommand is
//! driven through `sna_cli::run`, against both inline programs and the
//! shipped `examples/*.sna` files.

use std::path::PathBuf;

use sna_cli::{run, CliError};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Path to a shipped example, independent of the test's working dir.
fn example(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// Writes an inline program to a temp file and returns its path.
fn temp_program(tag: &str, source: &str) -> String {
    let path = std::env::temp_dir().join(format!("sna-cli-test-{tag}.sna"));
    std::fs::write(&path, source).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn help_and_usage_errors() {
    assert!(run(&argv(&["help"])).unwrap().contains("sna <parse"));
    match run(&argv(&[])) {
        Err(e @ CliError::Usage(_)) => assert_eq!(e.exit_code(), 2),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["frobnicate"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("unknown command")),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["analyze", "--bits"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("--bits needs a value")),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["analyze", "x.sna", "--engine", "warp"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("unknown engine")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn parse_reports_structure_in_both_formats() {
    let file = temp_program(
        "parse",
        "input x in [-2, 2];\ny = 0.5*x + delay y;\noutput y;\n",
    );
    let human = run(&argv(&["parse", &file])).unwrap();
    assert!(human.contains("sequential"), "{human}");
    assert!(human.contains("input  x in [-2, 2]"), "{human}");
    let json = run(&argv(&["parse", &file, "--format", "json"])).unwrap();
    assert!(json.contains("\"delays\": 1"), "{json}");
    assert!(json.contains("\"is_combinational\": false"), "{json}");
}

#[test]
fn parse_dot_and_canonical_dumps() {
    let file = temp_program("dot", "input x;\noutput y = x * x;\n");
    let dot = run(&argv(&["parse", &file, "--dot"])).unwrap();
    assert!(dot.starts_with("digraph"), "{dot}");
    let canon = run(&argv(&["parse", &file, "--canon"])).unwrap();
    assert_eq!(canon, "input x;\noutput y = x * x;\n");
}

#[test]
fn parse_dump_flags_reject_contradictory_combinations() {
    let file = temp_program("combo", "input x;\noutput y = -x;\n");
    match run(&argv(&["parse", &file, "--dot", "--canon"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("mutually exclusive"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["parse", &file, "--canon", "--format", "json"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("cannot combine"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn analyze_emits_noise_reports_on_the_acceptance_command() {
    // The ISSUE acceptance criterion, in-process:
    // `sna analyze examples/fir.sna --engine dfg --bits 8 --format json`.
    let out = run(&argv(&[
        "analyze",
        &example("fir.sna"),
        "--engine",
        "dfg",
        "--bits",
        "8",
        "--format",
        "json",
    ]))
    .unwrap();
    for key in [
        "\"variance\"",
        "\"support\"",
        "\"histogram\"",
        "\"masses\"",
        "\"quantization-noise\"",
    ] {
        assert!(out.contains(key), "missing {key} in {out}");
    }
}

#[test]
fn analyze_runs_every_engine_on_a_suitable_example() {
    for (engine, file) in [
        ("auto", "fir.sna"),
        ("na", "diffeq.sna"),
        ("dfg", "rgb.sna"),
        ("lti", "fir.sna"),
        ("symbolic", "quadratic.sna"),
        ("cartesian", "quadratic.sna"),
    ] {
        let out = run(&argv(&[
            "analyze",
            &example(file),
            "--engine",
            engine,
            "--bins",
            "32",
        ]))
        .unwrap_or_else(|e| panic!("{engine} on {file}: {e}"));
        assert!(out.contains("output `"), "{engine}: {out}");
    }
}

#[test]
fn analyze_combinational_engines_handle_feedback_via_the_view() {
    let file = temp_program("iir", "input x;\nt = delay y;\ny = x + 0.5*t;\noutput y;\n");
    let out = run(&argv(&[
        "analyze", &file, "--engine", "dfg", "--bits", "10",
    ]))
    .unwrap();
    assert!(out.contains("output `y`"), "{out}");
}

#[test]
fn optimize_greedy_meets_the_reference_budget() {
    let out = run(&argv(&[
        "optimize",
        &example("rgb.sna"),
        "--format",
        "json",
    ]))
    .unwrap();
    assert!(out.contains("\"budget\""), "{out}");
    assert!(out.contains("\"greedy\""), "{out}");
    assert!(out.contains("\"word_lengths\""), "{out}");
}

#[test]
fn optimize_falls_back_to_histogram_noise_for_nonlinear_graphs() {
    let out = run(&argv(&[
        "optimize",
        &example("quadratic.sna"),
        "--method",
        "waterfill",
        "--ref-bits",
        "10",
    ]))
    .unwrap();
    assert!(out.contains("waterfill"), "{out}");
}

#[test]
fn synth_reports_costs_in_both_formats() {
    let human = run(&argv(&["synth", &example("quadratic.sna"), "--bits", "10"])).unwrap();
    assert!(human.contains("µm²"), "{human}");
    assert!(human.contains("latency"), "{human}");
    let json = run(&argv(&[
        "synth",
        &example("quadratic.sna"),
        "--bits",
        "10",
        "--format",
        "json",
    ]))
    .unwrap();
    assert!(json.contains("\"area_um2\""), "{json}");
    assert!(json.contains("\"latency_cycles\""), "{json}");
}

#[test]
fn diagnostics_render_carets_with_file_location() {
    let file = temp_program("bad", "input x;\ny = x +;\noutput y;\n");
    match run(&argv(&["parse", &file])) {
        Err(e @ CliError::Failed(_)) => {
            let msg = e.to_string();
            assert!(msg.contains("expected an expression"), "{msg}");
            assert!(msg.contains("-->"), "{msg}");
            assert!(msg.contains(":2:8"), "{msg}");
            assert!(msg.contains('^'), "{msg}");
            assert_eq!(e.exit_code(), 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn missing_file_is_a_runtime_failure() {
    match run(&argv(&["synth", "/nonexistent/x.sna"])) {
        Err(CliError::Failed(m)) => assert!(m.contains("cannot read"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// The ISSUE acceptance criterion: batch `analyze` over all the shipped
/// examples produces byte-identical per-file JSON to N single-file
/// invocations, plus one trailing summary line.
#[test]
fn batch_analyze_matches_single_invocations_byte_for_byte() {
    let files: Vec<String> = ["diffeq.sna", "fir.sna", "quadratic.sna", "rgb.sna"]
        .iter()
        .map(|n| example(n))
        .collect();

    let mut singles = String::new();
    for f in &files {
        let out = run(&argv(&["analyze", f, "--format", "json"])).unwrap();
        singles.push_str(&out);
        if !out.ends_with('\n') {
            singles.push('\n');
        }
    }

    let mut batch_argv = vec!["analyze".to_string()];
    batch_argv.extend(files.iter().cloned());
    batch_argv.extend(["--format", "json", "--jobs", "4"].map(String::from));
    let batch = run(&batch_argv).unwrap();

    let summary_at = batch.rfind("{\"summary\"").expect("summary line present");
    let (body, summary) = batch.split_at(summary_at);
    let summary = summary.trim_end();
    assert_eq!(body, singles, "per-file JSON must be byte-identical");
    assert!(summary.starts_with("{\"summary\":"), "{summary}");
    assert!(summary.contains("\"files\":4"), "{summary}");
    assert!(summary.contains("\"ok\":4"), "{summary}");
    assert!(summary.contains("\"cache_misses\":4"), "{summary}");
    assert!(summary.contains("\"total_ms\":"), "{summary}");
}

#[test]
fn batch_analyze_dedupes_repeated_files_through_the_cache() {
    let file = example("rgb.sna");
    let out = run(&argv(&[
        "analyze", &file, &file, &file, "--format", "json", "--jobs", "2",
    ]))
    .unwrap();
    let summary = out.lines().last().unwrap();
    assert!(summary.contains("\"files\":3"), "{summary}");
    assert!(summary.contains("\"cache_hits\":2"), "{summary}");
    assert!(summary.contains("\"cache_misses\":1"), "{summary}");
    // Three identical documents precede the summary.
    assert_eq!(out.matches("\"command\": \"analyze\"").count(), 3);
}

#[test]
fn batch_mode_recovers_per_file_and_counts_errors() {
    let good = example("quadratic.sna");
    let bad = temp_program("batch-bad", "input x;\ny = ;\noutput y;\n");
    // A partially failed batch exits 1 (`BatchFailed`) but still carries
    // the full per-file output + summary for stdout.
    let err = run(&argv(&["analyze", &good, &bad, "--format", "json"])).unwrap_err();
    assert_eq!(err.exit_code(), 1);
    let out = err.stdout_output().expect("batch output").to_string();
    assert!(
        out.contains("\"reports\""),
        "good file still analyzed: {out}"
    );
    assert!(out.contains("\"error\""), "bad file reported inline: {out}");
    assert!(
        out.lines().last().unwrap().contains("\"errors\":1"),
        "{out}"
    );

    // Human format: diagnostics inline, summary line at the end.
    let err = run(&argv(&["analyze", &good, &bad])).unwrap_err();
    let human = err.stdout_output().expect("batch output").to_string();
    assert!(human.contains("expected an expression"), "{human}");
    assert!(
        human.lines().last().unwrap().starts_with("batch:"),
        "{human}"
    );

    // An all-ok batch still succeeds.
    assert!(run(&argv(&["analyze", &good, &good])).is_ok());
}

#[test]
fn manifests_supply_batch_files() {
    let manifest_path = std::env::temp_dir().join("sna-cli-test-manifest.txt");
    std::fs::write(
        &manifest_path,
        format!(
            "# the two sequential examples\n{}\n\n{}\n",
            example("fir.sna"),
            example("diffeq.sna")
        ),
    )
    .unwrap();
    let out = run(&argv(&[
        "analyze",
        "--manifest",
        &manifest_path.to_string_lossy(),
        "--format",
        "json",
    ]))
    .unwrap();
    assert!(out.lines().last().unwrap().contains("\"files\":2"), "{out}");
    // A one-file manifest is still batch mode (summary present).
    std::fs::write(&manifest_path, example("rgb.sna")).unwrap();
    let out = run(&argv(&[
        "analyze",
        "--manifest",
        &manifest_path.to_string_lossy(),
    ]))
    .unwrap();
    assert!(out.lines().last().unwrap().starts_with("batch:"), "{out}");
}

#[test]
fn batch_optimize_carries_the_same_plumbing() {
    let out = run(&argv(&[
        "optimize",
        &example("rgb.sna"),
        &example("quadratic.sna"),
        "--method",
        "waterfill",
        "--format",
        "json",
        "--jobs",
        "2",
    ]))
    .unwrap();
    assert_eq!(out.matches("\"command\": \"optimize\"").count(), 2);
    let summary = out.lines().last().unwrap();
    assert!(summary.contains("\"command\":\"optimize\""), "{summary}");
    assert!(summary.contains("\"ok\":2"), "{summary}");
}

#[test]
fn jobs_flag_is_validated() {
    match run(&argv(&["analyze", "x.sna", "--jobs", "0"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("--jobs"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["analyze", "x.sna", "--jobs", "many"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("cannot parse"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn serve_rejects_stray_arguments_but_appears_in_help() {
    match run(&argv(&["serve", "x.sna"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("no file argument"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    match run(&argv(&["serve", "--max-conns", "3"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("--listen"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    assert!(run(&argv(&["help"])).unwrap().contains("serve"));
}
