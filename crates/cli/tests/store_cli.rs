//! In-process integration tests for the persistent-store surface of the
//! CLI: `--store-dir` on the batch subcommands, the `sna store`
//! maintenance verbs, and the resumable `optimize --pareto` sweep.

use std::path::PathBuf;

use sna_cli::{run, CliError};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Writes an inline program to a temp file and returns its path.
fn temp_program(tag: &str, source: &str) -> String {
    let path = std::env::temp_dir().join(format!("sna-store-cli-{tag}.sna"));
    std::fs::write(&path, source).unwrap();
    path.to_string_lossy().into_owned()
}

/// A fresh store directory for one test.
fn store_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("sna-store-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.to_string_lossy().into_owned()
}

const FIR: &str = "input x in [-1, 1];\noutput y = 0.5*x + 0.25*delay x;\n";

#[test]
fn batch_store_dir_persists_across_runs() {
    let file = temp_program("warm", FIR);
    let dir = store_dir("warm");
    let cold = run(&argv(&[
        "analyze",
        &file,
        &file,
        "--store-dir",
        &dir,
        "--jobs",
        "1",
    ]))
    .unwrap();
    // First run: nothing stored yet, but the spill writes the skeleton.
    assert!(cold.contains("store 0 hit(s)"), "{cold}");
    let warm = run(&argv(&[
        "analyze",
        &file,
        &file,
        "--store-dir",
        &dir,
        "--jobs",
        "1",
    ]))
    .unwrap();
    // Second process-equivalent run: the first lookup is a store hit.
    assert!(warm.contains("store 1 hit(s)"), "{warm}");

    let json = run(&argv(&[
        "analyze",
        &file,
        &file,
        "--store-dir",
        &dir,
        "--jobs",
        "1",
        "--format",
        "json",
    ]))
    .unwrap();
    let summary = json.lines().last().unwrap();
    assert!(summary.contains("\"store_hits\":1"), "{summary}");
    assert!(summary.contains("\"store_corrupt\":0"), "{summary}");

    // Without the flag the summary shape is unchanged.
    let plain = run(&argv(&["analyze", &file, &file, "--jobs", "1"])).unwrap();
    let summary = plain.lines().rfind(|l| l.starts_with("batch:")).unwrap();
    assert!(!summary.contains("store"), "{summary}");
}

#[test]
fn store_verbs_list_collect_and_verify() {
    let file = temp_program("verbs", FIR);
    let dir = store_dir("verbs");
    run(&argv(&["analyze", &file, &file, "--store-dir", &dir])).unwrap();

    let ls = run(&argv(&["store", "ls", "--store-dir", &dir])).unwrap();
    assert!(ls.contains("skel"), "{ls}");
    assert!(ls.contains("byte(s) in"), "{ls}");
    let ls_json = run(&argv(&[
        "store",
        "ls",
        "--store-dir",
        &dir,
        "--format",
        "json",
    ]))
    .unwrap();
    assert!(ls_json.contains("\"kind\": \"skel\""), "{ls_json}");

    let verify = run(&argv(&["store", "verify", "--store-dir", &dir])).unwrap();
    assert!(verify.contains("0 corrupt"), "{verify}");

    // A generous budget keeps everything; a zero budget clears the store.
    let keep = run(&argv(&[
        "store",
        "gc",
        "--store-dir",
        &dir,
        "--budget",
        "1000000",
    ]))
    .unwrap();
    assert!(keep.contains("removed 0 object(s)"), "{keep}");
    let clear = run(&argv(&[
        "store",
        "gc",
        "--store-dir",
        &dir,
        "--budget",
        "0",
    ]))
    .unwrap();
    assert!(clear.contains("kept 0 object(s)"), "{clear}");
}

#[test]
fn store_verify_reports_and_repairs_corruption() {
    let file = temp_program("corrupt", FIR);
    let dir = store_dir("corrupt");
    run(&argv(&["analyze", &file, &file, "--store-dir", &dir])).unwrap();

    // Truncate one object on disk.
    let objects: Vec<PathBuf> = walk(&PathBuf::from(&dir))
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "obj"))
        .collect();
    assert!(!objects.is_empty());
    let victim = &objects[0];
    let bytes = std::fs::read(victim).unwrap();
    std::fs::write(victim, &bytes[..bytes.len() - 3]).unwrap();

    // Corruption found → exit-1 style error carrying the report.
    match run(&argv(&["store", "verify", "--store-dir", &dir])) {
        Err(e @ CliError::BatchFailed(_)) => {
            assert_eq!(e.exit_code(), 1);
            let out = e.stdout_output().unwrap();
            assert!(out.contains("corrupt:"), "{out}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // Repair deletes it; a second verify is clean.
    let _ = run(&argv(&["store", "verify", "--store-dir", &dir, "--repair"]));
    assert!(!victim.exists());
    let clean = run(&argv(&["store", "verify", "--store-dir", &dir])).unwrap();
    assert!(clean.contains("0 corrupt"), "{clean}");
}

#[test]
fn store_usage_errors() {
    for bad in [
        vec!["store"],
        vec!["store", "ls"],
        vec!["store", "frobnicate", "--store-dir", "/tmp/x"],
        vec!["store", "gc", "--store-dir", "/tmp/x"],
        vec!["store", "ls", "--store-dir", "/tmp/x", "--repair"],
        vec!["store", "verify", "--store-dir", "/tmp/x", "--budget", "1"],
    ] {
        match run(&argv(&bad)) {
            Err(CliError::Usage(_)) => {}
            other => panic!("{bad:?}: unexpected {other:?}"),
        }
    }
}

#[test]
fn pareto_sweep_reports_a_frontier() {
    let file = temp_program("pareto", FIR);
    let human = run(&argv(&[
        "optimize",
        &file,
        "--pareto",
        "--points",
        "2",
        "--checkpoint-every",
        "3",
    ]))
    .unwrap();
    assert!(human.contains("pareto sweep"), "{human}");
    assert!(human.contains("= 6 candidate(s)"), "{human}");
    assert!(human.contains("resumed at 0"), "{human}");

    let json = run(&argv(&[
        "optimize", &file, "--pareto", "--points", "2", "--format", "json",
    ]))
    .unwrap();
    assert!(json.contains("\"mode\": \"pareto\""), "{json}");
    assert!(json.contains("\"objective\""), "{json}");
    assert!(json.contains("\"word_lengths\""), "{json}");
}

#[test]
fn pareto_resumes_from_the_store_checkpoint() {
    let file = temp_program("pareto-resume", FIR);
    let dir = store_dir("pareto-resume");
    let args = |d: &str| {
        argv(&[
            "optimize",
            &file,
            "--pareto",
            "--points",
            "2",
            "--checkpoint-every",
            "2",
            "--store-dir",
            d,
            "--format",
            "json",
        ])
    };
    let first = run(&args(&dir)).unwrap();
    assert!(first.contains("\"resumed_at\": 0"), "{first}");
    // The finished checkpoint short-circuits the rerun entirely, and the
    // frontier is byte-identical.
    let second = run(&args(&dir)).unwrap();
    assert!(second.contains("\"resumed_at\": 6"), "{second}");
    assert!(second.contains("\"evaluated\": 0"), "{second}");
    let frontier = |s: &str| s.split("\"frontier\"").nth(1).unwrap().to_string();
    assert_eq!(frontier(&first), frontier(&second));
}

#[test]
fn failed_batch_still_spills_to_the_store() {
    // A mixed manifest: one good file, one with a compile diagnostic.
    let good = temp_program("mixed-good", FIR);
    let bad = temp_program("mixed-bad", "input x;\ny = ;\noutput y;\n");
    let manifest_path = std::env::temp_dir().join(format!(
        "sna-store-cli-mixed-manifest-{}.txt",
        std::process::id()
    ));
    std::fs::write(&manifest_path, format!("{good}\n{bad}\n")).unwrap();
    let manifest = manifest_path.to_string_lossy().into_owned();
    let dir = store_dir("mixed");
    let args = |d: &str| {
        argv(&[
            "analyze",
            "--manifest",
            &manifest,
            "--store-dir",
            d,
            "--jobs",
            "1",
        ])
    };
    // Cold run: the bad file fails the batch, but the good file's
    // skeleton must still reach the store on the failure path.
    let cold = match run(&args(&dir)) {
        Err(e @ CliError::BatchFailed(_)) => e.stdout_output().unwrap().to_string(),
        other => panic!("unexpected {other:?}"),
    };
    assert!(cold.contains("store 0 hit(s)"), "{cold}");
    assert!(cold.contains("2 write(s)"), "{cold}");
    // Warm run: the good file warm-loads from the store.
    let warm = match run(&args(&dir)) {
        Err(e @ CliError::BatchFailed(_)) => e.stdout_output().unwrap().to_string(),
        other => panic!("unexpected {other:?}"),
    };
    assert!(warm.contains("store 1 hit(s)"), "{warm}");
}

#[test]
fn failed_pareto_sweep_still_spills_the_skeleton() {
    let file = temp_program("pareto-spill", FIR);
    let dir = store_dir("pareto-spill");
    // An invalid sweep spec fails *after* the compile; the skeleton must
    // still be spilled so the corrected rerun warm-loads it.
    match run(&argv(&[
        "optimize",
        &file,
        "--pareto",
        "--points",
        "0",
        "--store-dir",
        &dir,
    ])) {
        Err(CliError::Failed(m)) => assert!(m.contains("pareto sweep failed"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    let ls = run(&argv(&["store", "ls", "--store-dir", &dir])).unwrap();
    assert!(ls.contains("skel"), "{ls}");
}

#[test]
fn pareto_flags_are_guarded() {
    let file = temp_program("pareto-guard", FIR);
    // Sweep flags without --pareto.
    match run(&argv(&["optimize", &file, "--points", "4"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("only apply with --pareto"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // Batch + --pareto.
    match run(&argv(&["optimize", &file, &file, "--pareto"])) {
        Err(CliError::Usage(m)) => assert!(m.contains("single file"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // Invalid spec surfaces the opt-layer error.
    match run(&argv(&["optimize", &file, "--pareto", "--points", "0"])) {
        Err(CliError::Failed(m)) => assert!(m.contains("invalid pareto sweep"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}

/// Recursively collects every file under `dir`.
fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}
