//! In-process integration tests for `sna trace` — the acceptance path:
//! a recorded signal for `examples/fir.sna` replayed through the paired
//! exact/quantized VM lanes, measured noise next to the analytic
//! prediction, bit-identical across worker counts.

use sna_cli::{run, CliError, Json};

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

/// Resolves a path under the repo's `examples/` directory.
fn example(name: &str) -> String {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("examples");
    path.push(name);
    path.to_string_lossy().into_owned()
}

/// Writes a deterministic recorded trace (the Weyl sequence from
/// `examples/gen_trace.rs`) to a temp CSV and returns its path.
fn temp_trace(tag: &str, rows: usize, amp: f64) -> String {
    let mut csv = String::from("x\n");
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rows {
        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        csv.push_str(&format!("{}\n", amp * (2.0 * u - 1.0)));
    }
    let path = std::env::temp_dir().join(format!("sna-trace-cli-{tag}-{}.csv", std::process::id()));
    std::fs::write(&path, csv).unwrap();
    path.to_string_lossy().into_owned()
}

/// The acceptance command: `trace report` on the FIR example must put
/// the measured output variance within tolerance of the NA prediction.
#[test]
fn trace_report_measured_variance_tracks_the_prediction() {
    let csv = temp_trace("accept", 8192, 0.8);
    let out = run(&argv(&[
        "trace",
        "report",
        &example("fir.sna"),
        "--trace",
        &csv,
        "--format",
        "json",
    ]))
    .unwrap();
    let doc = Json::parse(&out).unwrap();
    assert_eq!(doc.get("command").unwrap().as_str(), Some("trace"));
    assert_eq!(doc.get("mode").unwrap().as_str(), Some("report"));
    // The FIR has delays, so the analytic side is the LTI engine.
    assert_eq!(doc.get("predicted_by").unwrap().as_str(), Some("lti"));
    let Some(Json::Arr(outputs)) = doc.get("outputs") else {
        panic!("no outputs array in {out}");
    };
    assert_eq!(outputs.len(), 1);
    let y = &outputs[0];
    assert_eq!(y.get("output").unwrap().as_str(), Some("y"));
    let measured = y.get("measured").unwrap().get("variance").unwrap();
    let predicted = y.get("predicted").unwrap().get("variance").unwrap();
    assert!(measured.as_f64().unwrap() > 0.0, "{out}");
    assert!(predicted.as_f64().unwrap() > 0.0, "{out}");
    // The documented tolerance: relative variance gap under 1.5 — the
    // measured noise stays within the prediction's order of magnitude.
    // The analytic model treats the 25 taps' quantization errors as
    // independent, but they are delayed copies of the *same* rounded
    // signal, so it stably under-predicts this FIR by roughly 1.85×
    // (rel ≈ 0.85 across 4k–20k-row traces) — exactly the model-vs-
    // measurement gap the trace verbs exist to expose.
    let rel = y
        .get("variance_gap")
        .unwrap()
        .get("rel")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(
        rel.abs() < 1.5,
        "relative variance gap {rel} too wide:\n{out}"
    );
}

/// The replay is segmented deterministically, so the worker count must
/// never change a bit of the report.
#[test]
fn trace_report_is_bit_identical_across_worker_counts() {
    let csv = temp_trace("workers", 4096, 0.8);
    let report = |workers: &str| {
        run(&argv(&[
            "trace",
            "report",
            &example("fir.sna"),
            "--trace",
            &csv,
            "--workers",
            workers,
            "--format",
            "json",
        ]))
        .unwrap()
    };
    // Everything from `fit` on is the payload; the skipped prefix holds
    // only the wall-clock `elapsed_us` field.
    let payload = |s: &str| s.split("\"fit\"").nth(1).unwrap().to_string();
    let one = report("1");
    assert_eq!(payload(&one), payload(&report("4")));
    assert_eq!(payload(&one), payload(&report("8")));
}

/// `fit` reports the measured ranges, which are strictly tighter than
/// the declared `[-1, 1]` for an amplitude-0.8 recording.
#[test]
fn trace_fit_reports_measured_ranges() {
    let csv = temp_trace("fit", 2048, 0.8);
    let out = run(&argv(&[
        "trace",
        "fit",
        &example("fir.sna"),
        "--trace",
        &csv,
        "--format",
        "json",
    ]))
    .unwrap();
    let doc = Json::parse(&out).unwrap();
    assert_eq!(doc.get("mode").unwrap().as_str(), Some("fit"));
    assert_eq!(doc.get("rows").unwrap().as_f64(), Some(2048.0));
    let Some(Json::Arr(fit)) = doc.get("fit") else {
        panic!("no fit array in {out}");
    };
    assert_eq!(fit.len(), 1);
    assert_eq!(fit[0].get("input").unwrap().as_str(), Some("x"));
    let Some(Json::Arr(range)) = fit[0].get("range") else {
        panic!("no range pair in {out}");
    };
    let (lo, hi) = (range[0].as_f64().unwrap(), range[1].as_f64().unwrap());
    assert!((-0.8..-0.7).contains(&lo), "{out}");
    assert!((0.7..=0.8).contains(&hi), "{out}");

    // The human rendering carries the same numbers.
    let human = run(&argv(&[
        "trace",
        "fit",
        &example("fir.sna"),
        "--trace",
        &csv,
    ]))
    .unwrap();
    assert!(human.contains("trace fit"), "{human}");
    assert!(human.contains("input `x`"), "{human}");
}

/// `replay` is the measurement alone — no analytic engine, no gaps.
#[test]
fn trace_replay_skips_the_prediction() {
    let csv = temp_trace("replay", 1024, 0.8);
    let out = run(&argv(&[
        "trace",
        "replay",
        &example("fir.sna"),
        "--trace",
        &csv,
        "--format",
        "json",
    ]))
    .unwrap();
    let doc = Json::parse(&out).unwrap();
    assert_eq!(doc.get("mode").unwrap().as_str(), Some("replay"));
    assert!(matches!(doc.get("predicted_by"), Some(Json::Null)), "{out}");
    let Some(Json::Arr(outputs)) = doc.get("outputs") else {
        panic!("no outputs array in {out}");
    };
    assert!(
        matches!(outputs[0].get("predicted"), Some(Json::Null)),
        "{out}"
    );
    assert!(
        matches!(outputs[0].get("variance_gap"), Some(Json::Null)),
        "{out}"
    );

    let human = run(&argv(&[
        "trace",
        "replay",
        &example("fir.sna"),
        "--trace",
        &csv,
    ]))
    .unwrap();
    assert!(human.contains("measured numbers only"), "{human}");
}

/// `--store-dir` spills the fitted ranges as `tracefit` objects next to
/// the compile cache's skeleton.
#[test]
fn trace_store_dir_spills_fitted_ranges() {
    let csv = temp_trace("spill", 512, 0.8);
    let dir = std::env::temp_dir().join(format!("sna-trace-cli-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir = dir.to_string_lossy().into_owned();
    run(&argv(&[
        "trace",
        "fit",
        &example("fir.sna"),
        "--trace",
        &csv,
        "--store-dir",
        &dir,
    ]))
    .unwrap();
    let ls = run(&argv(&["store", "ls", "--store-dir", &dir])).unwrap();
    assert!(ls.contains("tracefit"), "{ls}");
    assert!(ls.contains("skel"), "{ls}");
}

#[test]
fn trace_usage_errors() {
    let csv = temp_trace("usage", 4, 0.8);
    let file = example("fir.sna");
    // Missing mode entirely.
    match run(&argv(&["trace", "--trace", &csv])) {
        Err(CliError::Usage(m)) => assert!(m.contains("missing <fit|replay|report>"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // Unknown mode.
    match run(&argv(&["trace", "frobnicate", &file, "--trace", &csv])) {
        Err(CliError::Usage(m)) => assert!(m.contains("unknown trace mode"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // Missing the recording itself.
    match run(&argv(&["trace", "report", &file])) {
        Err(CliError::Usage(m)) => assert!(m.contains("missing --trace"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
    // A CSV with no column for the design's input is a per-file failure.
    let bad = std::env::temp_dir().join(format!("sna-trace-cli-bad-{}.csv", std::process::id()));
    std::fs::write(&bad, "z\n1.0\n").unwrap();
    match run(&argv(&[
        "trace",
        "report",
        &file,
        "--trace",
        &bad.to_string_lossy(),
    ])) {
        Err(CliError::Failed(m)) => assert!(m.contains("no column for input"), "{m}"),
        other => panic!("unexpected {other:?}"),
    }
}
