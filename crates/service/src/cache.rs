//! The hash-keyed compile cache: the piece that turns "every invocation
//! re-lexes, re-lowers, and rebuilds the model" into "the first request
//! pays, every repeat goes straight to evaluation".
//!
//! Three key levels:
//!
//! * **source text** — the raw bytes, hashed by the map. The fast path: a
//!   repeat of the identical text hits without parsing anything.
//! * **canonical form** — the parsed program's canonical rendering (whose
//!   FNV-1a hash is the entry's reported fingerprint). Sources that
//!   differ only in whitespace or comments share one entry; the second
//!   spelling pays one parse, then aliases the existing compiled model.
//! * **shape** — the lowered graph with `Const` values masked
//!   ([`Lowered::shape_key`]). A program that differs from a cached one
//!   *only in coefficient values* — the inner loop of design-space
//!   exploration — pays parse + lower, then maps onto the cached entry's
//!   skeleton via [`Session::with_coefficients`]: range analysis re-runs
//!   only in the changed constants' cones and unaffected impulse gains
//!   are cloned instead of re-simulated.
//!
//! All levels compare the full key text on lookup, so a hash collision
//! can never hand one program another program's model.
//!
//! Entries hold a [`Session`] — graph, ranges, gain model, histogram
//! memo — behind an `Arc`; every stage is `Send + Sync`, so a worker
//! pool or one thread per connection can share them freely.
//!
//! # Persistent tier
//!
//! With [`CompileCache::with_store`] the cache gains a disk-backed
//! fourth tier below the in-memory ones: compiled skeletons
//! ([`Session::export_wire`]) are spilled to a [`sna_store::Store`] by
//! [`CompileCache::spill`] (servers call it on graceful drain, batches
//! at the end) and warm-loaded on a later process's miss — `"skel"`
//! objects keyed by the canonical fingerprint, plus small `"shape"`
//! pointer objects keyed by the shape fingerprint so coefficient
//! respins of a stored skeleton also warm-load.  Every stored payload
//! embeds the full key text it was derived from, so a fingerprint
//! collision reads as a plain miss; any frame- or schema-level damage
//! is discarded (counted in [`sna_store::StoreStats::corrupt`]) and the
//! program recompiles from scratch — corruption can never panic, poison
//! the in-memory cache, or resurrect a stale artifact.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sna_core::{NaModel, Session};
use sna_lang::{fnv1a_64, Diagnostic, Lowered};
use sna_store::{Store, WireReader, WireWriter};

/// Store object kind holding serialized compiled skeletons, keyed by
/// the canonical fingerprint.
pub const SKEL_KIND: &str = "skel";

/// Store object kind holding shape → skeleton pointers, keyed by the
/// shape fingerprint.
pub const SHAPE_PTR_KIND: &str = "shape";

/// One compiled program: the shared [`Session`] holding its artifact
/// chain, plus the cache's identifying fingerprints.
#[derive(Debug)]
pub struct CompiledEntry {
    /// The compiled session (graph, ranges, models), shared across
    /// threads.
    pub session: Arc<Session>,
    /// Canonical fingerprint of the program this was compiled from.
    pub fingerprint: u64,
    /// Coefficient-normalized shape fingerprint
    /// ([`Lowered::shape_fingerprint`]).
    pub shape_fingerprint: u64,
}

impl CompiledEntry {
    /// Wraps an already compiled program (used both by the cache and by
    /// uncached single-shot paths that still want lazy artifact sharing).
    #[must_use]
    pub fn new(lowered: Lowered, fingerprint: u64) -> Self {
        let shape_fingerprint = lowered.shape_fingerprint();
        let session = Session::new(lowered.dfg, lowered.input_ranges)
            .expect("lowering guarantees input/range consistency");
        CompiledEntry {
            session: Arc::new(session),
            fingerprint,
            shape_fingerprint,
        }
    }

    /// Wraps a session produced by coefficient-level reuse.
    fn from_session(session: Session, fingerprint: u64, shape_fingerprint: u64) -> Self {
        CompiledEntry {
            session: Arc::new(session),
            fingerprint,
            shape_fingerprint,
        }
    }

    /// The NA model for this program, built on first use and shared
    /// afterwards. The build is the expensive one-off (impulse-response
    /// analysis per potential noise source); evaluation against a
    /// word-length configuration is `O(#sources)`.
    ///
    /// # Errors
    ///
    /// The model build's failure, rendered (e.g. the graph is nonlinear);
    /// the error is cached too, so repeat requests fail fast.
    pub fn na_model(&self) -> Result<Arc<NaModel>, String> {
        self.session
            .na_model()
            .map_err(|e| format!("cannot build the NA model: {e}"))
    }

    /// Whether the NA model has been built (hit/miss accounting for
    /// callers that report model-level caching).
    #[must_use]
    pub fn na_model_built(&self) -> bool {
        self.session.na_model_built()
    }
}

/// How a [`CompileCache::get_or_compile`] call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Raw source bytes seen before; nothing was parsed.
    SourceHit,
    /// New spelling of a known program; one parse, no lowering or model
    /// build.
    CanonHit,
    /// A new program whose graph *shape* matches a cached one (only
    /// constant values differ): parse + lower ran, but ranges and gains
    /// were patched off the cached skeleton instead of rebuilt.
    ShapeHit,
    /// Absent from memory but warm-loaded from the persistent artifact
    /// store (directly or through a shape pointer): parse + lower ran,
    /// but every stage the stored skeleton carried was reused.
    StoreHit,
    /// Fully compiled on this call.
    Miss,
}

impl Lookup {
    /// `true` for any hit flavour.
    #[must_use]
    pub fn is_hit(self) -> bool {
        !matches!(self, Lookup::Miss)
    }

    /// Protocol wire word: `"hit"` / `"canon-hit"` / `"shape-hit"` /
    /// `"store-hit"` / `"miss"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Lookup::SourceHit => "hit",
            Lookup::CanonHit => "canon-hit",
            Lookup::ShapeHit => "shape-hit",
            Lookup::StoreHit => "store-hit",
            Lookup::Miss => "miss",
        }
    }
}

/// Cache counters, as reported in batch summaries and `stats` requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (any key level, shape included).
    pub hits: u64,
    /// The subset of `hits` answered through the shape tier (coefficient
    /// swap onto a cached skeleton).
    pub shape_hits: u64,
    /// Lookups that compiled from scratch.
    pub misses: u64,
    /// Distinct compiled programs currently held.
    pub entries: usize,
    /// Entries evicted (least-recently-used first) because a limit in
    /// [`CacheLimits`] would have been exceeded.
    pub evictions: u64,
}

/// Growth bounds for a [`CompileCache`].
///
/// The cache is shared with untrusted TCP peers, who can stream an
/// endless supply of *distinct* valid programs (each request line up to
/// 1 MiB); without bounds the key maps and their compiled models grow
/// until the server is OOM-killed. When inserting a *newly compiled*
/// program would push the cache past either limit, **least-recently-used
/// entries are evicted one at a time** until it fits (each counted in
/// [`CacheStats::evictions`]). Every hit — source, canonical, or shape
/// tier — refreshes its entry's recency, so a hot working set (a busy
/// server's steady traffic, a sweep's shape donor) survives a stream of
/// one-off programs instead of being wiped by a whole-cache sweep.
/// In-flight `Arc`s keep evicted entries alive regardless.
///
/// Only the full-compile (miss) path evicts. Hit-path alias
/// registration (a new spelling of a cached program) and shape-tier
/// variant registration never do: past a cap the spelling/variant
/// simply stays unrecorded, so cheap hit traffic cannot evict other
/// clients' entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum distinct compiled programs held at once.
    pub max_entries: usize,
    /// Maximum total bytes across all key texts (raw sources, canonical
    /// renderings, shape keys). Bounds the alias map, which can grow
    /// without adding entries — every whitespace respelling of one
    /// program is a new up-to-1-MiB source key.
    pub max_key_bytes: usize,
}

impl Default for CacheLimits {
    fn default() -> Self {
        CacheLimits {
            max_entries: 256,
            max_key_bytes: 64 << 20,
        }
    }
}

/// One cached program plus its recency and the reverse index needed to
/// evict it cleanly.
///
/// Key texts are `Arc<str>` shared between the maps and these reverse
/// indices, so each distinct text (an up-to-1-MiB source line, say) is
/// stored once however many structures point at it — the accounted
/// `key_bytes` track real memory, not a fraction of it.
struct Slot {
    entry: Arc<CompiledEntry>,
    /// Raw-source spellings registered for this entry (keys of
    /// `State::by_source` to drop on eviction; shared allocations).
    aliases: Vec<Arc<str>>,
    /// The shape key this entry donates its skeleton under, when it is
    /// the registered donor (key of `State::by_shape` to drop on
    /// eviction; shared allocation).
    shape_key: Option<Arc<str>>,
    /// Logical timestamp of the last lookup that returned this entry.
    last_used: u64,
}

#[derive(Default)]
struct State {
    /// Raw source text → canonical key of its entry. Full-text keys
    /// (not bare hashes): the map's own hashing gives the fast path,
    /// and key equality makes a hash collision between two different
    /// programs impossible — which matters once untrusted TCP clients
    /// share the cache.
    by_source: HashMap<Arc<str>, Arc<str>>,
    /// Canonical rendering → the compiled slot, same full-text
    /// reasoning. The one map that owns entries; all other maps point
    /// into it.
    slots: HashMap<Arc<str>, Slot>,
    /// Const-masked shape rendering ([`Lowered::shape_key`]) → canonical
    /// key of the skeleton donor for coefficient swaps (the first entry
    /// compiled with each shape, replaced when it is evicted).
    by_shape: HashMap<Arc<str>, Arc<str>>,
    /// Total bytes across all maps' keys, compared against
    /// [`CacheLimits::max_key_bytes`].
    key_bytes: usize,
    /// Logical clock for LRU recency (bumped on every lookup that
    /// touches an entry).
    tick: u64,
    hits: u64,
    shape_hits: u64,
    misses: u64,
    evictions: u64,
}

impl State {
    /// Marks the slot under `canon` as just-used and returns its entry.
    fn touch(&mut self, canon: &str) -> Option<Arc<CompiledEntry>> {
        self.tick += 1;
        let tick = self.tick;
        self.slots.get_mut(canon).map(|slot| {
            slot.last_used = tick;
            slot.entry.clone()
        })
    }

    /// Evicts least-recently-used entries until one more compiled
    /// program with `incoming` key bytes fits the limits. Only the
    /// full-compile path calls this — the caller has just paid a lower,
    /// so a peer cannot trigger evictions with cheap requests.
    fn make_room(&mut self, limits: &CacheLimits, incoming: usize) {
        while !self.slots.is_empty()
            && (self.slots.len() >= limits.max_entries
                || self.key_bytes.saturating_add(incoming) > limits.max_key_bytes)
        {
            let coldest = self
                .slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(canon, _)| canon.clone())
                .expect("non-empty");
            self.evict(&coldest);
        }
    }

    /// Removes one entry and every key pointing at it.
    fn evict(&mut self, canon: &str) {
        let Some(slot) = self.slots.remove(canon) else {
            return;
        };
        self.key_bytes = self.key_bytes.saturating_sub(canon.len());
        for alias in &slot.aliases {
            self.by_source.remove(alias);
            self.key_bytes = self.key_bytes.saturating_sub(alias.len());
        }
        if let Some(shape_key) = &slot.shape_key {
            self.by_shape.remove(shape_key);
            self.key_bytes = self.key_bytes.saturating_sub(shape_key.len());
        }
        self.evictions += 1;
    }

    /// Registers `source` as an alias of the slot under `canon`, with
    /// byte accounting (a racing thread may have inserted the same key
    /// already). The source text is allocated once and shared between
    /// the alias map and the slot's reverse index.
    fn insert_source(&mut self, source: &str, canon: &str) {
        if self.by_source.contains_key(source) {
            return;
        }
        let Some((canon_arc, _)) = self.slots.get_key_value(canon) else {
            return;
        };
        let canon_arc = Arc::clone(canon_arc);
        let source_arc: Arc<str> = Arc::from(source);
        self.key_bytes += source.len();
        self.by_source.insert(Arc::clone(&source_arc), canon_arc);
        self.slots
            .get_mut(canon)
            .expect("resolved above")
            .aliases
            .push(source_arc);
    }

    /// Inserts a freshly compiled slot under `canon` (which must be
    /// vacant), with byte accounting.
    fn insert_slot(&mut self, canon: Arc<str>, entry: Arc<CompiledEntry>) {
        self.tick += 1;
        self.key_bytes += canon.len();
        let slot = Slot {
            entry,
            aliases: Vec::new(),
            shape_key: None,
            last_used: self.tick,
        };
        let prev = self.slots.insert(canon, slot);
        debug_assert!(prev.is_none(), "insert_slot requires a vacant key");
    }

    /// Registers the slot under `canon` as the donor for `shape_key`
    /// (first occupant wins) while it fits the byte budget.
    fn register_shape(&mut self, shape_key: &str, canon: &str, limits: &CacheLimits) {
        if self.by_shape.contains_key(shape_key)
            || self.key_bytes.saturating_add(shape_key.len()) > limits.max_key_bytes
        {
            return;
        }
        let Some((canon_arc, _)) = self.slots.get_key_value(canon) else {
            return;
        };
        let canon_arc = Arc::clone(canon_arc);
        let shape_arc: Arc<str> = Arc::from(shape_key);
        self.key_bytes += shape_key.len();
        self.slots.get_mut(canon).expect("resolved above").shape_key = Some(Arc::clone(&shape_arc));
        self.by_shape.insert(shape_arc, canon_arc);
    }
}

/// A thread-safe source → compiled-model cache.
///
/// Compilation runs *outside* the lock: concurrent misses on the same new
/// source may compile twice, but the first insert wins, every caller
/// receives the same shared entry, and only the winner counts as a miss —
/// the lock is only ever held for map operations, never for parsing or
/// model building.
///
/// Growth is bounded by [`CacheLimits`] (see there for the policy); the
/// defaults suit a long-running server on untrusted input.
#[derive(Default)]
pub struct CompileCache {
    state: Mutex<State>,
    limits: CacheLimits,
    store: Option<Arc<Store>>,
}

impl CompileCache {
    /// An empty cache with the default [`CacheLimits`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache with explicit growth bounds.
    #[must_use]
    pub fn with_limits(limits: CacheLimits) -> Self {
        CompileCache {
            state: Mutex::default(),
            limits,
            store: None,
        }
    }

    /// Attaches a persistent artifact store: misses warm-load stored
    /// skeletons and [`CompileCache::spill`] writes compiled entries
    /// back.
    #[must_use]
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached artifact store, if any (for stats reporting and
    /// maintenance verbs).
    #[must_use]
    pub fn store(&self) -> Option<&Store> {
        self.store.as_deref()
    }

    /// The compiled entry for `source`, compiling it if unseen.
    ///
    /// # Errors
    ///
    /// The compiler's diagnostics for sources that do not parse or lower.
    /// Failures are not cached (they are cheap to reproduce and carry
    /// spans into the offending text).
    pub fn get_or_compile(
        &self,
        source: &str,
    ) -> Result<(Arc<CompiledEntry>, Lookup), Vec<Diagnostic>> {
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(canon) = state.by_source.get(source).cloned() {
                // Aliases always point at live slots (eviction removes
                // them together), so the touch cannot miss.
                let entry = state.touch(&canon).expect("aliases track live slots");
                state.hits += 1;
                return Ok((entry, Lookup::SourceHit));
            }
        }

        // Parse outside the lock; the canonical rendering may still
        // alias an entry compiled from a different spelling.
        let program = sna_lang::parse(source)?;
        let canon = program.to_string();
        let fingerprint = fnv1a_64(canon.as_bytes());
        {
            let mut state = self.state.lock().expect("cache lock");
            if let Some(entry) = state.touch(&canon) {
                // Record the spelling as an alias only while it fits the
                // byte budget. Never evict on this path: hit requests
                // are cheap for the peer, so evicting here would let an
                // attacker spam respellings of one cached program to
                // push out every other client's entries without ever
                // paying a compile. Past the cap the spelling simply
                // stays unrecorded and keeps resolving through its
                // canonical form (one parse per request).
                if state.key_bytes.saturating_add(source.len()) <= self.limits.max_key_bytes {
                    state.insert_source(source, &canon);
                }
                state.hits += 1;
                return Ok((entry, Lookup::CanonHit));
            }
        }

        let lowered = sna_lang::lower(&program)?;
        let canon_len = canon.len();
        let shape_key = lowered.shape_key();
        let shape_fingerprint = lowered.shape_fingerprint();

        // Shape tier: a cached program with the same const-masked shape
        // absorbs this one as a coefficient swap — ranges and gains are
        // patched off its skeleton instead of rebuilt. Serving a swap
        // *uses* the donor, so its recency is refreshed: a hot skeleton
        // under a parameter sweep outlives streams of one-off programs.
        let donor = {
            let mut state = self.state.lock().expect("cache lock");
            let donor_canon = state.by_shape.get(shape_key.as_str()).cloned();
            donor_canon.and_then(|c| state.touch(&c))
        };
        if let Some(donor) = donor {
            if let Ok(session) = donor.session.with_coefficients(&lowered.dfg.const_values()) {
                let entry = Arc::new(CompiledEntry::from_session(
                    session,
                    fingerprint,
                    shape_fingerprint,
                ));
                let mut state = self.state.lock().expect("cache lock");
                // Never evict on this path: a shape hit is cheap for the
                // peer (the donor absorbed the expensive stages), so
                // evicting here would let an attacker stream coefficient
                // respins of one cached shape to push out every other
                // client's fully compiled programs. Past a limit the
                // variant is served but simply stays unregistered.
                let over_entries = state.slots.len() >= self.limits.max_entries;
                let over_bytes = state.key_bytes.saturating_add(canon_len + source.len())
                    > self.limits.max_key_bytes;
                if over_entries || over_bytes {
                    state.hits += 1;
                    state.shape_hits += 1;
                    return Ok((entry, Lookup::ShapeHit));
                }
                if let Some(existing) = state.touch(&canon) {
                    // A racer registered the identical program while we
                    // patched; share its entry.
                    state.insert_source(source, &canon);
                    state.hits += 1;
                    return Ok((existing, Lookup::CanonHit));
                }
                state.insert_slot(Arc::from(canon.as_str()), entry.clone());
                state.insert_source(source, &canon);
                state.hits += 1;
                state.shape_hits += 1;
                return Ok((entry, Lookup::ShapeHit));
            }
        }

        // Persistent tier: a previous process may have spilled this
        // program's (or its shape's) compiled skeleton to disk.
        if let Some(session) =
            self.store_warm_load(&canon, fingerprint, &shape_key, shape_fingerprint, &lowered)
        {
            let entry = Arc::new(CompiledEntry::from_session(
                session,
                fingerprint,
                shape_fingerprint,
            ));
            let mut state = self.state.lock().expect("cache lock");
            if let Some(existing) = state.touch(&canon) {
                state.insert_source(source, &canon);
                state.hits += 1;
                return Ok((existing, Lookup::CanonHit));
            }
            // A warm load takes a full slot, exactly like a compile
            // would have (the peer paid a compile for it once).
            state.make_room(&self.limits, canon_len + source.len());
            state.insert_slot(Arc::from(canon.as_str()), entry.clone());
            state.insert_source(source, &canon);
            state.register_shape(&shape_key, &canon, &self.limits);
            state.hits += 1;
            return Ok((entry, Lookup::StoreHit));
        }

        let entry = Arc::new(CompiledEntry::new(lowered, fingerprint));
        let mut state = self.state.lock().expect("cache lock");
        // A racing thread may have inserted the same program meanwhile;
        // the first insert wins (so every caller shares one allocation)
        // and counts as the one miss — the losers found an entry, which
        // is a hit however the work raced. This is a hit path, so the
        // alias registers only within the byte budget (same guard as
        // the canon-hit path — no eviction, no cap overshoot).
        if let Some(existing) = state.touch(&canon) {
            if state.key_bytes.saturating_add(source.len()) <= self.limits.max_key_bytes {
                state.insert_source(source, &canon);
            }
            state.hits += 1;
            return Ok((existing, Lookup::CanonHit));
        }
        state.make_room(&self.limits, canon_len + source.len());
        state.insert_slot(Arc::from(canon.as_str()), entry.clone());
        state.insert_source(source, &canon);
        // Register the new shape's skeleton donor (first occupant wins)
        // while it fits the byte budget.
        state.register_shape(&shape_key, &canon, &self.limits);
        state.misses += 1;
        Ok((entry, Lookup::Miss))
    }

    /// Tries both persistent tiers for a warm skeleton: the canonical
    /// fingerprint first (exact program), then the shape pointer
    /// (coefficient respin of a stored skeleton).  Any failure — frame
    /// damage, schema damage, key collision, patch failure — returns
    /// `None` and the caller compiles from scratch.
    fn store_warm_load(
        &self,
        canon: &str,
        fingerprint: u64,
        shape_key: &str,
        shape_fingerprint: u64,
        lowered: &Lowered,
    ) -> Option<Session> {
        let store = self.store.as_deref()?;
        if let Some((stored_canon, _, session)) = load_skeleton(store, fingerprint) {
            if stored_canon == canon {
                return Some(session);
            }
            // Fingerprint collision with a different program: a miss,
            // not corruption. Fall through to the shape tier.
        }
        let pointer = store.get(SHAPE_PTR_KIND, shape_fingerprint)?;
        let (stored_shape, skel_fp) = match decode_shape_pointer(&pointer) {
            Ok(decoded) => decoded,
            Err(_) => {
                store.discard(SHAPE_PTR_KIND, shape_fingerprint);
                return None;
            }
        };
        if stored_shape != shape_key {
            return None; // shape-fingerprint collision: plain miss
        }
        let (_, skel_shape, session) = load_skeleton(store, skel_fp)?;
        if skel_shape != shape_key {
            return None; // the pointer's donor was replaced by another shape
        }
        session.with_coefficients(&lowered.dfg.const_values()).ok()
    }

    /// Writes every resident entry's current skeleton (and each shape
    /// donor's pointer) to the attached store; returns the number of
    /// objects written.  Stages built since the last spill ride along —
    /// callers invoke this at quiet points (server drain, end of a
    /// batch), so a later process warm-loads fully built sessions.
    ///
    /// A cache without a store (or one hitting I/O errors) spills
    /// nothing; failures are reflected in the return count only.
    pub fn spill(&self) -> usize {
        let Some(store) = self.store.as_deref() else {
            return 0;
        };
        // Snapshot under the lock, write outside it.
        type SpillRow = (Arc<str>, Option<Arc<str>>, Arc<CompiledEntry>);
        let snapshot: Vec<SpillRow> = {
            let state = self.state.lock().expect("cache lock");
            state
                .slots
                .iter()
                .map(|(canon, slot)| (canon.clone(), slot.shape_key.clone(), slot.entry.clone()))
                .collect()
        };
        let mut written = 0;
        for (canon, shape_key, entry) in snapshot {
            let shape_text = shape_key.as_deref().map(str::to_owned).unwrap_or_default();
            let mut w = WireWriter::new();
            w.str(&canon);
            w.str(&shape_text);
            w.bytes(&entry.session.export_wire());
            if store.put(SKEL_KIND, entry.fingerprint, &w.finish()).is_ok() {
                written += 1;
            }
            if let Some(shape) = shape_key {
                let mut w = WireWriter::new();
                w.str(&shape);
                w.u64(entry.fingerprint);
                if store
                    .put(SHAPE_PTR_KIND, entry.shape_fingerprint, &w.finish())
                    .is_ok()
                {
                    written += 1;
                }
            }
        }
        written
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let state = self.state.lock().expect("cache lock");
        CacheStats {
            hits: state.hits,
            shape_hits: state.shape_hits,
            misses: state.misses,
            entries: state.slots.len(),
            evictions: state.evictions,
        }
    }
}

/// Loads and decodes a `"skel"` object: `(canonical text, shape key,
/// imported session)`.  Schema damage discards the object (the store
/// already counted and dropped frame-level damage in `get`).
fn load_skeleton(store: &Store, key: u64) -> Option<(String, String, Session)> {
    let payload = store.get(SKEL_KIND, key)?;
    let decode = || -> Result<(String, String, Session), sna_store::WireError> {
        let mut r = WireReader::new(&payload);
        let canon = r.str()?;
        let shape = r.str()?;
        let session = Session::import_wire(&r.bytes()?)?;
        r.expect_end()?;
        Ok((canon, shape, session))
    };
    match decode() {
        Ok(decoded) => Some(decoded),
        Err(_) => {
            store.discard(SKEL_KIND, key);
            None
        }
    }
}

/// Decodes a `"shape"` pointer object: `(shape key text, skeleton
/// fingerprint)`.
fn decode_shape_pointer(payload: &[u8]) -> Result<(String, u64), sna_store::WireError> {
    let mut r = WireReader::new(payload);
    let shape = r.str()?;
    let skel_fp = r.u64()?;
    r.expect_end()?;
    Ok((shape, skel_fp))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "input x in [-1, 1];\ny = 0.5*x;\noutput y;\n";

    #[test]
    fn repeat_sources_hit_and_share_the_entry() {
        let cache = CompileCache::new();
        let (first, l1) = cache.get_or_compile(SRC).unwrap();
        let (second, l2) = cache.get_or_compile(SRC).unwrap();
        assert_eq!(l1, Lookup::Miss);
        assert_eq!(l2, Lookup::SourceHit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                shape_hits: 0,
                misses: 1,
                entries: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn reformatted_source_aliases_via_the_canonical_fingerprint() {
        let cache = CompileCache::new();
        let (first, _) = cache.get_or_compile(SRC).unwrap();
        let respelled = "# comment\ninput x in [ -1, 1 ];\n\ny = 0.5 * x;\noutput y;";
        let (second, lookup) = cache.get_or_compile(respelled).unwrap();
        assert_eq!(lookup, Lookup::CanonHit);
        assert!(Arc::ptr_eq(&first, &second));
        // The alias is remembered: the respelled text now hits on bytes.
        let (_, lookup) = cache.get_or_compile(respelled).unwrap();
        assert_eq!(lookup, Lookup::SourceHit);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn na_model_is_built_once_and_shared() {
        let cache = CompileCache::new();
        let (entry, _) = cache.get_or_compile(SRC).unwrap();
        assert!(!entry.na_model_built());
        let a = entry.na_model().unwrap();
        assert!(entry.na_model_built());
        let b = entry.na_model().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn nonlinear_graphs_report_a_model_error_without_poisoning_compile() {
        let cache = CompileCache::new();
        let (entry, _) = cache.get_or_compile("input x;\noutput y = x*x;\n").unwrap();
        assert!(entry.na_model().is_err());
        // The compiled graph is still usable for other engines.
        assert!(entry.session.dfg().is_combinational());
    }

    #[test]
    fn coefficient_swaps_hit_the_shape_tier() {
        let cache = CompileCache::new();
        let base = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x;\n";
        let (first, l0) = cache.get_or_compile(base).unwrap();
        assert_eq!(l0, Lookup::Miss);
        // Warm the expensive stage so the swap has something to reuse.
        first.na_model().unwrap();

        let swapped = "input x in [-1, 1];\nlet k = 0.25;\noutput y = k*x;\n";
        let (second, lookup) = cache.get_or_compile(swapped).unwrap();
        assert_eq!(lookup, Lookup::ShapeHit);
        assert_eq!(second.shape_fingerprint, first.shape_fingerprint);
        assert_ne!(second.fingerprint, first.fingerprint);
        assert_eq!(second.session.coefficients(), vec![0.25]);
        // The patched model is already in place — no rebuild on use.
        assert!(second.na_model_built());
        let stats = cache.stats();
        assert_eq!(stats.shape_hits, 1, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.entries, 2, "{stats:?}");

        // The swapped spelling is now cached in its own right.
        let (_, l2) = cache.get_or_compile(swapped).unwrap();
        assert_eq!(l2, Lookup::SourceHit);

        // A genuinely different shape misses.
        let reshaped = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x + x;\n";
        assert_eq!(cache.get_or_compile(reshaped).unwrap().1, Lookup::Miss);
    }

    #[test]
    fn shape_hit_analyses_match_a_cold_compile() {
        let base = "input x in [-1, 1];\n\
                    x1 = delay x;\n\
                    x2 = delay x1;\n\
                    let a = 0.25;\n\
                    let b = 0.5;\n\
                    y = a*x + b*x1 + a*x2;\n\
                    output y;\n";
        let swapped = base.replace("0.25", "0.3").replace("0.5", "0.45");

        let warm = CompileCache::new();
        let (e0, _) = warm.get_or_compile(base).unwrap();
        e0.na_model().unwrap();
        let (via_shape, lookup) = warm.get_or_compile(&swapped).unwrap();
        assert_eq!(lookup, Lookup::ShapeHit);

        let cold = CompileCache::new();
        let (scratch, _) = cold.get_or_compile(&swapped).unwrap();

        let cfg_a = via_shape
            .session
            .wl_config(&sna_core::WlChoice::Uniform(12))
            .unwrap();
        let cfg_b = scratch
            .session
            .wl_config(&sna_core::WlChoice::Uniform(12))
            .unwrap();
        let a = via_shape
            .na_model()
            .unwrap()
            .evaluate(via_shape.session.dfg(), &cfg_a);
        let b = scratch
            .na_model()
            .unwrap()
            .evaluate(scratch.session.dfg(), &cfg_b);
        for ((n1, ra), (n2, rb)) in a.iter().zip(&b) {
            assert_eq!(n1, n2);
            let tol = 1e-12 * rb.variance.abs().max(1e-300);
            assert!(
                (ra.variance - rb.variance).abs() <= tol,
                "variance {} vs {}",
                ra.variance,
                rb.variance
            );
        }
    }

    /// A *structurally* distinct single-output program per index (the
    /// shapes differ, so none of these can shape-alias another).
    fn program(i: usize) -> String {
        format!(
            "input x in [-1, 1];\ny = 0.5*x{};\noutput y;\n",
            " + x".repeat(i)
        )
    }

    #[test]
    fn entry_cap_evicts_least_recently_used_first() {
        let cache = CompileCache::with_limits(CacheLimits {
            max_entries: 4,
            ..CacheLimits::default()
        });
        for i in 1..=20 {
            let (entry, lookup) = cache.get_or_compile(&program(i)).unwrap();
            assert_eq!(lookup, Lookup::Miss);
            assert!(entry.session.dfg().is_combinational());
        }
        let stats = cache.stats();
        assert!(stats.entries <= 4, "{stats:?}");
        // One LRU eviction per insert past the cap, not whole-cache
        // sweeps: 16 of the 20 distinct programs were pushed out.
        assert_eq!(stats.evictions, 16, "{stats:?}");
        // The recent tail survived; the oldest recompiles.
        for i in 17..=20 {
            assert!(
                cache.get_or_compile(&program(i)).unwrap().1.is_hit(),
                "program {i} should still be cached"
            );
        }
        assert_eq!(cache.get_or_compile(&program(1)).unwrap().1, Lookup::Miss);
    }

    #[test]
    fn hits_refresh_recency_so_hot_entries_survive_churn() {
        let cache = CompileCache::with_limits(CacheLimits {
            max_entries: 4,
            ..CacheLimits::default()
        });
        let hot = program(0);
        cache.get_or_compile(&hot).unwrap();
        // Stream 50 one-off programs, touching the hot one between every
        // insert: with a true LRU the hot entry is never the victim.
        for i in 1..=50 {
            assert!(cache.get_or_compile(&hot).unwrap().1.is_hit());
            assert_eq!(cache.get_or_compile(&program(i)).unwrap().1, Lookup::Miss);
        }
        assert_eq!(
            cache.get_or_compile(&hot).unwrap().1,
            Lookup::SourceHit,
            "the hot entry must survive 50 insertions past the cap"
        );
        let stats = cache.stats();
        assert!(stats.entries <= 4, "{stats:?}");
        assert_eq!(stats.misses, 51, "{stats:?}");
    }

    #[test]
    fn shape_donors_are_refreshed_by_swaps_and_cleaned_up_on_eviction() {
        let cache = CompileCache::with_limits(CacheLimits {
            max_entries: 4,
            ..CacheLimits::default()
        });
        let base = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x;\n";
        let (donor, _) = cache.get_or_compile(base).unwrap();
        donor.na_model().unwrap();
        // Keep the donor hot through its shape tier only (coefficient
        // respins), while distinct programs churn the rest of the cache.
        for i in 1..=20 {
            let swapped = format!("input x in [-1, 1];\nlet k = 0.{i}1;\noutput y = k*x;\n");
            let (_, lookup) = cache.get_or_compile(&swapped).unwrap();
            assert!(lookup.is_hit(), "iteration {i}: {lookup:?}");
            cache.get_or_compile(&program(i)).unwrap();
        }
        // The donor was touched by every swap: still resident.
        assert!(cache.get_or_compile(base).unwrap().1.is_hit());

        // Push the donor out for real (no more touches) and verify the
        // shape tier was cleaned up: the next swap is a full compile.
        for i in 21..=40 {
            cache.get_or_compile(&program(i)).unwrap();
        }
        assert_eq!(cache.get_or_compile(base).unwrap().1, Lookup::Miss);
    }

    #[test]
    fn key_byte_cap_stops_alias_growth_without_sweeping() {
        // One program, many spellings: every spelling is a new source
        // key, so the byte cap must stop alias recording — but hit
        // requests must never sweep the cache out from under other
        // clients (a peer could otherwise evict everything by spamming
        // cheap respellings of one cached program).
        let cache = CompileCache::with_limits(CacheLimits {
            max_entries: 1024,
            max_key_bytes: 4096,
        });
        let (first, _) = cache.get_or_compile(SRC).unwrap();
        let mut spellings = Vec::new();
        for i in 0..200 {
            let respelled = format!("# pad {i} {}\n{SRC}", "x".repeat(64));
            let (entry, lookup) = cache.get_or_compile(&respelled).unwrap();
            assert!(Arc::ptr_eq(&first, &entry));
            assert!(lookup.is_hit());
            spellings.push(respelled);
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "{stats:?}");
        assert_eq!(stats.entries, 1, "{stats:?}");
        // Alias recording stopped at the cap: an early spelling was
        // remembered (byte-level hit), a late one was not — it still
        // resolves, but through the canonical form each time.
        assert_eq!(
            cache.get_or_compile(&spellings[0]).unwrap().1,
            Lookup::SourceHit
        );
        assert_eq!(
            cache.get_or_compile(&spellings[199]).unwrap().1,
            Lookup::CanonHit
        );
    }

    #[test]
    fn compile_errors_are_reported_not_cached() {
        let cache = CompileCache::new();
        assert!(cache.get_or_compile("input x;\ny = ;\n").is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 0);
    }

    // ------------------------------------------------------------------
    // Persistent tier
    // ------------------------------------------------------------------

    fn store_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sna-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cache_on(dir: &std::path::Path) -> CompileCache {
        CompileCache::new().with_store(Arc::new(Store::open(dir).unwrap()))
    }

    /// Compile `source`, force every stage, spill — the state a drained
    /// server leaves behind. Returns the canonical fingerprint.
    fn seed(dir: &std::path::Path, source: &str) -> u64 {
        let cache = cache_on(dir);
        let (entry, lookup) = cache.get_or_compile(source).unwrap();
        assert_eq!(lookup, Lookup::Miss);
        entry.session.node_ranges().unwrap();
        entry.na_model().unwrap();
        let _ = entry.session.vm_program();
        assert!(cache.spill() >= 1);
        entry.fingerprint
    }

    #[test]
    fn warm_load_reuses_every_stored_stage() {
        let dir = store_dir("warm");
        seed(&dir, SRC);

        let cache = cache_on(&dir);
        let (entry, lookup) = cache.get_or_compile(SRC).unwrap();
        assert_eq!(lookup, Lookup::StoreHit);
        assert!(entry.na_model_built());
        assert!(entry.session.vm_program_built());
        let stats = entry.session.stats();
        assert_eq!(stats.range_builds, 0, "{stats:?}");
        assert_eq!(stats.na_builds, 0, "{stats:?}");
        assert_eq!(stats.vm_compiles, 0, "{stats:?}");
        assert!(cache.store().unwrap().stats().hits >= 1);

        // Now resident: the next lookup is a plain memory hit.
        assert_eq!(cache.get_or_compile(SRC).unwrap().1, Lookup::SourceHit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coefficient_respins_warm_load_through_the_shape_pointer() {
        let dir = store_dir("shape-ptr");
        let base = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x;\n";
        seed(&dir, base);

        let swapped = "input x in [-1, 1];\nlet k = 0.25;\noutput y = k*x;\n";
        let cache = cache_on(&dir);
        let (entry, lookup) = cache.get_or_compile(swapped).unwrap();
        assert_eq!(lookup, Lookup::StoreHit);
        assert_eq!(entry.session.coefficients(), vec![0.25]);
        assert!(entry.na_model_built(), "patched gains ride along");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn frame_level_corruption_recompiles_cleanly() {
        use std::io::{Read, Seek, SeekFrom, Write};
        // Three damage modes against the stored skeleton: truncation,
        // a payload bit-flip, and a format-version bump. Every one must
        // come back as a clean recompile with the corruption counted —
        // never a panic, never a stale artifact.
        for (mode, damage) in [("truncate", 0u8), ("bitflip", 1u8), ("version", 2u8)] {
            let dir = store_dir(&format!("corrupt-{mode}"));
            let fp = seed(&dir, SRC);
            let path = Store::open(&dir).unwrap().object_path(SKEL_KIND, fp);
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            match damage {
                0 => {
                    let len = f.metadata().unwrap().len();
                    f.set_len(len / 2).unwrap();
                }
                1 => {
                    let len = f.metadata().unwrap().len();
                    f.seek(SeekFrom::Start(len - 3)).unwrap();
                    let mut b = [0u8; 1];
                    f.read_exact(&mut b).unwrap();
                    f.seek(SeekFrom::Start(len - 3)).unwrap();
                    f.write_all(&[b[0] ^ 0x40]).unwrap();
                }
                _ => {
                    // Bytes 4..8 hold the little-endian format version.
                    f.seek(SeekFrom::Start(4)).unwrap();
                    f.write_all(&[0xFF, 0xFF, 0xFF, 0xFF]).unwrap();
                }
            }
            drop(f);

            let cache = cache_on(&dir);
            let (entry, lookup) = cache.get_or_compile(SRC).unwrap();
            assert_eq!(lookup, Lookup::Miss, "{mode}: must recompile");
            assert!(entry.session.dfg().is_linear());
            assert!(
                cache.store().unwrap().stats().corrupt >= 1,
                "{mode}: corruption must be counted"
            );
            // And the recompiled entry serves correctly from memory.
            assert_eq!(cache.get_or_compile(SRC).unwrap().1, Lookup::SourceHit);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn schema_level_corruption_is_discarded_not_trusted() {
        let dir = store_dir("schema");
        let fp = seed(&dir, SRC);
        {
            // A frame that passes magic/version/CRC but whose payload is
            // not a skeleton.
            let store = Store::open(&dir).unwrap();
            store
                .put(SKEL_KIND, fp, b"perfectly valid garbage")
                .unwrap();
        }
        let cache = cache_on(&dir);
        let (_, lookup) = cache.get_or_compile(SRC).unwrap();
        assert_eq!(lookup, Lookup::Miss);
        let store = cache.store().unwrap();
        assert!(store.stats().corrupt >= 1);
        // The poisoned object was dropped from the store entirely.
        assert!(store.get(SKEL_KIND, fp).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn respill_overwrites_with_newly_built_stages() {
        let dir = store_dir("respill");
        // First spill with no stages forced: a later warm load imports
        // a cold skeleton and builds lazily.
        {
            let cache = cache_on(&dir);
            cache.get_or_compile(SRC).unwrap();
            assert!(cache.spill() >= 1);
        }
        {
            let cache = cache_on(&dir);
            let (entry, lookup) = cache.get_or_compile(SRC).unwrap();
            assert_eq!(lookup, Lookup::StoreHit);
            assert!(!entry.na_model_built());
            entry.na_model().unwrap();
            assert_eq!(entry.session.stats().na_builds, 1);
            assert!(cache.spill() >= 1);
        }
        // The respill carried the built model.
        let cache = cache_on(&dir);
        let (entry, lookup) = cache.get_or_compile(SRC).unwrap();
        assert_eq!(lookup, Lookup::StoreHit);
        assert!(entry.na_model_built());
        assert_eq!(entry.session.stats().na_builds, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
