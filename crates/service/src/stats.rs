//! The server's observability plane: named atomic counters plus
//! fixed-bin latency histograms, recorded per verb and per resolved
//! analysis engine.
//!
//! Everything in here is lock-free — counters and histogram bins are
//! plain `AtomicU64`s bumped with relaxed ordering, so the hot request
//! path pays a handful of uncontended atomic adds and the `stats` verb
//! reads a consistent-enough snapshot without stopping the world.
//!
//! ## Bin scheme
//!
//! Latencies are recorded in microseconds into log₂-spaced bins: bin
//! `i` counts requests whose latency fell in `[2^i − 1, 2^(i+1) − 1)`
//! µs, so bin 0 is `[0, 1)` µs, bin 1 is `[1, 3)`, bin 10 is roughly
//! `[1, 2)` ms, and the last of the [`N_BINS`] bins is an overflow
//! catch-all (≈ 36 minutes and beyond). Log spacing keeps the array
//! small and fixed (no allocation on the record path) while giving
//! constant *relative* resolution — the property percentile estimates
//! care about. The shape follows rsnano's stats histograms; the bins
//! here are atomics instead of a mutexed `Vec` so recording never
//! serializes the worker threads.
//!
//! ## Percentiles
//!
//! p50/p90/p99 are estimated from a snapshot by walking the cumulative
//! mass to the target rank and interpolating linearly *within* the
//! containing bin (uniform-within-bin assumption), clamped to the
//! maximum latency ever observed so the open-ended top bin cannot
//! invent outliers. [`HistogramSnapshot::quantile`] has direct unit
//! tests against exact quantiles on synthetic data below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::json::Json;

/// Number of log₂-spaced latency bins. Bin [`N_BINS`]` − 1` is the
/// overflow bin; with 32 bins the last finite boundary is `2^31 − 1` µs
/// ≈ 36 minutes, far beyond any request the server answers.
pub const N_BINS: usize = 32;

/// The request verbs with a dedicated latency histogram, in wire order.
pub const VERBS: [&str; 7] = [
    "parse", "analyze", "optimize", "synth", "simulate", "trace", "stats",
];

/// The analysis engines with a dedicated latency histogram (resolved
/// engines only — `auto` records under whatever it resolved to; the
/// Monte-Carlo `simulate` engine records its sweep time here too).
pub const ENGINES: [&str; 7] = [
    "na",
    "dfg",
    "lti",
    "symbolic",
    "cartesian",
    "simulate",
    "trace",
];

/// The named connection-lifecycle and request counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Connections accepted onto the event loop.
    Accepted,
    /// Connections refused at `--max-conns` capacity (answered with a
    /// one-line JSON error, then closed).
    Rejected,
    /// Times a connection's reads were paused because its write queue
    /// exceeded the cap (slow-client backpressure engaged; counted once
    /// per pause, not per byte).
    Backpressured,
    /// Connections evicted by the idle timeout.
    TimedOut,
    /// Connections that finished their in-flight work and flushed
    /// during a graceful drain.
    Drained,
    /// Connections closed for any reason (peer EOF, error, eviction —
    /// every accepted connection ends up here exactly once).
    Closed,
    /// Request lines received (counted on receipt, before execution —
    /// includes requests refused while draining or over-long).
    Requests,
    /// Responses with `"ok": false` (malformed, refused, failed).
    Errors,
    /// Requests that overran their execution deadline and were answered
    /// with the structured `deadline exceeded` error (also counted in
    /// `errors`).
    Timeouts,
    /// Requests stopped by a cancellation flag, answered with `request
    /// cancelled` (also counted in `errors`).
    Cancelled,
    /// Request executions that panicked; the worker survived and the
    /// peer got an `internal error` response (also counted in `errors`).
    Panics,
}

/// All counters, in the order they serialize.
pub const COUNTERS: [Counter; 11] = [
    Counter::Accepted,
    Counter::Rejected,
    Counter::Backpressured,
    Counter::TimedOut,
    Counter::Drained,
    Counter::Closed,
    Counter::Requests,
    Counter::Errors,
    Counter::Timeouts,
    Counter::Cancelled,
    Counter::Panics,
];

impl Counter {
    /// The counter's wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Counter::Accepted => "accepted",
            Counter::Rejected => "rejected",
            Counter::Backpressured => "backpressured",
            Counter::TimedOut => "timed_out",
            Counter::Drained => "drained",
            Counter::Closed => "closed",
            Counter::Requests => "requests",
            Counter::Errors => "errors",
            Counter::Timeouts => "timeouts",
            Counter::Cancelled => "cancelled",
            Counter::Panics => "panics",
        }
    }

    fn index(self) -> usize {
        match self {
            Counter::Accepted => 0,
            Counter::Rejected => 1,
            Counter::Backpressured => 2,
            Counter::TimedOut => 3,
            Counter::Drained => 4,
            Counter::Closed => 5,
            Counter::Requests => 6,
            Counter::Errors => 7,
            Counter::Timeouts => 8,
            Counter::Cancelled => 9,
            Counter::Panics => 10,
        }
    }
}

/// A fixed-bin, lock-free latency histogram (µs, log₂-spaced bins).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    bins: [AtomicU64; N_BINS],
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
}

/// Inclusive lower µs boundary of bin `i` (`2^i − 1`).
#[must_use]
pub fn bin_lo(i: usize) -> u64 {
    (1u64 << i) - 1
}

/// Exclusive upper µs boundary of bin `i` (`2^(i+1) − 1`); the last bin
/// is open-ended and reports `u64::MAX`.
#[must_use]
pub fn bin_hi(i: usize) -> u64 {
    if i + 1 >= N_BINS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// The bin a latency falls into: `floor(log2(us + 1))`, clamped to the
/// overflow bin.
fn bin_index(us: u64) -> usize {
    let shifted = us.saturating_add(1);
    ((63 - shifted.leading_zeros()) as usize).min(N_BINS - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    pub fn record(&self, us: u64) {
        self.bins[bin_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram (bins may be mid-update
    /// relative to each other; totals are used only for estimation).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut bins = [0u64; N_BINS];
        for (slot, bin) in bins.iter_mut().zip(&self.bins) {
            *slot = bin.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            bins,
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`LatencyHistogram`] for estimation and
/// serialization.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bin observation counts.
    pub bins: [u64; N_BINS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies, µs.
    pub total_us: u64,
    /// Largest observed latency, µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0 < q ≤ 1`) in µs by linear
    /// interpolation within the containing bin, clamped to the observed
    /// maximum. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count == 1 {
            // A single observation is its own every-quantile; the
            // general interpolation below would report a latency from
            // inside the containing bin that was never observed
            // (p50 of one `record(100)` came out as 81.5 µs).
            return self.max_us as f64;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                let lo = bin_lo(i) as f64;
                // No sample exceeds the observed maximum, so every
                // bin's interpolation range tops out there — this is
                // what keeps the highest populated bin (which the data
                // only partially fills) and the open-ended overflow bin
                // from estimating past real latencies.
                let hi = if bin_hi(i) == u64::MAX {
                    self.max_us as f64
                } else {
                    (bin_hi(i).min(self.max_us)) as f64
                };
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                let est = lo + frac * (hi - lo).max(0.0);
                return est.min(self.max_us as f64);
            }
            cum = next;
        }
        self.max_us as f64
    }

    /// Serializes the snapshot: totals, p50/p90/p99 estimates, and the
    /// non-empty bins (`[lo_us, hi_us)` plus count — empty bins are
    /// omitted to keep `stats` responses compact).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let bins: Vec<Json> = self
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::Obj(vec![
                    (
                        "lo_us".into(),
                        Json::int(usize::try_from(bin_lo(i)).unwrap_or(usize::MAX)),
                    ),
                    (
                        "hi_us".into(),
                        // The overflow bin's open end serializes as null.
                        if bin_hi(i) == u64::MAX {
                            Json::Null
                        } else {
                            Json::int(usize::try_from(bin_hi(i)).unwrap_or(usize::MAX))
                        },
                    ),
                    (
                        "count".into(),
                        Json::int(usize::try_from(c).unwrap_or(usize::MAX)),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "count".into(),
                Json::int(usize::try_from(self.count).unwrap_or(usize::MAX)),
            ),
            (
                "total_us".into(),
                Json::int(usize::try_from(self.total_us).unwrap_or(usize::MAX)),
            ),
            (
                "max_us".into(),
                Json::int(usize::try_from(self.max_us).unwrap_or(usize::MAX)),
            ),
            ("p50_us".into(), Json::Num(self.quantile(0.50))),
            ("p90_us".into(), Json::Num(self.quantile(0.90))),
            ("p99_us".into(), Json::Num(self.quantile(0.99))),
            ("bins".into(), Json::Arr(bins)),
        ])
    }
}

/// The server's stats registry: one instance shared (behind an `Arc`)
/// by the reactor, the worker threads, and every request handler.
#[derive(Debug)]
pub struct StatsRegistry {
    counters: [AtomicU64; COUNTERS.len()],
    verbs: [LatencyHistogram; VERBS.len()],
    engines: [LatencyHistogram; ENGINES.len()],
    /// Requests currently executing (gauge, not a counter): bumped by
    /// [`StatsRegistry::begin_request`], decremented when its guard
    /// drops — including during a panic unwind, so the gauge reconciles
    /// to zero after every fault.
    in_flight: AtomicU64,
    /// When this registry was created (serves as the server's start
    /// time for `uptime_us`).
    started: Instant,
}

impl Default for StatsRegistry {
    fn default() -> Self {
        StatsRegistry {
            counters: Default::default(),
            verbs: Default::default(),
            engines: Default::default(),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
        }
    }
}

/// Decrements the registry's in-flight gauge on drop; returned by
/// [`StatsRegistry::begin_request`]. Drop runs during panic unwinds
/// too, so a crashed request never leaks a gauge increment.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    registry: &'a StatsRegistry,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.registry.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

impl StatsRegistry {
    /// A zeroed registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one request as executing until the returned guard drops.
    #[must_use]
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { registry: self }
    }

    /// Requests currently executing.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Microseconds since this registry was created.
    #[must_use]
    pub fn uptime_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Increments a counter by one.
    pub fn bump(&self, c: Counter) {
        self.counters[c.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    #[must_use]
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Records one handled request against its verb's histogram.
    /// Unknown verbs (the `unknown cmd` error path) have no histogram —
    /// they are visible in the `requests`/`errors` counters.
    pub fn record_verb(&self, verb: &str, us: u64) {
        if let Some(i) = VERBS.iter().position(|v| *v == verb) {
            self.verbs[i].record(us);
        }
    }

    /// Records one completed analysis against the *resolved* engine's
    /// histogram (`auto` never appears here).
    pub fn record_engine(&self, engine: &str, us: u64) {
        if let Some(i) = ENGINES.iter().position(|e| *e == engine) {
            self.engines[i].record(us);
        }
    }

    /// A verb's histogram, for tests and reporting.
    #[must_use]
    pub fn verb(&self, verb: &str) -> Option<&LatencyHistogram> {
        VERBS
            .iter()
            .position(|v| *v == verb)
            .map(|i| &self.verbs[i])
    }

    /// An engine's histogram, for tests and reporting.
    #[must_use]
    pub fn engine(&self, engine: &str) -> Option<&LatencyHistogram> {
        ENGINES
            .iter()
            .position(|e| *e == engine)
            .map(|i| &self.engines[i])
    }

    /// The full registry as JSON: the `counters` object plus per-verb
    /// and per-engine histogram snapshots (only verbs/engines that have
    /// recorded at least one observation appear).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let counters = COUNTERS
            .iter()
            .map(|&c| {
                (
                    c.as_str().to_string(),
                    Json::int(usize::try_from(self.get(c)).unwrap_or(usize::MAX)),
                )
            })
            .collect();
        let verbs = VERBS
            .iter()
            .zip(&self.verbs)
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(name, h)| ((*name).to_string(), h.snapshot().to_json()))
            .collect();
        let engines = ENGINES
            .iter()
            .zip(&self.engines)
            .filter(|(_, h)| h.count.load(Ordering::Relaxed) > 0)
            .map(|(name, h)| ((*name).to_string(), h.snapshot().to_json()))
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            (
                // A gauge, not a counter: requests executing right now.
                // A `stats` request sees at least itself here.
                "in_flight".into(),
                Json::int(usize::try_from(self.in_flight()).unwrap_or(usize::MAX)),
            ),
            (
                "uptime_us".into(),
                Json::int(usize::try_from(self.uptime_us()).unwrap_or(usize::MAX)),
            ),
            ("verbs".into(), Json::Obj(verbs)),
            ("engines".into(), Json::Obj(engines)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact `q`-quantile of a sorted sample under the same
    /// definition the estimator targets: the smallest value with
    /// cumulative rank ≥ `q·n`.
    fn exact_quantile(sorted: &[u64], q: f64) -> f64 {
        let target = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[target.min(sorted.len()) - 1] as f64
    }

    #[test]
    fn bin_boundaries_tile_the_axis_without_gaps() {
        assert_eq!(bin_lo(0), 0);
        for i in 0..N_BINS - 1 {
            assert_eq!(bin_hi(i), bin_lo(i + 1), "bin {i} must abut bin {}", i + 1);
            assert!(bin_hi(i) > bin_lo(i));
        }
        assert_eq!(bin_hi(N_BINS - 1), u64::MAX);
        // Every boundary value lands in the bin whose range contains it.
        for us in [0u64, 1, 2, 3, 6, 7, 1000, 1_000_000] {
            let i = bin_index(us);
            assert!(bin_lo(i) <= us && us < bin_hi(i), "{us} µs in bin {i}");
        }
    }

    #[test]
    fn quantiles_on_uniform_data_interpolate_to_near_exact_values() {
        // 1..=100_000 µs, one observation each: mass inside every bin is
        // uniform, which is exactly the estimator's interpolation
        // assumption, so estimates must land very close to the truth.
        let h = LatencyHistogram::new();
        let values: Vec<u64> = (1..=100_000).collect();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.50, 0.90, 0.99] {
            let exact = exact_quantile(&values, q);
            let est = snap.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(
                rel < 0.02,
                "q={q}: estimate {est} vs exact {exact} (rel err {rel})"
            );
        }
    }

    #[test]
    fn quantiles_on_a_point_mass_stay_inside_the_containing_bin() {
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(100);
        }
        let snap = h.snapshot();
        let i = bin_index(100);
        for q in [0.5, 0.9, 0.99] {
            let est = snap.quantile(q);
            assert!(
                est >= bin_lo(i) as f64 && est <= 100.0,
                "q={q}: {est} outside [{}, 100]",
                bin_lo(i)
            );
        }
        // The estimate never exceeds the observed maximum.
        assert!(snap.quantile(1.0) <= 100.0);
    }

    #[test]
    fn quantiles_on_a_bimodal_split_separate_the_modes() {
        // 90 fast requests (~10 µs), 10 slow (~80 ms): p50 must report
        // the fast mode, p99 the slow one.
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(80_000);
        }
        let snap = h.snapshot();
        assert!(snap.quantile(0.5) < 20.0, "p50 {}", snap.quantile(0.5));
        assert!(
            snap.quantile(0.99) > 60_000.0,
            "p99 {}",
            snap.quantile(0.99)
        );
    }

    #[test]
    fn quantiles_are_monotone_and_clamped_to_max() {
        let h = LatencyHistogram::new();
        let mut state = 0x5EED_u64;
        let mut max = 0;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (state >> 40) % 1_000_000;
            max = max.max(v);
            h.record(v);
        }
        let snap = h.snapshot();
        let (p50, p90, p99) = (
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= max as f64);
        assert_eq!(snap.max_us, max);
    }

    #[test]
    fn zero_duration_observations_land_in_bin_zero() {
        // A sub-microsecond request records `0` — the `saturating_add(1)`
        // shift maps it into bin 0 ([0, 1)), not an underflowed index.
        let h = LatencyHistogram::new();
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.bins[0], 1);
        assert_eq!(snap.count, 1);
        assert_eq!(snap.total_us, 0);
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.quantile(0.99), 0.0);
    }

    #[test]
    fn single_sample_quantiles_report_the_observed_value_exactly() {
        // With one observation every quantile IS that observation; the
        // in-bin interpolation must not fabricate a smaller latency.
        for v in [0u64, 1, 100, 12_345, 80_000] {
            let h = LatencyHistogram::new();
            h.record(v);
            let snap = h.snapshot();
            assert_eq!(snap.quantile(0.5), v as f64, "p50 of one record({v})");
            assert_eq!(snap.quantile(0.99), v as f64, "p99 of one record({v})");
            assert_eq!(snap.max_us, v);
        }
    }

    #[test]
    fn empty_and_overflow_histograms_do_not_panic() {
        let h = LatencyHistogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0.0);
        h.record(u64::MAX - 1); // overflow bin, saturating_add inside
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.bins[N_BINS - 1], 1);
        assert!(snap.quantile(0.5) <= snap.max_us as f64);
    }

    #[test]
    fn registry_records_by_name_and_serializes_nonempty_series_only() {
        let r = StatsRegistry::new();
        r.bump(Counter::Accepted);
        r.bump(Counter::Requests);
        r.bump(Counter::Requests);
        r.record_verb("analyze", 1500);
        r.record_verb("analyze", 2500);
        r.record_verb("nonsense", 1); // silently ignored
        r.record_engine("lti", 900);
        assert_eq!(r.get(Counter::Requests), 2);
        assert_eq!(r.verb("analyze").unwrap().snapshot().count, 2);
        assert!(r.verb("nonsense").is_none());

        let json = r.to_json();
        let counters = json.get("counters").unwrap();
        assert_eq!(counters.get("accepted").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("requests").and_then(Json::as_f64), Some(2.0));
        let verbs = json.get("verbs").unwrap();
        assert!(verbs.get("analyze").is_some());
        assert!(verbs.get("parse").is_none(), "empty series are omitted");
        let analyze = verbs.get("analyze").unwrap();
        assert_eq!(analyze.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(analyze.get("total_us").and_then(Json::as_f64), Some(4000.0));
        assert!(analyze.get("p99_us").and_then(Json::as_f64).unwrap() >= 1500.0);
        assert!(json.get("engines").unwrap().get("lti").is_some());
    }

    #[test]
    fn in_flight_gauge_and_fault_counters_reconcile() {
        let r = StatsRegistry::new();
        assert_eq!(r.in_flight(), 0);
        {
            let _a = r.begin_request();
            let _b = r.begin_request();
            assert_eq!(r.in_flight(), 2);
        }
        assert_eq!(r.in_flight(), 0);
        // The guard decrements during a panic unwind too.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = r.begin_request();
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(r.in_flight(), 0);

        r.bump(Counter::Timeouts);
        r.bump(Counter::Cancelled);
        r.bump(Counter::Panics);
        let json = r.to_json();
        let counters = json.get("counters").unwrap();
        assert_eq!(counters.get("timeouts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("cancelled").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("panics").and_then(Json::as_f64), Some(1.0));
        assert_eq!(json.get("in_flight").and_then(Json::as_f64), Some(0.0));
        assert!(json.get("uptime_us").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = StatsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for k in 0..1000u64 {
                        r.record_verb("synth", k);
                        r.bump(Counter::Requests);
                    }
                });
            }
        });
        assert_eq!(r.get(Counter::Requests), 8000);
        let snap = r.verb("synth").unwrap().snapshot();
        assert_eq!(snap.count, 8000);
        assert_eq!(snap.bins.iter().sum::<u64>(), 8000);
    }
}
