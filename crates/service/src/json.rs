//! A minimal JSON document model, serializer, and parser.
//!
//! The workspace has no serde (offline build — see `shims/README.md`).
//! The CLI *emits* JSON and the server *round-trips* it, so a tiny value
//! tree, a writer, and a recursive-descent reader are the whole
//! requirement. Output is deterministic: object keys keep insertion
//! order. [`Json::to_compact`] writes the single-line form the wire
//! protocol requires; `Display` keeps the pretty form the CLI has always
//! printed.
//!
//! This module used to live in `crates/cli`; it moved here so the service
//! layer can answer protocol requests with the exact same writer, and the
//! CLI re-exports it unchanged.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for integer counts.
    #[must_use]
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A `[lo, hi]` pair.
    #[must_use]
    pub fn pair(lo: f64, hi: f64) -> Json {
        Json::Arr(vec![Json::Num(lo), Json::Num(hi)])
    }

    /// Field lookup on an object (first match; `None` on non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The single-line serialization used by the wire protocol (one
    /// response per line ⇒ no interior newlines, no indentation).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) if !v.is_finite() => out.push_str("null"),
            Json::Num(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                let _ = write!(out, "{}", Escaped(s));
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (k, (key, value)) in fields.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}", Escaped(key));
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document, requiring it to span the whole input
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if !v.is_finite() => f.write_str("null"),
            Json::Num(v) => write!(f, "{v}"),
            Json::Str(s) => write!(f, "{}", Escaped(s)),
            Json::Arr(items) if items.is_empty() => f.write_str("[]"),
            Json::Arr(items) => {
                // Scalar-only arrays print on one line.
                if items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)))
                {
                    f.write_str("[")?;
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            f.write_str(", ")?;
                        }
                        item.write(f, indent)?;
                    }
                    return f.write_str("]");
                }
                f.write_str("[\n")?;
                for (k, item) in items.iter().enumerate() {
                    write!(f, "{}", "  ".repeat(indent + 1))?;
                    item.write(f, indent + 1)?;
                    if k + 1 < items.len() {
                        f.write_str(",")?;
                    }
                    f.write_str("\n")?;
                }
                write!(f, "{}]", "  ".repeat(indent))
            }
            Json::Obj(fields) if fields.is_empty() => f.write_str("{}"),
            Json::Obj(fields) => {
                f.write_str("{\n")?;
                for (k, (key, value)) in fields.iter().enumerate() {
                    write!(f, "{}", "  ".repeat(indent + 1))?;
                    write!(f, "{}", Escaped(key))?;
                    f.write_str(": ")?;
                    value.write(f, indent + 1)?;
                    if k + 1 < fields.len() {
                        f.write_str(",")?;
                    }
                    f.write_str("\n")?;
                }
                write!(f, "{}}}", "  ".repeat(indent))
            }
        }
    }
}

/// A string in its escaped, quoted JSON form.
struct Escaped<'a>(&'a str);

impl fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("\"")?;
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write(f, 0)
    }
}

/// The deepest container nesting the parser accepts. The reader recurses
/// per level, and the wire protocol feeds it untrusted TCP input: without
/// a bound, a 1 MiB line of `[[[[…` overflows the handler thread's stack,
/// which aborts the whole process. Real requests nest a handful of
/// levels.
const MAX_DEPTH: usize = 128;

/// Recursive-descent reader over the raw bytes (JSON's structural
/// characters are all ASCII; string contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    /// Depth accounting for both container forms; a failed parse aborts
    /// outright, so only success paths unwind the counter.
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ))
        } else {
            Ok(())
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            // Combine a surrogate pair when a low
                            // surrogate follows; lone surrogates become
                            // U+FFFD and a non-surrogate second escape is
                            // rewound so it decodes on its own.
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                let mark = self.pos;
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&lo) {
                                        let code = 0x10000
                                            + ((u32::from(hi) - 0xd800) << 10)
                                            + (u32::from(lo) - 0xdc00);
                                        char::from_u32(code).unwrap_or('\u{fffd}')
                                    } else {
                                        self.pos = mark;
                                        '\u{fffd}'
                                    }
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(u32::from(hi)).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let v = u16::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_nesting() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("fir")),
            ("ok".into(), Json::Bool(true)),
            ("bits".into(), Json::int(8)),
            ("support".into(), Json::pair(-0.5, 0.5)),
            ("nested".into(), Json::Obj(vec![("x".into(), Json::Null)])),
        ]);
        let text = doc.to_string();
        assert!(text.contains("\"name\": \"fir\""));
        assert!(text.contains("\"support\": [-0.5, 0.5]"));
        assert!(text.contains("\"x\": null"));
    }

    #[test]
    fn strings_are_escaped() {
        let s = Json::str("a\"b\\c\nd");
        assert_eq!(s.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn output_is_valid_enough_to_hand_check() {
        let doc = Json::Arr(vec![
            Json::Obj(vec![("k".into(), Json::int(1))]),
            Json::Obj(vec![("k".into(), Json::int(2))]),
        ]);
        let text = doc.to_string();
        assert_eq!(text.matches("\"k\"").count(), 2);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with(']'));
    }

    #[test]
    fn compact_form_is_single_line() {
        let doc = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("xs".into(), Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("s".into(), Json::str("a\nb")),
        ]);
        assert_eq!(
            doc.to_compact(),
            "{\"ok\":true,\"xs\":[1,2],\"s\":\"a\\nb\"}"
        );
        assert!(!doc.to_compact().contains('\n'));
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::int(7)),
            ("cmd".into(), Json::str("analyze")),
            ("neg".into(), Json::Num(-1.25e-3)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(false), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::str("v"))]),
            ),
        ]);
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed, doc);
        // The pretty form parses too.
        assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let parsed = Json::parse(r#"{"s":"a\n\"Aé😀"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "a\n\"Aé😀");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"n\": 1e}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth_instead_of_overflowing_the_stack() {
        // An adversarial line of `[[[[…` must produce an error, not
        // recurse once per byte until the thread's stack overflows
        // (which would abort the whole server).
        let deep = "[".repeat(1 << 20);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let objs = "{\"k\":".repeat(1 << 18);
        assert!(Json::parse(&objs).unwrap_err().contains("nesting"));

        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn surrogate_escapes_decode_pairs_and_replace_lone_halves() {
        // A proper pair decodes to the astral code point.
        let parsed = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("😀"));
        // A high surrogate followed by a non-surrogate escape: U+FFFD,
        // then the second escape decodes on its own (the unchecked
        // `lo - 0xdc00` used to underflow here).
        let parsed = Json::parse(r#""\ud800\u0041""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{fffd}A"));
        // Lone halves — trailing, unescaped follower, or low-first —
        // become U+FFFD.
        assert_eq!(
            Json::parse(r#""\ud800""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        assert_eq!(
            Json::parse(r#""\ud800A""#).unwrap().as_str(),
            Some("\u{fffd}A")
        );
        assert_eq!(
            Json::parse(r#""\udc00""#).unwrap().as_str(),
            Some("\u{fffd}")
        );
        // High surrogate, then a complete pair: the stray one is
        // replaced, the pair still combines.
        let parsed = Json::parse(r#""\ud800\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("\u{fffd}😀"));
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, true, "x"]}, "n": 2.5}"#).unwrap();
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(2.5));
        let arr = match doc.get("a").unwrap().get("b").unwrap() {
            Json::Arr(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
