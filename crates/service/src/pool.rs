//! A std-only fan-out worker pool with deterministic, input-ordered
//! result collection.
//!
//! The build environment has no network and therefore no tokio; plain
//! `std::thread` + channels cover the whole requirement. Workers pull job
//! indices from a shared atomic cursor (cheap dynamic load balancing —
//! a slow file does not stall its neighbours) and send `(index, result)`
//! pairs back over an mpsc channel; the caller reassembles them in input
//! order, so batch output is byte-stable regardless of scheduling.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// The default worker count: available hardware parallelism, with a
/// fallback of 1 when the platform cannot report it.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(index, job)` for every job on up to `n_threads` workers and
/// returns the results in input order.
///
/// `n_threads` is clamped to `[1, jobs.len()]`; with one worker (or one
/// job) everything runs on a single spawned thread, which keeps the
/// execution path identical in shape whatever the parallelism. Panics in
/// `f` propagate out of the scope, so a poisoned job does not silently
/// drop its result.
pub fn run_ordered<J, R, F>(jobs: Vec<J>, n_threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let total = jobs.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = n_threads.clamp(1, total);
    // Jobs live in per-slot `Mutex<Option<J>>`s so any worker can take
    // ownership of any job by index without unsafe code.
    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let slots = &slots;
    let cursor = &cursor;
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot lock")
                    .take()
                    .expect("each index is claimed once");
                // A send can only fail if the receiver is gone, which
                // means the scope is already unwinding from a panic.
                let _ = tx.send((i, f(i, job)));
            });
        }
        drop(tx);

        let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
        for (i, result) in rx {
            out[i] = Some(result);
        }
        out.into_iter()
            .map(|r| r.expect("every job reported"))
            .collect()
    })
}

/// The long-lived sibling of [`run_ordered`]: a fixed set of worker
/// threads draining one shared job channel for the lifetime of the
/// pool. This is what the server's event loop hands request execution
/// to — the reactor thread only frames I/O, workers run the verbs.
///
/// Jobs are `FnOnce` units pulled from a `Mutex<Receiver>` (the same
/// no-tokio constraint as [`run_ordered`]: plain threads + channels).
/// Dropping the pool closes the channel and joins every worker, so
/// shutdown is deterministic — no detached threads survive the owner.
///
/// Job execution is **panic-isolated**: a `run` that panics is caught
/// with `catch_unwind`, counted in [`WorkerPool::panics`], and the
/// worker thread goes back to pulling jobs. One poisoned request can
/// therefore never shrink the pool or stall the queue. Callers that
/// must deliver a response even for a crashed job should arrange it via
/// a drop guard inside `run` (the server's event loop does exactly
/// that) — the pool itself only guarantees worker survival.
pub struct WorkerPool<J: Send + 'static> {
    tx: Option<mpsc::Sender<J>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads (at least one), each running `run` on
    /// every job it pulls.
    pub fn new<F>(workers: usize, run: F) -> Self
    where
        F: Fn(J) + Send + Sync + 'static,
    {
        let (tx, rx) = mpsc::channel::<J>();
        let rx = Arc::new(Mutex::new(rx));
        let run = Arc::new(run);
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let run = Arc::clone(&run);
                let panics = Arc::clone(&panics);
                std::thread::spawn(move || loop {
                    // Hold the lock only for the recv: a slow job must
                    // not serialize the other workers' pulls.
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break, // a worker panicked mid-recv
                    };
                    match job {
                        // AssertUnwindSafe: the worker never touches the
                        // closure's captures again on the panic path, and
                        // shared state (registry counters, completion
                        // queue) is either atomic or behind a Mutex whose
                        // poisoning its users handle.
                        Ok(job) => {
                            if catch_unwind(AssertUnwindSafe(|| run(job))).is_err() {
                                panics.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => break, // channel closed: pool dropped
                    }
                })
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
            panics,
        }
    }

    /// Enqueues one job. Returns `false` if the pool is already shut
    /// down (never happens while the pool is alive).
    pub fn submit(&self, job: J) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(job).is_ok())
    }

    /// Jobs whose `run` panicked (each one was caught; the worker
    /// survived).
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop; joining
        // makes `drop(pool)` a synchronization point (all in-flight
        // jobs finished).
        self.tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        // Reverse sleep times so completion order is the reverse of input
        // order; collection must still be input-ordered.
        let jobs: Vec<u64> = (0..8).rev().collect();
        let out = run_ordered(jobs.clone(), 4, |_, ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, jobs);
    }

    #[test]
    fn one_thread_and_empty_inputs_work() {
        assert_eq!(
            run_ordered(Vec::<u32>::new(), 4, |_, j| j),
            Vec::<u32>::new()
        );
        assert_eq!(run_ordered(vec![1, 2, 3], 1, |i, j| (i, j)).len(), 3);
        // More threads than jobs clamps quietly.
        assert_eq!(run_ordered(vec![5], 64, |_, j| j * 2), vec![10]);
    }

    #[test]
    fn every_index_is_seen_exactly_once() {
        let n = 100;
        let out = run_ordered((0..n).collect::<Vec<_>>(), 8, |i, j| {
            assert_eq!(i, j);
            i
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_pool_runs_every_job_and_joins_on_drop() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new(4, move |n: usize| {
                // Tiny stagger so jobs genuinely interleave on workers.
                if n.is_multiple_of(7) {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        };
        for n in 0..200 {
            assert!(pool.submit(n));
        }
        drop(pool); // joins: every submitted job has run
        assert_eq!(done.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            // One worker: if the panic killed it, every later job would
            // hang in the channel and drop(pool) would lose them.
            WorkerPool::new(1, move |n: usize| {
                if n == 3 || n == 7 {
                    panic!("injected job failure");
                }
                done.fetch_add(1, Ordering::Relaxed);
            })
        };
        for n in 0..10 {
            assert!(pool.submit(n));
        }
        while done.load(Ordering::Relaxed) < 8 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(pool.panics(), 2);
        drop(pool); // joins cleanly: the worker survived both panics
    }

    #[test]
    fn worker_pool_clamps_zero_workers_to_one() {
        let done = Arc::new(AtomicUsize::new(0));
        let pool = {
            let done = Arc::clone(&done);
            WorkerPool::new(0, move |_: ()| {
                done.fetch_add(1, Ordering::Relaxed);
            })
        };
        pool.submit(());
        drop(pool);
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
