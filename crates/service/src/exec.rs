//! Request execution: one function per verb (`parse` is pure shaping and
//! lives with the protocol; `analyze`, `optimize`, `synth` live here),
//! shared between the CLI subcommands and the server loop so both front
//! ends produce identical numbers — and identical JSON — for the same
//! request.
//!
//! Everything here takes a [`CompiledEntry`] (whose [`Session`] holds
//! the artifact chain) and plain parameter structs; errors are rendered
//! strings, which the CLI wraps in its exit-code-bearing error type and
//! the server ships in `"error"` fields.  Analysis requests go through
//! the unified `sna_core::engine` surface — this layer no longer
//! hand-rolls engine dispatch.

use sna_core::{
    AnalysisReport, AnalysisRequest, Budget, EngineKind, NoiseReport, Session, SimReport,
    SimRequest, SnaError, WlChoice,
};
use sna_hls::{synthesize, Implementation, SynthesisConstraints};
use sna_opt::{AnnealOptions, Evaluation, OptError, Optimizer};
use sna_trace::{Trace, TraceError, TraceLimits};

use crate::cache::CompiledEntry;
use crate::json::Json;

/// The analysis engine selector — the unified [`EngineKind`] from
/// `sna-core` (kept under its historical service-layer name).
pub type AnalyzeEngine = EngineKind;

/// Parameters of an `analyze` request, with the CLI's defaults.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeParams {
    /// Engine selector.
    pub engine: AnalyzeEngine,
    /// Uniform word length of the analyzed configuration.
    pub bits: u8,
    /// Histogram resolution.
    pub bins: usize,
}

impl Default for AnalyzeParams {
    fn default() -> Self {
        AnalyzeParams {
            engine: AnalyzeEngine::Auto,
            bits: 12,
            bins: 64,
        }
    }
}

/// Hard ceiling on histogram resolution. Several engines are quadratic
/// (or, for `cartesian`, exponential in the input count) in the bin
/// count, and the allocation itself must not be attacker-sized: one
/// huge-`bins` request through `sna serve` would otherwise abort the
/// whole process.
pub const MAX_BINS: usize = 4096;

/// Renders an analysis failure. Self-describing diagnostics keep their
/// exact wording; everything else gets the generic prefix. The budget
/// overruns pass through verbatim — the protocol layer classifies
/// responses into the `timeouts`/`cancelled` counters by matching the
/// exact strings `deadline exceeded` and `request cancelled`.
fn render_analysis_error(e: &SnaError) -> String {
    match e {
        SnaError::CombinationalOnly { .. }
        | SnaError::InvalidInput { .. }
        | SnaError::DeadlineExceeded
        | SnaError::Cancelled => e.to_string(),
        other => format!("analysis failed: {other}"),
    }
}

/// Runs an analysis request against a compiled entry through the unified
/// `Session`/`Engine` surface, returning the full structured report
/// (provenance + timing included).
///
/// # Errors
///
/// Engine or configuration failures, rendered; `bins` outside
/// `1..=`[`MAX_BINS`] is rejected up front.
pub fn analyze_report(
    entry: &CompiledEntry,
    params: &AnalyzeParams,
) -> Result<AnalysisReport, String> {
    analyze_report_budgeted(entry, params, &Budget::unlimited())
}

/// [`analyze_report`] under a cooperative execution [`Budget`]: an
/// overrun stops the engine at its next checkpoint and renders the
/// structured `deadline exceeded` / `request cancelled` error.
///
/// # Errors
///
/// Same as [`analyze_report`], plus the budget overruns.
pub fn analyze_report_budgeted(
    entry: &CompiledEntry,
    params: &AnalyzeParams,
    budget: &Budget,
) -> Result<AnalysisReport, String> {
    let AnalyzeParams { engine, bits, bins } = *params;
    if bins == 0 || bins > MAX_BINS {
        return Err(format!("bins must be in 1..={MAX_BINS}, got {bins}"));
    }
    let req = AnalysisRequest {
        engine,
        words: WlChoice::Uniform(bits),
        bins,
        include_pdf: true,
        budget: budget.clone(),
    };
    entry
        .session
        .analyze(&req)
        .map_err(|e| render_analysis_error(&e))
}

/// [`analyze_report`] reduced to the per-output reports — the historical
/// shape most callers want.
///
/// # Errors
///
/// Same as [`analyze_report`].
pub fn analyze(
    entry: &CompiledEntry,
    params: &AnalyzeParams,
) -> Result<Vec<(String, NoiseReport)>, String> {
    analyze_report(entry, params).map(|r| r.reports)
}

/// Hard ceiling on Monte-Carlo sample paths per request. Simulation
/// cost is `paths × steps`; like [`MAX_BINS`], an untrusted peer must
/// not be able to size the server's work arbitrarily.
pub const MAX_PATHS: usize = 4_000_000;

/// Hard ceiling on steps per sample path (same rationale).
pub const MAX_STEPS: usize = 4096;

/// Parameters of a `simulate` request, with the CLI's defaults.
#[derive(Clone, Copy, Debug)]
pub struct SimulateParams {
    /// Uniform word length of the simulated configuration.
    pub bits: u8,
    /// Bins of the empirical error histogram.
    pub bins: usize,
    /// Independent Monte-Carlo sample paths.
    pub paths: usize,
    /// RNG seed (the report is a pure function of request + seed).
    pub seed: u64,
    /// Steps per path; `None` = 1 combinational / 64 sequential.
    pub steps: Option<usize>,
    /// Warmup steps discarded per path; `None` = 0 / 16.
    pub warmup: Option<usize>,
    /// Worker threads (0 = available parallelism); wall-clock only,
    /// never the numbers.
    pub workers: usize,
}

impl Default for SimulateParams {
    fn default() -> Self {
        SimulateParams {
            bits: 12,
            bins: 64,
            paths: 100_000,
            seed: 0x5eed_cafe,
            steps: None,
            warmup: None,
            workers: 0,
        }
    }
}

/// Runs a Monte-Carlo simulation request against a compiled entry — the
/// empirical cross-check of the analytic engines, through the session's
/// cached bytecode program.
///
/// # Errors
///
/// Configuration and simulation failures, rendered; `bins`, `paths`,
/// and `steps` outside their ceilings are rejected up front.
pub fn simulate(entry: &CompiledEntry, params: &SimulateParams) -> Result<SimReport, String> {
    simulate_budgeted(entry, params, &Budget::unlimited())
}

/// [`simulate`] under a cooperative execution [`Budget`]: the VM checks
/// it before every Monte-Carlo chunk claim, so an overrun request stops
/// within one chunk's work and renders the structured `deadline
/// exceeded` / `request cancelled` error.
///
/// # Errors
///
/// Same as [`simulate`], plus the budget overruns.
pub fn simulate_budgeted(
    entry: &CompiledEntry,
    params: &SimulateParams,
    budget: &Budget,
) -> Result<SimReport, String> {
    let SimulateParams {
        bits,
        bins,
        paths,
        seed,
        steps,
        warmup,
        workers,
    } = *params;
    if bins == 0 || bins > MAX_BINS {
        return Err(format!("bins must be in 1..={MAX_BINS}, got {bins}"));
    }
    if paths == 0 || paths > MAX_PATHS {
        return Err(format!("paths must be in 1..={MAX_PATHS}, got {paths}"));
    }
    if let Some(s) = steps {
        if s == 0 || s > MAX_STEPS {
            return Err(format!("steps must be in 1..={MAX_STEPS}, got {s}"));
        }
        if warmup.unwrap_or(0) >= s {
            return Err(format!(
                "warmup must be below steps ({}, got {})",
                s,
                warmup.unwrap_or(0)
            ));
        }
    }
    let req = SimRequest {
        words: WlChoice::Uniform(bits),
        paths,
        seed,
        steps,
        warmup,
        workers,
        bins,
        budget: budget.clone(),
    };
    entry.session.simulate(&req).map_err(|e| match e {
        // Pass budget overruns through verbatim for the protocol layer's
        // exact-string classification.
        SnaError::DeadlineExceeded | SnaError::Cancelled => e.to_string(),
        other => format!("simulation failed: {other}"),
    })
}

/// A [`SimReport`] as JSON fields — the body shared by the CLI's
/// `simulate --format json` and the server's `simulate` result, so both
/// front ends are byte-identical.
#[must_use]
pub fn simulate_json_fields(report: &SimReport, include_pdf: bool) -> Vec<(String, Json)> {
    let gap_json = |gap: &Option<sna_core::Gap>| match gap {
        Some(g) => Json::Obj(vec![
            ("abs".into(), Json::Num(g.abs)),
            ("rel".into(), g.rel.map_or(Json::Null, Json::Num)),
        ]),
        None => Json::Null,
    };
    vec![
        ("paths".into(), Json::int(report.paths)),
        ("steps".into(), Json::int(report.steps)),
        ("warmup".into(), Json::int(report.warmup)),
        ("seed".into(), Json::int(report.seed as usize)),
        (
            "predicted_by".into(),
            report
                .predicted_by
                .map_or(Json::Null, |k| Json::str(k.name())),
        ),
        (
            "elapsed_us".into(),
            Json::int(usize::try_from(report.elapsed.as_micros()).unwrap_or(usize::MAX)),
        ),
        (
            "outputs".into(),
            Json::Arr(
                report
                    .outputs
                    .iter()
                    .map(|out| {
                        Json::Obj(vec![
                            ("output".into(), Json::str(out.name.clone())),
                            ("samples".into(), Json::int(out.samples)),
                            (
                                "empirical".into(),
                                report_json(&out.name, &out.empirical, include_pdf),
                            ),
                            (
                                "predicted".into(),
                                out.predicted
                                    .as_ref()
                                    .map_or(Json::Null, |p| report_json(&out.name, p, include_pdf)),
                            ),
                            ("mean_gap".into(), gap_json(&out.mean_gap)),
                            ("variance_gap".into(), gap_json(&out.variance_gap)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

/// Hard ceiling on bytes of trace CSV ingested per request (same
/// rationale as [`MAX_PATHS`]: an untrusted peer must not size the
/// server's memory).
pub const MAX_TRACE_BYTES: usize = 1 << 24;

/// Hard ceiling on accepted trace rows per request (replay cost is
/// `rows × instructions`).
pub const MAX_TRACE_ROWS: usize = 1 << 20;

/// Parameters of a `trace` request, with the CLI's defaults.
#[derive(Clone, Copy, Debug)]
pub struct TraceParams {
    /// Uniform word length of the replayed configuration.
    pub bits: u8,
    /// Bins of the fitted input and empirical error histograms.
    pub bins: usize,
    /// Segment warmup rows; `None` = 0 combinational / 64 sequential.
    pub warmup: Option<usize>,
    /// Worker threads (0 = available parallelism); wall-clock only,
    /// never the numbers.
    pub workers: usize,
    /// Attempt the analytic prediction (the `report` verb); `false`
    /// replays without a model column (the `replay` verb).
    pub predict: bool,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            bits: 12,
            bins: 64,
            warmup: None,
            workers: 0,
            predict: true,
        }
    }
}

/// Streams a CSV trace bound to the session's input names, under the
/// given caps and with ingestion checked against the budget every few
/// hundred rows — the shared front door for the CLI verbs and the
/// server's `trace` verb.
///
/// # Errors
///
/// Structured ingestion failures, rendered; budget overruns keep their
/// exact `deadline exceeded` / `request cancelled` strings.
pub fn ingest_trace(
    csv: &str,
    session: &Session,
    limits: &TraceLimits,
    budget: &Budget,
) -> Result<Trace, String> {
    if csv.len() > limits.max_bytes {
        return Err(format!(
            "trace exceeds the byte cap ({} bytes)",
            limits.max_bytes
        ));
    }
    let cancelled = || !budget.is_unlimited() && budget.check().is_err();
    Trace::read_with(
        csv.as_bytes(),
        session.dfg().input_names(),
        limits,
        &cancelled,
    )
    .map_err(|e| match e {
        TraceError::Cancelled => budget.overrun_error().to_string(),
        other => format!("trace ingestion failed: {other}"),
    })
}

/// Fits per-input ranges and histograms from an ingested trace — the
/// `fit` verb, no replay.
///
/// # Errors
///
/// Binding or histogram failures, rendered; `bins` outside
/// `1..=`[`MAX_BINS`] is rejected up front.
pub fn trace_fit(
    session: &Session,
    trace: &Trace,
    bins: usize,
) -> Result<Vec<sna_core::TraceInputFit>, String> {
    if bins == 0 || bins > MAX_BINS {
        return Err(format!("bins must be in 1..={MAX_BINS}, got {bins}"));
    }
    session
        .fit_trace(trace, bins)
        .map_err(|e| format!("trace fit failed: {e}"))
}

/// Replays an ingested trace against a compiled entry — measured
/// output noise next to the analytic prediction under the fitted
/// ranges.
///
/// # Errors
///
/// Configuration and replay failures, rendered; `bins` and `warmup`
/// outside their ceilings are rejected up front.
pub fn trace_report(
    entry: &CompiledEntry,
    trace: &Trace,
    params: &TraceParams,
) -> Result<sna_core::TraceReport, String> {
    trace_report_budgeted(entry, trace, params, &Budget::unlimited())
}

/// [`trace_report`] under a cooperative execution [`Budget`]: the VM
/// checks it before every replay chunk claim, so an overrun request
/// stops within one chunk's work and renders the structured `deadline
/// exceeded` / `request cancelled` error.
///
/// # Errors
///
/// Same as [`trace_report`], plus the budget overruns.
pub fn trace_report_budgeted(
    entry: &CompiledEntry,
    trace: &Trace,
    params: &TraceParams,
    budget: &Budget,
) -> Result<sna_core::TraceReport, String> {
    let TraceParams {
        bits,
        bins,
        warmup,
        workers,
        predict,
    } = *params;
    if bins == 0 || bins > MAX_BINS {
        return Err(format!("bins must be in 1..={MAX_BINS}, got {bins}"));
    }
    if let Some(w) = warmup {
        if w > MAX_STEPS {
            return Err(format!("warmup must be at most {MAX_STEPS}, got {w}"));
        }
    }
    let req = sna_core::TraceRequest {
        words: WlChoice::Uniform(bits),
        bins,
        warmup,
        workers,
        predict,
        budget: budget.clone(),
    };
    entry.session.trace(trace, &req).map_err(|e| match e {
        // Pass budget overruns through verbatim for the protocol layer's
        // exact-string classification.
        SnaError::DeadlineExceeded | SnaError::Cancelled => e.to_string(),
        other => format!("trace replay failed: {other}"),
    })
}

/// Per-input trace fits as a JSON array (the shape shared by the CLI's
/// `trace --format json` verbs and the server's `trace` result).
#[must_use]
pub fn trace_fit_json(fit: &[sna_core::TraceInputFit], include_pdf: bool) -> Json {
    Json::Arr(
        fit.iter()
            .map(|f| {
                let mut fields = vec![
                    ("input".into(), Json::str(f.name.clone())),
                    ("samples".into(), Json::int(f.samples)),
                    ("mean".into(), Json::Num(f.mean)),
                    ("variance".into(), Json::Num(f.variance)),
                    ("range".into(), Json::pair(f.range.lo(), f.range.hi())),
                ];
                if include_pdf {
                    let h = &f.histogram;
                    fields.push((
                        "histogram".into(),
                        Json::Obj(vec![
                            ("bins".into(), Json::int(h.n_bins())),
                            ("lo".into(), Json::Num(h.grid().lo())),
                            ("hi".into(), Json::Num(h.grid().hi())),
                        ]),
                    ));
                }
                Json::Obj(fields)
            })
            .collect(),
    )
}

/// A [`sna_core::TraceReport`] as JSON fields — the body shared by the
/// CLI's `trace replay|report --format json` and the server's `trace`
/// result, so both front ends are byte-identical.
#[must_use]
pub fn trace_json_fields(report: &sna_core::TraceReport, include_pdf: bool) -> Vec<(String, Json)> {
    let gap_json = |gap: &Option<sna_core::Gap>| match gap {
        Some(g) => Json::Obj(vec![
            ("abs".into(), Json::Num(g.abs)),
            ("rel".into(), g.rel.map_or(Json::Null, Json::Num)),
        ]),
        None => Json::Null,
    };
    vec![
        ("rows".into(), Json::int(report.rows)),
        ("skipped".into(), Json::int(report.skipped)),
        ("warmup".into(), Json::int(report.warmup)),
        (
            "predicted_by".into(),
            report
                .predicted_by
                .map_or(Json::Null, |k| Json::str(k.name())),
        ),
        (
            "elapsed_us".into(),
            Json::int(usize::try_from(report.elapsed.as_micros()).unwrap_or(usize::MAX)),
        ),
        ("fit".into(), trace_fit_json(&report.fit, false)),
        (
            "outputs".into(),
            Json::Arr(
                report
                    .outputs
                    .iter()
                    .map(|out| {
                        Json::Obj(vec![
                            ("output".into(), Json::str(out.name.clone())),
                            ("samples".into(), Json::int(out.samples)),
                            (
                                "measured".into(),
                                report_json(&out.name, &out.empirical, include_pdf),
                            ),
                            (
                                "predicted".into(),
                                out.predicted
                                    .as_ref()
                                    .map_or(Json::Null, |p| report_json(&out.name, p, include_pdf)),
                            ),
                            ("mean_gap".into(), gap_json(&out.mean_gap)),
                            ("variance_gap".into(), gap_json(&out.variance_gap)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]
}

/// The word-length search methods (`exhaustive` is opt-in because its
/// search space is exponential in the node count).
pub const METHODS: [&str; 5] = [
    "greedy",
    "waterfill",
    "anneal",
    "group-greedy",
    "exhaustive",
];

/// `--method all` runs the methods that scale to real designs.
pub const ALL_METHODS: [&str; 4] = ["greedy", "waterfill", "anneal", "group-greedy"];

/// Validates a method selector (including `all` and `uniform`).
///
/// # Errors
///
/// A usage-style message for unknown methods.
pub fn validate_method(method: &str) -> Result<(), String> {
    if method == "all" || method == "uniform" || METHODS.contains(&method) {
        Ok(())
    } else {
        Err(format!("unknown method `{method}`"))
    }
}

/// Parameters of an `optimize` request, with the CLI's defaults.
#[derive(Clone, Debug)]
pub struct OptimizeParams {
    /// Search method (one of [`METHODS`], `uniform`, or `all`).
    pub method: String,
    /// Uniform word length of the reference design supplying the default
    /// budget.
    pub ref_bits: u8,
    /// Explicit noise-power budget (defaults to the reference design's).
    pub budget: Option<f64>,
    /// Starting word length for the descent methods.
    pub start: u8,
    /// Search radius of the exhaustive method.
    pub radius: u8,
    /// Independent annealing restarts (run in parallel, deterministic
    /// winner).
    pub restarts: usize,
    /// Worker threads for the parallel searches (exhaustive chunks,
    /// anneal restarts); 0 means available parallelism.
    pub threads: usize,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        OptimizeParams {
            method: "greedy".to_string(),
            ref_bits: 12,
            budget: None,
            start: 16,
            radius: 1,
            restarts: 1,
            threads: 0,
        }
    }
}

/// The product of an `optimize` request.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The noise budget actually used.
    pub budget: f64,
    /// The uniform reference design.
    pub reference: Evaluation,
    /// Per-method results, in run order.
    pub results: Vec<(String, Evaluation)>,
}

/// Runs a word-length optimization request.
///
/// The optimizer is built *on top of the session*: the NA gain model,
/// node ranges and histogram memo come from the shared artifact chain,
/// so a server (or batch) that analyzed a program first never rebuilds
/// them to optimize it — and repeated optimize requests share the
/// nonlinear searches' histogram memo.
///
/// # Errors
///
/// Optimizer construction or per-method failures, rendered.
pub fn optimize(session: &Session, params: &OptimizeParams) -> Result<OptimizeOutcome, String> {
    optimize_budgeted(session, params, &Budget::unlimited())
}

/// Renders a search-method failure. Budget overruns pass through
/// verbatim (see [`render_analysis_error`]); everything else names the
/// method that failed.
fn render_opt_error(name: &str, e: &OptError) -> String {
    match e {
        OptError::Sna(inner @ (SnaError::DeadlineExceeded | SnaError::Cancelled)) => {
            inner.to_string()
        }
        other => format!("method `{name}` failed: {other}"),
    }
}

/// [`optimize`] under a cooperative execution [`Budget`]: the search
/// loops poll it at strided checkpoints (exhaustive candidates,
/// annealing proposals, greedy trim rounds), so an overrun request
/// stops mid-search and renders the structured `deadline exceeded` /
/// `request cancelled` error.
///
/// # Errors
///
/// Same as [`optimize`], plus the budget overruns.
pub fn optimize_budgeted(
    session: &Session,
    params: &OptimizeParams,
    exec_budget: &Budget,
) -> Result<OptimizeOutcome, String> {
    validate_method(&params.method)?;
    // Pre-flight: the reference synthesis below is not checkpointed, so
    // an already-overrun budget must fail before paying for it.
    exec_budget.check().map_err(|e| e.to_string())?;
    let optimizer = Optimizer::from_session(session, SynthesisConstraints::default())
        .map_err(|e| format!("cannot build the optimizer: {e}"))?
        .with_exec_budget(exec_budget.clone());

    // The reference design also supplies the default budget.
    let reference = optimizer
        .uniform(params.ref_bits)
        .map_err(|e| format!("reference synthesis failed: {e}"))?;
    let budget = params.budget.unwrap_or(reference.noise_power);

    let run_one = |name: &str| -> Result<Evaluation, String> {
        let r = match name {
            "uniform" => optimizer.uniform(params.start),
            "greedy" => optimizer.greedy(budget, params.start),
            "waterfill" => optimizer.waterfill(budget),
            "anneal" => optimizer.anneal(
                budget,
                params.start,
                &AnnealOptions {
                    restarts: params.restarts.max(1),
                    // Honour the request's thread bound here too — the
                    // knob exists so a server can cap client-driven
                    // parallelism, and anneal restarts are exactly such
                    // fan-out.
                    threads: params.threads,
                    ..AnnealOptions::default()
                },
            ),
            "group-greedy" => optimizer.group_greedy(budget, params.start),
            "exhaustive" => {
                let threads = if params.threads == 0 {
                    crate::default_jobs()
                } else {
                    params.threads
                };
                optimizer.exhaustive_threaded(
                    budget,
                    params.ref_bits,
                    params.radius,
                    2_000_000,
                    threads,
                )
            }
            _ => unreachable!("validated above"),
        };
        r.map_err(|e| render_opt_error(name, &e))
    };
    let mut results: Vec<(String, Evaluation)> = Vec::new();
    if params.method == "all" {
        for name in ALL_METHODS {
            results.push((name.to_string(), run_one(name)?));
        }
    } else {
        results.push((params.method.clone(), run_one(&params.method)?));
    }
    Ok(OptimizeOutcome {
        budget,
        reference,
        results,
    })
}

/// Runs the HLS flow for one uniform configuration.
///
/// # Errors
///
/// Configuration or synthesis failures, rendered.
pub fn synth(session: &Session, bits: u8, clock_ns: f64) -> Result<Implementation, String> {
    let config = session
        .wl_config(&WlChoice::Uniform(bits))
        .map_err(|e| format!("cannot build a {bits}-bit configuration: {e}"))?;
    let constraints = SynthesisConstraints {
        clock_ns,
        ..SynthesisConstraints::default()
    };
    synthesize(session.dfg(), &config, &constraints).map_err(|e| format!("synthesis failed: {e}"))
}

/// The structural facts of a compiled program as JSON fields (the body
/// both the CLI's `parse --format json` and the server's `parse` result
/// share).
#[must_use]
pub fn parse_facts_json(
    dfg: &sna_dfg::Dfg,
    input_ranges: &[sna_interval::Interval],
) -> Vec<(String, Json)> {
    let c = dfg.op_counts();
    vec![
        (
            "inputs".into(),
            Json::Arr(
                dfg.input_names()
                    .iter()
                    .zip(input_ranges)
                    .map(|(name, range)| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(name.clone())),
                            ("range".into(), Json::pair(range.lo(), range.hi())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "outputs".into(),
            Json::Arr(
                dfg.outputs()
                    .iter()
                    .map(|(name, _)| Json::str(name.clone()))
                    .collect(),
            ),
        ),
        (
            "op_counts".into(),
            Json::Obj(vec![
                ("inputs".into(), Json::int(c.inputs)),
                ("consts".into(), Json::int(c.consts)),
                ("adds".into(), Json::int(c.adds)),
                ("subs".into(), Json::int(c.subs)),
                ("muls".into(), Json::int(c.muls)),
                ("divs".into(), Json::int(c.divs)),
                ("negs".into(), Json::int(c.negs)),
                ("delays".into(), Json::int(c.delays)),
            ]),
        ),
        ("nodes".into(), Json::int(dfg.len())),
        ("depth".into(), Json::int(dfg.depth())),
        ("is_linear".into(), Json::Bool(dfg.is_linear())),
        (
            "is_combinational".into(),
            Json::Bool(dfg.is_combinational()),
        ),
    ]
}

/// One noise report as a JSON object (the shape both the CLI's `--format
/// json` and the server's `result.reports` use).
#[must_use]
pub fn report_json(name: &str, report: &NoiseReport, include_pdf: bool) -> Json {
    let mut fields = vec![
        ("output".to_string(), Json::str(name)),
        ("mean".to_string(), Json::Num(report.mean)),
        ("variance".to_string(), Json::Num(report.variance)),
        ("std_dev".to_string(), Json::Num(report.std_dev())),
        ("power".to_string(), Json::Num(report.power)),
        (
            "support".to_string(),
            Json::pair(report.support.0, report.support.1),
        ),
    ];
    let (lo95, hi95) = report.credible_interval(0.95);
    fields.push(("credible95".to_string(), Json::pair(lo95, hi95)));
    match &report.histogram {
        Some(h) if include_pdf => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                    (
                        "masses".to_string(),
                        Json::Arr(h.probs().iter().map(|&m| Json::Num(m)).collect()),
                    ),
                ]),
            ));
        }
        Some(h) => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                ]),
            ));
        }
        None => fields.push(("histogram".to_string(), Json::Null)),
    }
    Json::Obj(fields)
}

/// One optimizer evaluation as a JSON object (shape shared by the CLI's
/// `optimize --format json` and the server's `result`).
#[must_use]
pub fn eval_json(e: &Evaluation) -> Json {
    Json::Obj(vec![
        (
            "word_lengths".into(),
            Json::Arr(
                e.word_lengths
                    .iter()
                    .map(|&w| Json::int(w as usize))
                    .collect(),
            ),
        ),
        ("noise_power".into(), Json::Num(e.noise_power)),
        ("weighted_cost".into(), Json::Num(e.weighted_cost)),
        (
            "cost".into(),
            Json::Obj(vec![
                ("area_um2".into(), Json::Num(e.cost.area_um2)),
                ("power_uw".into(), Json::Num(e.cost.power_uw)),
                (
                    "latency_cycles".into(),
                    Json::int(e.cost.latency_cycles as usize),
                ),
                ("fu_area_um2".into(), Json::Num(e.cost.fu_area_um2)),
                ("reg_area_um2".into(), Json::Num(e.cost.reg_area_um2)),
                ("mux_area_um2".into(), Json::Num(e.cost.mux_area_um2)),
                (
                    "energy_per_sample_pj".into(),
                    Json::Num(e.cost.energy_per_sample_pj),
                ),
            ]),
        ),
    ])
}

/// A synthesis cost report as a JSON object (shape shared by the CLI's
/// `synth --format json` and the server's `result.cost`).
#[must_use]
pub fn cost_json(cost: &sna_hls::CostReport) -> Json {
    Json::Obj(vec![
        ("area_um2".into(), Json::Num(cost.area_um2)),
        ("fu_area_um2".into(), Json::Num(cost.fu_area_um2)),
        ("reg_area_um2".into(), Json::Num(cost.reg_area_um2)),
        ("mux_area_um2".into(), Json::Num(cost.mux_area_um2)),
        ("power_uw".into(), Json::Num(cost.power_uw)),
        (
            "latency_cycles".into(),
            Json::int(cost.latency_cycles as usize),
        ),
        (
            "energy_per_sample_pj".into(),
            Json::Num(cost.energy_per_sample_pj),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(source: &str) -> CompiledEntry {
        let program = sna_lang::parse(source).unwrap();
        let fp = sna_lang::canonical_fingerprint(&program);
        CompiledEntry::new(sna_lang::lower(&program).unwrap(), fp)
    }

    #[test]
    fn na_analysis_through_the_cached_model_matches_a_fresh_build() {
        let src = "input x in [-1, 1];\nt = delay y;\ny = 0.4*x + 0.5*t;\noutput y;\n";
        let e = entry(src);
        let params = AnalyzeParams {
            engine: AnalyzeEngine::Na,
            ..AnalyzeParams::default()
        };
        let first = analyze(&e, &params).unwrap();
        assert!(e.na_model_built());
        let again = analyze(&e, &params).unwrap();
        assert_eq!(first.len(), again.len());
        for ((n1, r1), (n2, r2)) in first.iter().zip(&again) {
            assert_eq!(n1, n2);
            assert_eq!(r1.variance.to_bits(), r2.variance.to_bits());
        }
    }

    #[test]
    fn every_engine_answers_on_a_suitable_graph() {
        let comb = entry("input x in [-1, 1];\noutput y = 0.5*x + 0.25*x;\n");
        for engine in [
            AnalyzeEngine::Auto,
            AnalyzeEngine::Na,
            AnalyzeEngine::Dfg,
            AnalyzeEngine::Lti,
            AnalyzeEngine::Symbolic,
            AnalyzeEngine::Cartesian,
        ] {
            let params = AnalyzeParams {
                engine,
                bits: 10,
                bins: 32,
            };
            let reports =
                analyze(&comb, &params).unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            assert_eq!(reports[0].0, "y");
        }
    }

    #[test]
    fn optimize_runs_and_respects_the_reference_budget() {
        let e = entry("input x in [-1, 1];\noutput y = 0.5*x + 0.25*x;\n");
        let out = optimize(&e.session, &OptimizeParams::default()).unwrap();
        assert_eq!(out.results[0].0, "greedy");
        assert!(out.results[0].1.noise_power <= out.budget * 1.000001);
    }

    #[test]
    fn synth_produces_costs() {
        let e = entry("input x;\noutput y = 0.5*x;\n");
        let imp = synth(&e.session, 10, SynthesisConstraints::default().clock_ns).unwrap();
        assert!(imp.cost.area_um2 > 0.0);
    }

    #[test]
    fn analyze_report_carries_provenance_and_timing() {
        let e = entry("input x in [-1, 1];\noutput y = 0.5*x + 0.25*x;\n");
        let report = analyze_report(&e, &AnalyzeParams::default()).unwrap();
        // Auto on a linear combinational graph resolves to LTI.
        assert_eq!(report.engine, EngineKind::Lti);
        assert_eq!(report.kind.as_str(), "quantization-noise");
        assert_eq!(report.reports[0].0, "y");
    }

    #[test]
    fn selector_parsing_round_trips_and_rejects_unknowns() {
        for name in ["auto", "na", "dfg", "lti", "symbolic", "cartesian"] {
            assert_eq!(AnalyzeEngine::parse(name).unwrap().name(), name);
        }
        assert!(AnalyzeEngine::parse("warp").is_err());
        assert!(validate_method("greedy").is_ok());
        assert!(validate_method("all").is_ok());
        assert!(validate_method("uniform").is_ok());
        assert!(validate_method("magic").is_err());
    }
}
