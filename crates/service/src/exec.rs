//! Request execution: one function per verb (`parse` is pure shaping and
//! lives with the protocol; `analyze`, `optimize`, `synth` live here),
//! shared between the CLI subcommands and the server loop so both front
//! ends produce identical numbers — and identical JSON — for the same
//! request.
//!
//! Everything here takes a [`CompiledEntry`] (or the [`Lowered`] inside
//! it) and plain parameter structs; errors are rendered strings, which
//! the CLI wraps in its exit-code-bearing error type and the server ships
//! in `"error"` fields.

use std::cell::RefCell;
use std::collections::HashMap;

use sna_core::{CartesianEngine, EngineKind, NoiseReport, SnaAnalysis, UncertainInput};
use sna_dfg::{Dfg, RangeOptions};
use sna_fixp::WlConfig;
use sna_hls::{synthesize, Implementation, SynthesisConstraints};
use sna_interval::Interval;
use sna_lang::Lowered;
use sna_opt::{AnnealOptions, Evaluation, Optimizer};

use crate::cache::CompiledEntry;
use crate::json::Json;

/// The analysis engine selector, including the non-`SnaAnalysis`
/// Cartesian engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AnalyzeEngine {
    /// LTI for sequential linear graphs, DFG histograms otherwise.
    #[default]
    Auto,
    /// Classical NA baseline (moments only, no PDF) — served from the
    /// cached model when one is available.
    Na,
    /// Op-by-op histogram propagation.
    Dfg,
    /// LTI gains + CLT shaping.
    Lti,
    /// Polynomial propagation.
    Symbolic,
    /// The paper's Section-4 exact algorithm over value uncertainty.
    Cartesian,
}

impl AnalyzeEngine {
    /// Parses the `--engine` / `"engine"` selector.
    ///
    /// # Errors
    ///
    /// A usage-style message listing the accepted names.
    pub fn parse(raw: &str) -> Result<Self, String> {
        Ok(match raw {
            "auto" => AnalyzeEngine::Auto,
            "na" => AnalyzeEngine::Na,
            "dfg" => AnalyzeEngine::Dfg,
            "lti" => AnalyzeEngine::Lti,
            "symbolic" => AnalyzeEngine::Symbolic,
            "cartesian" => AnalyzeEngine::Cartesian,
            other => {
                return Err(format!(
                    "unknown engine `{other}` (expected auto, na, dfg, lti, symbolic or cartesian)"
                ))
            }
        })
    }

    /// The selector's wire/CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AnalyzeEngine::Auto => "auto",
            AnalyzeEngine::Na => "na",
            AnalyzeEngine::Dfg => "dfg",
            AnalyzeEngine::Lti => "lti",
            AnalyzeEngine::Symbolic => "symbolic",
            AnalyzeEngine::Cartesian => "cartesian",
        }
    }
}

/// Parameters of an `analyze` request, with the CLI's defaults.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeParams {
    /// Engine selector.
    pub engine: AnalyzeEngine,
    /// Uniform word length of the analyzed configuration.
    pub bits: u8,
    /// Histogram resolution.
    pub bins: usize,
}

impl Default for AnalyzeParams {
    fn default() -> Self {
        AnalyzeParams {
            engine: AnalyzeEngine::Auto,
            bits: 12,
            bins: 64,
        }
    }
}

/// Builds the word-length configuration every analysis shares.
///
/// # Errors
///
/// Range analysis / configuration failures, rendered.
pub fn config_for(lowered: &Lowered, bits: u8) -> Result<WlConfig, String> {
    WlConfig::from_ranges(&lowered.dfg, &lowered.input_ranges, bits)
        .map_err(|e| format!("cannot build a {bits}-bit configuration: {e}"))
}

/// The combinational per-sample view of a sequential graph, with the
/// delay-state inputs appended and their value ranges derived from range
/// analysis of the original graph.
///
/// # Errors
///
/// Range analysis failures, rendered.
pub fn combinational_with_ranges(lowered: &Lowered) -> Result<(Dfg, Vec<Interval>), String> {
    if lowered.dfg.is_combinational() {
        return Ok((lowered.dfg.clone(), lowered.input_ranges.clone()));
    }
    let node_ranges = lowered
        .dfg
        .ranges_auto(
            &lowered.input_ranges,
            &sna_dfg::RangeOptions::default(),
            &sna_dfg::LtiOptions::default(),
        )
        .map_err(|e| format!("range analysis failed: {e}"))?;
    let mut ranges = lowered.input_ranges.clone();
    ranges.extend(
        lowered
            .dfg
            .delay_nodes()
            .iter()
            .map(|d| node_ranges[d.index()]),
    );
    Ok((lowered.dfg.combinational_view(), ranges))
}

/// Hard ceiling on histogram resolution. Several engines are quadratic
/// (or, for `cartesian`, exponential in the input count) in the bin
/// count, and the allocation itself must not be attacker-sized: one
/// huge-`bins` request through `sna serve` would otherwise abort the
/// whole process.
pub const MAX_BINS: usize = 4096;

/// Runs an analysis request against a compiled entry. The `na` engine
/// evaluates the entry's cached [`NaModel`](sna_core::NaModel), building
/// it on first use — the step the cache exists to amortize.
///
/// # Errors
///
/// Engine or configuration failures, rendered; `bins` outside
/// `1..=`[`MAX_BINS`] is rejected up front.
pub fn analyze(
    entry: &CompiledEntry,
    params: &AnalyzeParams,
) -> Result<Vec<(String, NoiseReport)>, String> {
    let lowered = &entry.lowered;
    let AnalyzeParams { engine, bits, bins } = *params;
    if bins == 0 || bins > MAX_BINS {
        return Err(format!("bins must be in 1..={MAX_BINS}, got {bins}"));
    }
    match engine {
        AnalyzeEngine::Cartesian => cartesian(lowered, bins),
        AnalyzeEngine::Na => {
            let model = entry.na_model()?;
            let config = config_for(lowered, bits)?;
            SnaAnalysis::new(&lowered.dfg, &config, &lowered.input_ranges)
                .engine(EngineKind::Na)
                .with_na_model(&model)
                .bins(bins)
                .run()
                .map_err(|e| format!("analysis failed: {e}"))
        }
        AnalyzeEngine::Auto | AnalyzeEngine::Lti => {
            let kind = match engine {
                AnalyzeEngine::Auto => EngineKind::Auto,
                _ => EngineKind::Lti,
            };
            let config = config_for(lowered, bits)?;
            SnaAnalysis::new(&lowered.dfg, &config, &lowered.input_ranges)
                .engine(kind)
                .bins(bins)
                .run()
                .map_err(|e| format!("analysis failed: {e}"))
        }
        AnalyzeEngine::Dfg | AnalyzeEngine::Symbolic => {
            // Combinational engines: analyze the per-sample view.
            let kind = if engine == AnalyzeEngine::Dfg {
                EngineKind::Dfg
            } else {
                EngineKind::Symbolic
            };
            let (view, ranges) = combinational_with_ranges(lowered)?;
            let config = WlConfig::from_ranges(&view, &ranges, bits)
                .map_err(|e| format!("cannot build configuration: {e}"))?;
            SnaAnalysis::new(&view, &config, &ranges)
                .engine(kind)
                .bins(bins)
                .run()
                .map_err(|e| format!("analysis failed: {e}"))
        }
    }
}

/// The Section-4 exact algorithm over the inputs' value uncertainty.
fn cartesian(lowered: &Lowered, bins: usize) -> Result<Vec<(String, NoiseReport)>, String> {
    if !lowered.dfg.is_combinational() {
        return Err("the cartesian engine handles combinational datapaths only \
             (this one contains delays)"
            .to_string());
    }
    let inputs: Vec<UncertainInput> = lowered
        .dfg
        .input_names()
        .iter()
        .zip(&lowered.input_ranges)
        .map(|(name, range)| {
            UncertainInput::uniform(name.clone(), range.lo(), range.hi(), bins)
                .map_err(|e| format!("input `{name}`: {e}"))
        })
        .collect::<Result<_, _>>()?;
    // Fail early (and only once) if interval evaluation cannot cover the
    // full input box — sub-boxes are subsets, so they inherit success.
    let full: Vec<_> = lowered.input_ranges.clone();
    lowered
        .dfg
        .output_ranges(&full, &RangeOptions::default())
        .map_err(|e| format!("interval evaluation failed: {e}"))?;

    let engine = CartesianEngine::new(bins.max(2) * 2);
    // The engine sweeps every input sub-box once *per analyzed output*,
    // and each interval evaluation computes all outputs at once. Memoize
    // the per-sub-box output vector (bounded) so multi-output datapaths
    // pay for one sweep's worth of interval evaluations, not k.
    const MEMO_CAP: usize = 1 << 20;
    let multi_output = lowered.dfg.outputs().len() > 1;
    let memo: RefCell<HashMap<Vec<u64>, Vec<Interval>>> = RefCell::new(HashMap::new());
    let eval_outputs = |ranges: &[Interval]| -> Vec<Interval> {
        let compute = || {
            lowered
                .dfg
                .output_ranges(ranges, &RangeOptions::default())
                .expect("sub-box of a checked input box evaluates")
                .into_iter()
                .map(|(_, iv)| iv)
                .collect::<Vec<_>>()
        };
        if !multi_output {
            return compute();
        }
        let key: Vec<u64> = ranges
            .iter()
            .flat_map(|r| [r.lo().to_bits(), r.hi().to_bits()])
            .collect();
        if let Some(cached) = memo.borrow().get(&key) {
            return cached.clone();
        }
        let value = compute();
        let mut memo = memo.borrow_mut();
        if memo.len() < MEMO_CAP {
            memo.insert(key, value.clone());
        }
        value
    };
    lowered
        .dfg
        .outputs()
        .iter()
        .enumerate()
        .map(|(k, (name, _))| {
            let report = engine
                .analyze(&inputs, |ranges| eval_outputs(ranges)[k])
                .map_err(|e| format!("cartesian analysis failed: {e}"))?;
            Ok((name.clone(), report))
        })
        .collect()
}

/// The word-length search methods (`exhaustive` is opt-in because its
/// search space is exponential in the node count).
pub const METHODS: [&str; 5] = [
    "greedy",
    "waterfill",
    "anneal",
    "group-greedy",
    "exhaustive",
];

/// `--method all` runs the methods that scale to real designs.
pub const ALL_METHODS: [&str; 4] = ["greedy", "waterfill", "anneal", "group-greedy"];

/// Validates a method selector (including `all` and `uniform`).
///
/// # Errors
///
/// A usage-style message for unknown methods.
pub fn validate_method(method: &str) -> Result<(), String> {
    if method == "all" || method == "uniform" || METHODS.contains(&method) {
        Ok(())
    } else {
        Err(format!("unknown method `{method}`"))
    }
}

/// Parameters of an `optimize` request, with the CLI's defaults.
#[derive(Clone, Debug)]
pub struct OptimizeParams {
    /// Search method (one of [`METHODS`], `uniform`, or `all`).
    pub method: String,
    /// Uniform word length of the reference design supplying the default
    /// budget.
    pub ref_bits: u8,
    /// Explicit noise-power budget (defaults to the reference design's).
    pub budget: Option<f64>,
    /// Starting word length for the descent methods.
    pub start: u8,
    /// Search radius of the exhaustive method.
    pub radius: u8,
    /// Independent annealing restarts (run in parallel, deterministic
    /// winner).
    pub restarts: usize,
    /// Worker threads for the parallel searches (exhaustive chunks,
    /// anneal restarts); 0 means available parallelism.
    pub threads: usize,
}

impl Default for OptimizeParams {
    fn default() -> Self {
        OptimizeParams {
            method: "greedy".to_string(),
            ref_bits: 12,
            budget: None,
            start: 16,
            radius: 1,
            restarts: 1,
            threads: 0,
        }
    }
}

/// The product of an `optimize` request.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// The noise budget actually used.
    pub budget: f64,
    /// The uniform reference design.
    pub reference: Evaluation,
    /// Per-method results, in run order.
    pub results: Vec<(String, Evaluation)>,
}

/// Runs a word-length optimization request.
///
/// # Errors
///
/// Optimizer construction or per-method failures, rendered.
pub fn optimize(lowered: &Lowered, params: &OptimizeParams) -> Result<OptimizeOutcome, String> {
    validate_method(&params.method)?;
    let optimizer = Optimizer::new(
        &lowered.dfg,
        &lowered.input_ranges,
        SynthesisConstraints::default(),
    )
    .map_err(|e| format!("cannot build the optimizer: {e}"))?;

    // The reference design also supplies the default budget.
    let reference = optimizer
        .uniform(params.ref_bits)
        .map_err(|e| format!("reference synthesis failed: {e}"))?;
    let budget = params.budget.unwrap_or(reference.noise_power);

    let run_one = |name: &str| -> Result<Evaluation, String> {
        let r = match name {
            "uniform" => optimizer.uniform(params.start),
            "greedy" => optimizer.greedy(budget, params.start),
            "waterfill" => optimizer.waterfill(budget),
            "anneal" => optimizer.anneal(
                budget,
                params.start,
                &AnnealOptions {
                    restarts: params.restarts.max(1),
                    ..AnnealOptions::default()
                },
            ),
            "group-greedy" => optimizer.group_greedy(budget, params.start),
            "exhaustive" => {
                let threads = if params.threads == 0 {
                    crate::default_jobs()
                } else {
                    params.threads
                };
                optimizer.exhaustive_threaded(
                    budget,
                    params.ref_bits,
                    params.radius,
                    2_000_000,
                    threads,
                )
            }
            _ => unreachable!("validated above"),
        };
        r.map_err(|e| format!("method `{name}` failed: {e}"))
    };
    let mut results: Vec<(String, Evaluation)> = Vec::new();
    if params.method == "all" {
        for name in ALL_METHODS {
            results.push((name.to_string(), run_one(name)?));
        }
    } else {
        results.push((params.method.clone(), run_one(&params.method)?));
    }
    Ok(OptimizeOutcome {
        budget,
        reference,
        results,
    })
}

/// Runs the HLS flow for one uniform configuration.
///
/// # Errors
///
/// Configuration or synthesis failures, rendered.
pub fn synth(lowered: &Lowered, bits: u8, clock_ns: f64) -> Result<Implementation, String> {
    let config = config_for(lowered, bits)?;
    let constraints = SynthesisConstraints {
        clock_ns,
        ..SynthesisConstraints::default()
    };
    synthesize(&lowered.dfg, &config, &constraints).map_err(|e| format!("synthesis failed: {e}"))
}

/// The structural facts of a compiled program as JSON fields (the body
/// both the CLI's `parse --format json` and the server's `parse` result
/// share).
#[must_use]
pub fn parse_facts_json(lowered: &Lowered) -> Vec<(String, Json)> {
    let dfg = &lowered.dfg;
    let c = dfg.op_counts();
    vec![
        (
            "inputs".into(),
            Json::Arr(
                dfg.input_names()
                    .iter()
                    .zip(&lowered.input_ranges)
                    .map(|(name, range)| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(name.clone())),
                            ("range".into(), Json::pair(range.lo(), range.hi())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "outputs".into(),
            Json::Arr(
                dfg.outputs()
                    .iter()
                    .map(|(name, _)| Json::str(name.clone()))
                    .collect(),
            ),
        ),
        (
            "op_counts".into(),
            Json::Obj(vec![
                ("inputs".into(), Json::int(c.inputs)),
                ("consts".into(), Json::int(c.consts)),
                ("adds".into(), Json::int(c.adds)),
                ("subs".into(), Json::int(c.subs)),
                ("muls".into(), Json::int(c.muls)),
                ("divs".into(), Json::int(c.divs)),
                ("negs".into(), Json::int(c.negs)),
                ("delays".into(), Json::int(c.delays)),
            ]),
        ),
        ("nodes".into(), Json::int(dfg.len())),
        ("depth".into(), Json::int(dfg.depth())),
        ("is_linear".into(), Json::Bool(dfg.is_linear())),
        (
            "is_combinational".into(),
            Json::Bool(dfg.is_combinational()),
        ),
    ]
}

/// One noise report as a JSON object (the shape both the CLI's `--format
/// json` and the server's `result.reports` use).
#[must_use]
pub fn report_json(name: &str, report: &NoiseReport, include_pdf: bool) -> Json {
    let mut fields = vec![
        ("output".to_string(), Json::str(name)),
        ("mean".to_string(), Json::Num(report.mean)),
        ("variance".to_string(), Json::Num(report.variance)),
        ("std_dev".to_string(), Json::Num(report.std_dev())),
        ("power".to_string(), Json::Num(report.power)),
        (
            "support".to_string(),
            Json::pair(report.support.0, report.support.1),
        ),
    ];
    let (lo95, hi95) = report.credible_interval(0.95);
    fields.push(("credible95".to_string(), Json::pair(lo95, hi95)));
    match &report.histogram {
        Some(h) if include_pdf => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                    (
                        "masses".to_string(),
                        Json::Arr(h.probs().iter().map(|&m| Json::Num(m)).collect()),
                    ),
                ]),
            ));
        }
        Some(h) => {
            fields.push((
                "histogram".to_string(),
                Json::Obj(vec![
                    ("bins".to_string(), Json::int(h.n_bins())),
                    ("lo".to_string(), Json::Num(h.grid().lo())),
                    ("hi".to_string(), Json::Num(h.grid().hi())),
                ]),
            ));
        }
        None => fields.push(("histogram".to_string(), Json::Null)),
    }
    Json::Obj(fields)
}

/// One optimizer evaluation as a JSON object (shape shared by the CLI's
/// `optimize --format json` and the server's `result`).
#[must_use]
pub fn eval_json(e: &Evaluation) -> Json {
    Json::Obj(vec![
        (
            "word_lengths".into(),
            Json::Arr(
                e.word_lengths
                    .iter()
                    .map(|&w| Json::int(w as usize))
                    .collect(),
            ),
        ),
        ("noise_power".into(), Json::Num(e.noise_power)),
        ("weighted_cost".into(), Json::Num(e.weighted_cost)),
        (
            "cost".into(),
            Json::Obj(vec![
                ("area_um2".into(), Json::Num(e.cost.area_um2)),
                ("power_uw".into(), Json::Num(e.cost.power_uw)),
                (
                    "latency_cycles".into(),
                    Json::int(e.cost.latency_cycles as usize),
                ),
                ("fu_area_um2".into(), Json::Num(e.cost.fu_area_um2)),
                ("reg_area_um2".into(), Json::Num(e.cost.reg_area_um2)),
                ("mux_area_um2".into(), Json::Num(e.cost.mux_area_um2)),
                (
                    "energy_per_sample_pj".into(),
                    Json::Num(e.cost.energy_per_sample_pj),
                ),
            ]),
        ),
    ])
}

/// A synthesis cost report as a JSON object (shape shared by the CLI's
/// `synth --format json` and the server's `result.cost`).
#[must_use]
pub fn cost_json(cost: &sna_hls::CostReport) -> Json {
    Json::Obj(vec![
        ("area_um2".into(), Json::Num(cost.area_um2)),
        ("fu_area_um2".into(), Json::Num(cost.fu_area_um2)),
        ("reg_area_um2".into(), Json::Num(cost.reg_area_um2)),
        ("mux_area_um2".into(), Json::Num(cost.mux_area_um2)),
        ("power_uw".into(), Json::Num(cost.power_uw)),
        (
            "latency_cycles".into(),
            Json::int(cost.latency_cycles as usize),
        ),
        (
            "energy_per_sample_pj".into(),
            Json::Num(cost.energy_per_sample_pj),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(source: &str) -> CompiledEntry {
        let program = sna_lang::parse(source).unwrap();
        let fp = sna_lang::canonical_fingerprint(&program);
        CompiledEntry::new(sna_lang::lower(&program).unwrap(), fp)
    }

    #[test]
    fn na_analysis_through_the_cached_model_matches_a_fresh_build() {
        let src = "input x in [-1, 1];\nt = delay y;\ny = 0.4*x + 0.5*t;\noutput y;\n";
        let e = entry(src);
        let params = AnalyzeParams {
            engine: AnalyzeEngine::Na,
            ..AnalyzeParams::default()
        };
        let first = analyze(&e, &params).unwrap();
        assert!(e.na_model_built());
        let again = analyze(&e, &params).unwrap();
        assert_eq!(first.len(), again.len());
        for ((n1, r1), (n2, r2)) in first.iter().zip(&again) {
            assert_eq!(n1, n2);
            assert_eq!(r1.variance.to_bits(), r2.variance.to_bits());
        }
    }

    #[test]
    fn every_engine_answers_on_a_suitable_graph() {
        let comb = entry("input x in [-1, 1];\noutput y = 0.5*x + 0.25*x;\n");
        for engine in [
            AnalyzeEngine::Auto,
            AnalyzeEngine::Na,
            AnalyzeEngine::Dfg,
            AnalyzeEngine::Lti,
            AnalyzeEngine::Symbolic,
            AnalyzeEngine::Cartesian,
        ] {
            let params = AnalyzeParams {
                engine,
                bits: 10,
                bins: 32,
            };
            let reports =
                analyze(&comb, &params).unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
            assert_eq!(reports[0].0, "y");
        }
    }

    #[test]
    fn optimize_runs_and_respects_the_reference_budget() {
        let e = entry("input x in [-1, 1];\noutput y = 0.5*x + 0.25*x;\n");
        let out = optimize(&e.lowered, &OptimizeParams::default()).unwrap();
        assert_eq!(out.results[0].0, "greedy");
        assert!(out.results[0].1.noise_power <= out.budget * 1.000001);
    }

    #[test]
    fn synth_produces_costs() {
        let e = entry("input x;\noutput y = 0.5*x;\n");
        let imp = synth(&e.lowered, 10, SynthesisConstraints::default().clock_ns).unwrap();
        assert!(imp.cost.area_um2 > 0.0);
    }

    #[test]
    fn selector_parsing_round_trips_and_rejects_unknowns() {
        for name in ["auto", "na", "dfg", "lti", "symbolic", "cartesian"] {
            assert_eq!(AnalyzeEngine::parse(name).unwrap().name(), name);
        }
        assert!(AnalyzeEngine::parse("warp").is_err());
        assert!(validate_method("greedy").is_ok());
        assert!(validate_method("all").is_ok());
        assert!(validate_method("uniform").is_ok());
        assert!(validate_method("magic").is_err());
    }
}
