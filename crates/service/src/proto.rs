//! The line-oriented JSON wire protocol and the serve loop.
//!
//! One request per line in, one response per line out (compact JSON, no
//! interior newlines). The same handler backs `sna serve` on
//! stdin/stdout, `--listen addr:port` over TCP (the [`crate::event_loop`]
//! reactor, all connections sharing one [`CompileCache`] and one
//! [`StatsRegistry`]), and the in-process tests. See
//! `crates/service/README.md` for the full request/response schema.
//!
//! Malformed input — unparsable JSON, a missing `cmd`, a bad parameter —
//! answers with an `"ok": false` response on the same line; the server
//! never dies on bad input.
//!
//! Every handled request is recorded in the registry: the `requests` /
//! `errors` counters plus the verb's latency histogram (and, for
//! `analyze`, the *resolved* engine's histogram, timed at the engine
//! level). The `stats` verb serializes the whole registry alongside the
//! compile-cache counters.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

use sna_core::Budget;
use sna_lang::render_all;

use crate::cache::{CompileCache, Lookup};
use crate::exec::{self, AnalyzeEngine, AnalyzeParams, OptimizeParams};
use crate::json::Json;
use crate::stats::{Counter, StatsRegistry};

/// Upper bound on a request's `timeout_ms` field (one hour) — the field
/// exists to let clients *shorten* their deadline, not to schedule work
/// into next week.
pub const MAX_TIMEOUT_MS: usize = 3_600_000;

/// Server-side execution limits applied to every request on a
/// transport (the `--request-timeout` flag).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecLimits {
    /// Hard cap on request execution time, enforced via a cooperative
    /// [`Budget`]; also the effective deadline when a request passes no
    /// `timeout_ms`. A request's own `timeout_ms` may only shorten it.
    /// `None` = unlimited.
    pub request_timeout: Option<Duration>,
    /// Start the request's budget already cancelled, so it stops at its
    /// first cooperative checkpoint (fault injection only — see
    /// [`crate::FaultPlan`]).
    pub pre_cancelled: bool,
}

impl ExecLimits {
    /// The effective [`Budget`] of one request: the request's
    /// `timeout_ms` clamped by the server cap (`min` of the two).
    ///
    /// # Errors
    ///
    /// A malformed `timeout_ms` field.
    fn request_budget(&self, doc: &Json) -> Result<Budget, String> {
        if self.pre_cancelled {
            return Ok(Budget::pre_cancelled());
        }
        let requested = match doc.get("timeout_ms") {
            None => None,
            Some(_) => Some(Duration::from_millis(bounded_usize_field(
                doc,
                "timeout_ms",
                0,
                MAX_TIMEOUT_MS,
            )? as u64)),
        };
        Ok(match (requested, self.request_timeout) {
            (None, None) => Budget::unlimited(),
            (Some(d), None) | (None, Some(d)) => Budget::with_timeout(d),
            (Some(a), Some(b)) => Budget::with_timeout(a.min(b)),
        })
    }
}

/// What a serve loop processed, for the caller's logging.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Lines answered (including error responses).
    pub requests: u64,
    /// Responses with `"ok": false`.
    pub errors: u64,
}

/// Who is on the other end of the transport — controls which request
/// fields are honoured.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Peer {
    /// The operator's own pipe (stdin/stdout): `path` may read files.
    Trusted,
    /// A network client: `path` is refused — a remote peer must not be
    /// able to read (and, via diagnostics, exfiltrate) server-side files.
    Untrusted,
}

/// Handles one request line from the operator's own transport
/// (stdin/stdout) and returns the full response document. The `path`
/// request field is honoured; for network-facing handling use
/// [`handle_line_untrusted`]. Records into a throwaway registry — use
/// [`handle_line_stats`] when the caller keeps one.
#[must_use]
pub fn handle_line(cache: &CompileCache, line: &str) -> Json {
    handle(
        cache,
        &StatsRegistry::new(),
        line,
        Peer::Trusted,
        &ExecLimits::default(),
    )
}

/// Like [`handle_line`], but refuses `path` requests — the handler
/// behind every TCP connection.
#[must_use]
pub fn handle_line_untrusted(cache: &CompileCache, line: &str) -> Json {
    handle(
        cache,
        &StatsRegistry::new(),
        line,
        Peer::Untrusted,
        &ExecLimits::default(),
    )
}

/// [`handle_line`] recording into the caller's [`StatsRegistry`].
#[must_use]
pub fn handle_line_stats(cache: &CompileCache, stats: &StatsRegistry, line: &str) -> Json {
    handle(cache, stats, line, Peer::Trusted, &ExecLimits::default())
}

/// [`handle_line_untrusted`] recording into the caller's
/// [`StatsRegistry`].
#[must_use]
pub fn handle_line_untrusted_stats(
    cache: &CompileCache,
    stats: &StatsRegistry,
    line: &str,
) -> Json {
    handle(cache, stats, line, Peer::Untrusted, &ExecLimits::default())
}

/// [`handle_line_untrusted_stats`] under the server's [`ExecLimits`] —
/// the function every event-loop worker runs.
#[must_use]
pub fn handle_line_untrusted_stats_limited(
    cache: &CompileCache,
    stats: &StatsRegistry,
    limits: &ExecLimits,
    line: &str,
) -> Json {
    handle(cache, stats, line, Peer::Untrusted, limits)
}

fn handle(
    cache: &CompileCache,
    stats: &StatsRegistry,
    line: &str,
    peer: Peer,
    limits: &ExecLimits,
) -> Json {
    let started = Instant::now();
    // Received-request count, bumped up front so the `stats` verb's own
    // response includes itself; its latency histogram entry (recorded
    // after the response is built) lands one request behind.
    stats.bump(Counter::Requests);
    let _in_flight = stats.begin_request();
    let response = handle_inner(cache, stats, line, peer, limits, started);
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        stats.bump(Counter::Errors);
        // Budget overruns render as exactly these strings (the exec
        // layer passes them through verbatim for this classification).
        match response.get("error").and_then(Json::as_str) {
            Some("deadline exceeded") => stats.bump(Counter::Timeouts),
            Some("request cancelled") => stats.bump(Counter::Cancelled),
            _ => {}
        }
    }
    response
}

fn handle_inner(
    cache: &CompileCache,
    stats: &StatsRegistry,
    line: &str,
    peer: Peer,
    limits: &ExecLimits,
    started: Instant,
) -> Json {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(e) => return error_response(None, format!("malformed request: {e}")),
    };
    let id = doc.get("id").cloned();
    let Some(cmd) = doc.get("cmd").and_then(Json::as_str) else {
        return error_response(id, "request needs a string `cmd` field".to_string());
    };
    let outcome = dispatch(cache, stats, cmd, &doc, peer, limits);
    let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    stats.record_verb(cmd, elapsed_us);
    match outcome {
        Ok(Dispatched {
            result,
            lookup,
            engine,
        }) => {
            if let Some((engine, engine_us)) = engine {
                stats.record_engine(engine, engine_us);
            }
            let mut fields = Vec::new();
            if let Some(id) = id {
                fields.push(("id".to_string(), id));
            }
            fields.push(("ok".to_string(), Json::Bool(true)));
            fields.push(("cmd".to_string(), Json::str(cmd)));
            if let Some(lookup) = lookup {
                fields.push(("cache".to_string(), Json::str(lookup.as_str())));
            }
            fields.push((
                "elapsed_us".to_string(),
                Json::int(usize::try_from(elapsed_us).unwrap_or(usize::MAX)),
            ));
            fields.push(("result".to_string(), result));
            Json::Obj(fields)
        }
        Err(message) => error_response(id, message),
    }
}

fn error_response(id: Option<Json>, message: String) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_string(), id));
    }
    fields.push(("ok".to_string(), Json::Bool(false)));
    fields.push(("error".to_string(), Json::Str(message)));
    Json::Obj(fields)
}

/// A successful verb run: the `result` payload, the cache outcome when
/// the verb compiled something, and — for `analyze` — the resolved
/// engine plus the time the engine itself spent (for the per-engine
/// latency histograms).
struct Dispatched {
    result: Json,
    lookup: Option<Lookup>,
    engine: Option<(&'static str, u64)>,
}

impl Dispatched {
    fn plain(result: Json, lookup: Option<Lookup>) -> Self {
        Dispatched {
            result,
            lookup,
            engine: None,
        }
    }
}

/// Runs one verb.
fn dispatch(
    cache: &CompileCache,
    stats: &StatsRegistry,
    cmd: &str,
    doc: &Json,
    peer: Peer,
    limits: &ExecLimits,
) -> Result<Dispatched, String> {
    if cmd == "stats" {
        let s = cache.stats();
        let cache_counters = Json::Obj(vec![
            (
                "hits".into(),
                Json::int(usize::try_from(s.hits).unwrap_or(usize::MAX)),
            ),
            (
                "shape_hits".into(),
                Json::int(usize::try_from(s.shape_hits).unwrap_or(usize::MAX)),
            ),
            (
                "misses".into(),
                Json::int(usize::try_from(s.misses).unwrap_or(usize::MAX)),
            ),
            ("entries".into(), Json::int(s.entries)),
            (
                "evictions".into(),
                Json::int(usize::try_from(s.evictions).unwrap_or(usize::MAX)),
            ),
        ]);
        // The registry's own fields (counters / verbs / engines) merge
        // in beside the cache block.
        let mut fields = vec![("cache".to_string(), cache_counters)];
        if let Some(store) = cache.store() {
            let s = store.stats();
            let as_int = |v: u64| Json::int(usize::try_from(v).unwrap_or(usize::MAX));
            fields.push((
                "store".into(),
                Json::Obj(vec![
                    ("hits".into(), as_int(s.hits)),
                    ("misses".into(), as_int(s.misses)),
                    ("writes".into(), as_int(s.writes)),
                    ("corrupt".into(), as_int(s.corrupt)),
                    ("objects".into(), Json::int(store.ls().len())),
                    ("bytes".into(), as_int(store.total_bytes())),
                ]),
            ));
        }
        if let Json::Obj(registry_fields) = stats.to_json() {
            fields.extend(registry_fields);
        }
        return Ok(Dispatched::plain(Json::Obj(fields), None));
    }
    if !matches!(
        cmd,
        "parse" | "analyze" | "optimize" | "synth" | "simulate" | "trace"
    ) {
        return Err(format!(
            "unknown cmd `{cmd}` (expected parse, analyze, optimize, synth, simulate, trace or stats)"
        ));
    }

    let (source, origin) = request_source(doc, peer)?;
    // The execution budget starts here, *before* compilation — a cached
    // entry makes compilation ~free, but the deadline covers the whole
    // request either way.
    let budget = limits.request_budget(doc)?;
    let (entry, lookup) = cache
        .get_or_compile(&source)
        .map_err(|diags| render_all(&diags, &source, &origin))?;

    let mut engine_used: Option<(&'static str, u64)> = None;
    let result = match cmd {
        "parse" => Json::Obj(exec::parse_facts_json(
            entry.session.dfg(),
            entry.session.input_ranges(),
        )),
        "analyze" => {
            let params = AnalyzeParams {
                engine: match doc.get("engine").map(|v| field_str(v, "engine")) {
                    Some(raw) => AnalyzeEngine::parse(raw?)?,
                    None => AnalyzeEngine::Auto,
                },
                bits: u8_field(doc, "bits", 12)?,
                bins: usize_field(doc, "bins", 64)?,
            };
            let include_pdf = match doc.get("pdf") {
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "`pdf` must be a boolean".to_string())?,
                None => true,
            };
            let report = exec::analyze_report_budgeted(&entry, &params, &budget)?;
            engine_used = Some((
                report.engine.name(),
                u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX),
            ));
            Json::Obj(vec![
                // The engine that actually ran (`auto` resolves before
                // this point) — the provenance of the numbers.
                ("engine".into(), Json::str(report.engine.name())),
                ("bits".into(), Json::int(params.bits as usize)),
                ("bins".into(), Json::int(params.bins)),
                ("kind".into(), Json::str(report.kind.as_str())),
                (
                    "reports".into(),
                    Json::Arr(
                        report
                            .reports
                            .iter()
                            .map(|(name, r)| exec::report_json(name, r, include_pdf))
                            .collect(),
                    ),
                ),
            ])
        }
        "simulate" => {
            let params = exec::SimulateParams {
                bits: u8_field(doc, "bits", 12)?,
                bins: usize_field(doc, "bins", 64)?,
                // Bounded: paths × steps sizes server-side work, and
                // workers fans out threads — an untrusted peer must not
                // pick arbitrary values.
                paths: bounded_usize_field(doc, "paths", 100_000, exec::MAX_PATHS)?,
                seed: usize_field(doc, "seed", 0x5eed_cafe)? as u64,
                steps: match doc.get("steps") {
                    Some(_) => Some(bounded_usize_field(doc, "steps", 64, exec::MAX_STEPS)?),
                    None => None,
                },
                warmup: match doc.get("warmup") {
                    Some(_) => Some(bounded_usize_field(doc, "warmup", 16, exec::MAX_STEPS)?),
                    None => None,
                },
                workers: bounded_usize_field(doc, "workers", 0, 64)?,
            };
            let include_pdf = match doc.get("pdf") {
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "`pdf` must be a boolean".to_string())?,
                None => true,
            };
            let report = exec::simulate_budgeted(&entry, &params, &budget)?;
            engine_used = Some((
                "simulate",
                u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX),
            ));
            let mut fields = vec![
                ("engine".into(), Json::str("simulate")),
                ("bits".into(), Json::int(params.bits as usize)),
                ("bins".into(), Json::int(params.bins)),
            ];
            fields.extend(exec::simulate_json_fields(&report, include_pdf));
            Json::Obj(fields)
        }
        "trace" => {
            let mode = match doc.get("mode") {
                Some(v) => field_str(v, "mode")?,
                None => "report",
            };
            if !matches!(mode, "fit" | "replay" | "report") {
                return Err(format!(
                    "unknown trace mode `{mode}` (expected fit, replay or report)"
                ));
            }
            let csv = trace_csv(doc, peer)?;
            // Byte/row caps + budget-checked ingestion: an untrusted
            // peer must not size the server's memory or stall it with
            // an endless upload.
            let trace_limits = sna_trace::TraceLimits {
                max_bytes: exec::MAX_TRACE_BYTES,
                max_rows: exec::MAX_TRACE_ROWS,
            };
            let trace = exec::ingest_trace(&csv, &entry.session, &trace_limits, &budget)?;
            let include_pdf = match doc.get("pdf") {
                Some(v) => v
                    .as_bool()
                    .ok_or_else(|| "`pdf` must be a boolean".to_string())?,
                None => true,
            };
            let bins = usize_field(doc, "bins", 64)?;
            if mode == "fit" {
                let fit = exec::trace_fit(&entry.session, &trace, bins)?;
                Json::Obj(vec![
                    ("engine".into(), Json::str("trace")),
                    ("mode".into(), Json::str("fit")),
                    ("bins".into(), Json::int(bins)),
                    ("rows".into(), Json::int(trace.rows())),
                    ("skipped".into(), Json::int(trace.skipped())),
                    ("fit".into(), exec::trace_fit_json(&fit, include_pdf)),
                ])
            } else {
                let params = exec::TraceParams {
                    bits: u8_field(doc, "bits", 12)?,
                    bins,
                    warmup: match doc.get("warmup") {
                        Some(_) => Some(bounded_usize_field(doc, "warmup", 64, exec::MAX_STEPS)?),
                        None => None,
                    },
                    workers: bounded_usize_field(doc, "workers", 0, 64)?,
                    predict: mode == "report",
                };
                let report = exec::trace_report_budgeted(&entry, &trace, &params, &budget)?;
                engine_used = Some((
                    "trace",
                    u64::try_from(report.elapsed.as_micros()).unwrap_or(u64::MAX),
                ));
                let mut fields = vec![
                    ("engine".into(), Json::str("trace")),
                    ("mode".into(), Json::str(mode)),
                    ("bits".into(), Json::int(params.bits as usize)),
                    ("bins".into(), Json::int(params.bins)),
                ];
                fields.extend(exec::trace_json_fields(&report, include_pdf));
                Json::Obj(fields)
            }
        }
        "optimize" => {
            let params = OptimizeParams {
                method: match doc.get("method") {
                    Some(v) => field_str(v, "method")?.to_string(),
                    None => "greedy".to_string(),
                },
                ref_bits: u8_field(doc, "ref_bits", 12)?,
                budget: match doc.get("budget") {
                    Some(v) => Some(
                        v.as_f64()
                            .ok_or_else(|| "`budget` must be a number".to_string())?,
                    ),
                    None => None,
                },
                start: u8_field(doc, "start", 16)?,
                radius: u8_field(doc, "radius", 1)?,
                // Bounded: these fan out server-side work, so an untrusted
                // peer must not pick arbitrary values.
                restarts: bounded_usize_field(doc, "restarts", 1, 64)?,
                threads: bounded_usize_field(doc, "threads", 0, 64)?,
            };
            let out = exec::optimize_budgeted(&entry.session, &params, &budget)?;
            Json::Obj(vec![
                ("budget".into(), Json::Num(out.budget)),
                ("reference".into(), exec::eval_json(&out.reference)),
                (
                    "results".into(),
                    Json::Obj(
                        out.results
                            .iter()
                            .map(|(name, e)| (name.clone(), exec::eval_json(e)))
                            .collect(),
                    ),
                ),
            ])
        }
        "synth" => {
            let bits = u8_field(doc, "bits", 12)?;
            let clock = match doc.get("clock") {
                Some(v) => v
                    .as_f64()
                    .ok_or_else(|| "`clock` must be a number".to_string())?,
                None => sna_hls::SynthesisConstraints::default().clock_ns,
            };
            let imp = exec::synth(&entry.session, bits, clock)?;
            Json::Obj(vec![
                ("bits".into(), Json::int(bits as usize)),
                ("clock_ns".into(), Json::Num(clock)),
                ("cost".into(), exec::cost_json(&imp.cost)),
                ("scheduled_ops".into(), Json::int(imp.schedule.n_ops())),
            ])
        }
        _ => unreachable!("verbs matched above"),
    };
    Ok(Dispatched {
        result,
        lookup: Some(lookup),
        engine: engine_used,
    })
}

/// The program text of a request: inline `source`, or `path` read from
/// disk (trusted transports only). The second element is the origin used
/// in diagnostics.
fn request_source(doc: &Json, peer: Peer) -> Result<(String, String), String> {
    if let Some(v) = doc.get("source") {
        return Ok((field_str(v, "source")?.to_string(), "request".to_string()));
    }
    if let Some(v) = doc.get("path") {
        if peer == Peer::Untrusted {
            return Err(
                "`path` is not available over TCP (it reads server-side files); \
                 send the program inline via `source`"
                    .to_string(),
            );
        }
        let path = field_str(v, "path")?;
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        return Ok((text, path.to_string()));
    }
    Err("request needs a `source` (inline text) or `path` (file) field".to_string())
}

/// The recorded-signal CSV of a `trace` request: inline `trace`, or
/// `trace_path` read from disk (trusted transports only, and only up to
/// the byte cap — a path must not smuggle in an unbounded file).
fn trace_csv(doc: &Json, peer: Peer) -> Result<String, String> {
    if let Some(v) = doc.get("trace") {
        return Ok(field_str(v, "trace")?.to_string());
    }
    if let Some(v) = doc.get("trace_path") {
        if peer == Peer::Untrusted {
            return Err(
                "`trace_path` is not available over TCP (it reads server-side files); \
                 send the CSV inline via `trace`"
                    .to_string(),
            );
        }
        let path = field_str(v, "trace_path")?;
        let meta = std::fs::metadata(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        if meta.len() > exec::MAX_TRACE_BYTES as u64 {
            return Err(format!(
                "trace exceeds the byte cap ({} bytes)",
                exec::MAX_TRACE_BYTES
            ));
        }
        return std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"));
    }
    Err("trace request needs a `trace` (inline CSV) or `trace_path` (file) field".to_string())
}

fn field_str<'a>(value: &'a Json, key: &str) -> Result<&'a str, String> {
    value
        .as_str()
        .ok_or_else(|| format!("`{key}` must be a string"))
}

/// An integer field clamped into `0..=cap` (parallelism knobs: a remote
/// peer must not spawn unbounded server-side work).
fn bounded_usize_field(doc: &Json, key: &str, default: usize, cap: usize) -> Result<usize, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if n.fract() == 0.0 && (0.0..=cap as f64).contains(&n) {
                Ok(n as usize)
            } else {
                Err(format!("`{key}` must be an integer in 0..={cap}"))
            }
        }
    }
}

fn u8_field(doc: &Json, key: &str, default: u8) -> Result<u8, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if n.fract() == 0.0 && (0.0..=255.0).contains(&n) {
                Ok(n as u8)
            } else {
                Err(format!("`{key}` must be an integer in 0..=255"))
            }
        }
    }
}

fn usize_field(doc: &Json, key: &str, default: usize) -> Result<usize, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if n.fract() == 0.0 && n >= 0.0 && n <= usize::MAX as f64 {
                Ok(n as usize)
            } else {
                Err(format!("`{key}` must be a non-negative integer"))
            }
        }
    }
}

/// Serves the line protocol until EOF: one compact JSON response per
/// request line, flushed immediately so pipes and sockets see answers
/// without buffering delays. Empty lines are ignored. The peer is
/// trusted (`path` requests read files) — this is the stdin/stdout
/// transport behind `sna serve`.
///
/// # Errors
///
/// Only transport failures (reading the input, writing the output);
/// protocol-level problems become `"ok": false` responses.
pub fn serve<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    cache: &CompileCache,
) -> io::Result<ServeReport> {
    serve_peer(
        reader,
        &mut writer,
        cache,
        &StatsRegistry::new(),
        Peer::Trusted,
        &ExecLimits::default(),
    )
}

/// [`serve`] recording into the caller's [`StatsRegistry`], so the
/// `stats` verb reports the session's real counters and histograms.
///
/// # Errors
///
/// Same as [`serve`].
pub fn serve_stats<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    cache: &CompileCache,
    stats: &StatsRegistry,
) -> io::Result<ServeReport> {
    serve_peer(
        reader,
        &mut writer,
        cache,
        stats,
        Peer::Trusted,
        &ExecLimits::default(),
    )
}

/// [`serve_stats`] under the caller's [`ExecLimits`] — the stdio
/// transport behind `sna serve --request-timeout`.
///
/// # Errors
///
/// Same as [`serve`].
pub fn serve_stats_limited<R: BufRead, W: Write>(
    reader: R,
    mut writer: W,
    cache: &CompileCache,
    stats: &StatsRegistry,
    limits: &ExecLimits,
) -> io::Result<ServeReport> {
    serve_peer(reader, &mut writer, cache, stats, Peer::Trusted, limits)
}

/// Upper bound on one request line. Real `.sna` sources are kilobytes;
/// the bound exists so a peer streaming bytes with no newline cannot
/// grow the line buffer until the process is OOM-killed.
pub const MAX_LINE_BYTES: u64 = 1 << 20;

fn serve_peer<R: BufRead, W: Write>(
    mut reader: R,
    writer: &mut W,
    cache: &CompileCache,
    stats: &StatsRegistry,
    peer: Peer,
    limits: &ExecLimits,
) -> io::Result<ServeReport> {
    let mut report = ServeReport::default();
    let mut line = String::new();
    loop {
        line.clear();
        // Cap each line read: without the bound a newline-less stream
        // accumulates into one unbounded String.
        let n = io::Read::take(&mut reader, MAX_LINE_BYTES).read_line(&mut line)?;
        if n == 0 {
            break; // EOF
        }
        if !line.ends_with('\n') && n as u64 == MAX_LINE_BYTES {
            // Oversized request: answer once and hang up — the rest of
            // the stream is the middle of the same over-long line.
            let response =
                error_response(None, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
            report.requests += 1;
            report.errors += 1;
            stats.bump(Counter::Requests);
            stats.bump(Counter::Errors);
            writer.write_all(response.to_compact().as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = handle(
            cache,
            stats,
            line.trim_end_matches(['\n', '\r']),
            peer,
            limits,
        );
        report.requests += 1;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            report.errors += 1;
        }
        writer.write_all(response.to_compact().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(report)
}

/// The one-line answer a peer gets when the server is at `--max-conns`
/// capacity, before its connection is closed (shared by the event loop
/// and its tests).
pub(crate) fn capacity_error_line() -> String {
    let mut line = error_response(None, "server at capacity".to_string()).to_compact();
    line.push('\n');
    line
}

/// The one-line answer a request gets when it arrives after a graceful
/// drain has begun.
pub(crate) fn draining_error_line(id: Option<Json>) -> String {
    let mut line = error_response(id, "server draining".to_string()).to_compact();
    line.push('\n');
    line
}

/// The one-line answer for a request line that exceeded
/// [`MAX_LINE_BYTES`] (the connection closes after it flushes).
pub(crate) fn oversize_error_line() -> String {
    let mut line =
        error_response(None, format!("request line exceeds {MAX_LINE_BYTES} bytes")).to_compact();
    line.push('\n');
    line
}

/// The one-line answer a request gets when its execution panicked in a
/// worker: the completion guard in the event loop delivers this so the
/// peer always sees a structured failure, never a silent drop.
pub(crate) fn internal_error_line(id: Option<Json>) -> String {
    let mut line =
        error_response(id, "internal error: request execution panicked".to_string()).to_compact();
    line.push('\n');
    line
}

/// Extracts the `id` of a raw request line if it parses far enough,
/// so refusal responses (draining) still correlate.
pub(crate) fn request_id(line: &str) -> Option<Json> {
    Json::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "input x in [-1, 1];\\noutput y = 0.5*x;\\n";

    fn request(fields: &str) -> String {
        format!("{{{fields}}}")
    }

    #[test]
    fn analyze_request_answers_with_reports_and_cache_state() {
        let cache = CompileCache::new();
        let line = request(&format!(
            r#""id": 1, "cmd": "analyze", "source": "{SRC}", "bits": 8"#
        ));
        let first = handle_line(&cache, &line);
        assert_eq!(first.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(first.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(first.get("id").unwrap().as_f64(), Some(1.0));
        assert!(first.get("result").unwrap().get("reports").is_some());
        let second = handle_line(&cache, &line);
        assert_eq!(second.get("cache").unwrap().as_str(), Some("hit"));
    }

    #[test]
    fn malformed_lines_and_unknown_cmds_answer_with_errors() {
        let cache = CompileCache::new();
        let bad = handle_line(&cache, "this is not json");
        assert_eq!(bad.get("ok").unwrap().as_bool(), Some(false));
        assert!(bad
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("malformed"));

        let unknown = handle_line(&cache, r#"{"id": 9, "cmd": "frobnicate", "source": "x"}"#);
        assert_eq!(unknown.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(unknown.get("id").unwrap().as_f64(), Some(9.0));
        assert!(unknown
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown cmd"));

        let no_source = handle_line(&cache, r#"{"cmd": "parse"}"#);
        assert!(no_source
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("`source`"));
    }

    #[test]
    fn compile_diagnostics_travel_in_the_error_field() {
        let cache = CompileCache::new();
        let resp = handle_line(
            &cache,
            r#"{"cmd": "parse", "source": "input x;\ny = ;\noutput y;\n"}"#,
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        let error = resp.get("error").unwrap().as_str().unwrap();
        assert!(error.contains("expected an expression"), "{error}");
    }

    #[test]
    fn stats_requests_report_cache_counters_and_the_registry() {
        let cache = CompileCache::new();
        let registry = StatsRegistry::new();
        let line = request(&format!(r#""cmd": "synth", "source": "{SRC}", "bits": 10"#));
        let _ = handle_line_stats(&cache, &registry, &line);
        let _ = handle_line_stats(&cache, &registry, &line);
        let stats = handle_line_stats(&cache, &registry, r#"{"cmd": "stats"}"#);
        let result = stats.get("result").unwrap();
        let cache_counters = result.get("cache").unwrap();
        assert_eq!(cache_counters.get("hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache_counters.get("misses").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache_counters.get("entries").unwrap().as_f64(), Some(1.0));
        assert_eq!(cache_counters.get("evictions").unwrap().as_f64(), Some(0.0));
        // The registry rode along: both synth requests and the stats
        // request itself are counted (requests bumps on receipt)…
        let counters = result.get("counters").unwrap();
        assert_eq!(counters.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(counters.get("errors").unwrap().as_f64(), Some(0.0));
        // …and the synth verb has a latency histogram with both entries.
        let synth = result.get("verbs").unwrap().get("synth").unwrap();
        assert_eq!(synth.get("count").unwrap().as_f64(), Some(2.0));
        assert!(synth.get("p99_us").unwrap().as_f64().is_some());
    }

    #[test]
    fn analyze_records_the_resolved_engine_not_auto() {
        let cache = CompileCache::new();
        let registry = StatsRegistry::new();
        // Auto on a linear combinational graph resolves to LTI.
        let line = request(&format!(
            r#""cmd": "analyze", "source": "{SRC}", "bits": 8"#
        ));
        let resp = handle_line_stats(&cache, &registry, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            resp.get("result").unwrap().get("engine").unwrap().as_str(),
            Some("lti"),
            "the response reports the engine that actually ran"
        );
        assert_eq!(registry.engine("lti").unwrap().snapshot().count, 1);
        let stats = handle_line_stats(&cache, &registry, r#"{"cmd": "stats"}"#);
        let engines = stats.get("result").unwrap().get("engines").unwrap();
        assert_eq!(
            engines.get("lti").unwrap().get("count").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn errors_are_counted_in_the_registry() {
        let cache = CompileCache::new();
        let registry = StatsRegistry::new();
        let _ = handle_line_stats(&cache, &registry, "not json");
        let _ = handle_line_stats(&cache, &registry, r#"{"cmd": "frobnicate", "source": "x"}"#);
        assert_eq!(registry.get(Counter::Requests), 2);
        assert_eq!(registry.get(Counter::Errors), 2);
    }

    #[test]
    fn oversized_bins_are_rejected_instead_of_aborting_the_process() {
        let cache = CompileCache::new();
        let resp = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "analyze", "source": "{SRC}", "bins": 40000000000"#
            )),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("bins"),
            "{resp}"
        );
        // A zero is equally out of range.
        let resp = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "analyze", "source": "{SRC}", "bins": 0"#
            )),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn pathological_nesting_answers_with_an_error_not_an_abort() {
        let cache = CompileCache::new();
        // A line of `[[[[…` (well under MAX_LINE_BYTES) must get an
        // error response, not overflow the handler's stack.
        let deep_json = "[".repeat(200_000);
        let resp = handle_line_untrusted(&cache, &deep_json);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("nesting"),
            "{resp}"
        );
        // Same for a deeply nested `.sna` expression inside a valid
        // request: a compile diagnostic, not a crash.
        let line = format!(
            r#"{{"cmd": "parse", "source": "y = {}x;"}}"#,
            "-".repeat(100_000)
        );
        let resp = handle_line_untrusted(&cache, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("nesting"),
            "{resp}"
        );
    }

    #[test]
    fn untrusted_peers_cannot_read_files_via_path() {
        let cache = CompileCache::new();
        let line = r#"{"cmd": "parse", "path": "/etc/hostname"}"#;
        let resp = handle_line_untrusted(&cache, line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("not available over TCP"),
            "{resp}"
        );
        // Inline source still works for the same peer.
        let ok = handle_line_untrusted(
            &cache,
            &request(&format!(r#""cmd": "parse", "source": "{SRC}""#)),
        );
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parameter_validation_is_spelled_out() {
        let cache = CompileCache::new();
        let resp = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "analyze", "source": "{SRC}", "bits": 4096"#
            )),
        );
        assert!(resp
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("0..=255"));
        let resp = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "analyze", "source": "{SRC}", "engine": "warp""#
            )),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(resp
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown engine"));
    }

    const CSV: &str = "x\\n0.9\\n-0.9\\n0.45\\n-0.45\\n0.1\\n-0.7\\n0.3\\n-0.2\\n";

    fn first(v: &Json) -> &Json {
        match v {
            Json::Arr(items) => &items[0],
            other => panic!("expected an array, got {other}"),
        }
    }

    #[test]
    fn trace_report_answers_with_measured_and_predicted_noise() {
        let cache = CompileCache::new();
        let registry = StatsRegistry::new();
        let line = request(&format!(
            r#""cmd": "trace", "source": "{SRC}", "trace": "{CSV}", "bits": 8"#
        ));
        let resp = handle_line_stats(&cache, &registry, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("engine").unwrap().as_str(), Some("trace"));
        assert_eq!(result.get("mode").unwrap().as_str(), Some("report"));
        assert_eq!(result.get("rows").unwrap().as_f64(), Some(8.0));
        let y = first(result.get("outputs").unwrap());
        assert_eq!(y.get("output").unwrap().as_str(), Some("y"));
        assert!(y.get("measured").unwrap().get("variance").is_some());
        assert!(y.get("predicted").unwrap().get("variance").is_some());
        assert!(y.get("variance_gap").is_some());
        // The verb and engine both land in the registry as `trace`.
        assert_eq!(registry.verb("trace").unwrap().snapshot().count, 1);
        assert_eq!(registry.engine("trace").unwrap().snapshot().count, 1);
    }

    #[test]
    fn trace_fit_reports_measured_ranges_not_declared_ones() {
        let cache = CompileCache::new();
        let line = request(&format!(
            r#""cmd": "trace", "source": "{SRC}", "trace": "{CSV}", "mode": "fit""#
        ));
        let resp = handle_line(&cache, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let result = resp.get("result").unwrap();
        assert_eq!(result.get("mode").unwrap().as_str(), Some("fit"));
        let fit = first(result.get("fit").unwrap());
        assert_eq!(fit.get("input").unwrap().as_str(), Some("x"));
        // Declared range is [-1, 1]; the recorded signal only spans
        // [-0.9, 0.9] and the fit reflects the data.
        match fit.get("range").unwrap() {
            Json::Arr(pair) => {
                assert_eq!(pair[0].as_f64(), Some(-0.9));
                assert_eq!(pair[1].as_f64(), Some(0.9));
            }
            other => panic!("expected a [lo, hi] pair, got {other}"),
        }
    }

    #[test]
    fn trace_replay_mode_skips_the_analytic_prediction() {
        let cache = CompileCache::new();
        let line = request(&format!(
            r#""cmd": "trace", "source": "{SRC}", "trace": "{CSV}", "mode": "replay""#
        ));
        let resp = handle_line(&cache, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let y = first(resp.get("result").unwrap().get("outputs").unwrap());
        assert!(y.get("measured").unwrap().get("variance").is_some());
        assert!(matches!(y.get("predicted"), Some(Json::Null)));
    }

    #[test]
    fn trace_requests_validate_mode_and_payload() {
        let cache = CompileCache::new();
        let bad_mode = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "trace", "source": "{SRC}", "trace": "{CSV}", "mode": "warp""#
            )),
        );
        assert!(bad_mode
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("unknown trace mode"));
        let no_trace = handle_line(
            &cache,
            &request(&format!(r#""cmd": "trace", "source": "{SRC}""#)),
        );
        assert!(no_trace
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("`trace`"));
        let bad_column = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "trace", "source": "{SRC}", "trace": "z\\n1\\n""#
            )),
        );
        assert!(bad_column
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("no column for input"));
    }

    #[test]
    fn untrusted_peers_cannot_read_files_via_trace_path() {
        let cache = CompileCache::new();
        let line = request(&format!(
            r#""cmd": "trace", "source": "{SRC}", "trace_path": "/etc/hostname""#
        ));
        let resp = handle_line_untrusted(&cache, &line);
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(resp
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("not available over TCP"));
        // The same request with the CSV inline works for that peer.
        let ok = handle_line_untrusted(
            &cache,
            &request(&format!(
                r#""cmd": "trace", "source": "{SRC}", "trace": "{CSV}""#
            )),
        );
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true), "{ok}");
    }

    #[test]
    fn trace_row_cap_rejects_oversized_recordings() {
        let cache = CompileCache::new();
        let mut csv = String::from("x\\n");
        for _ in 0..=exec::MAX_TRACE_ROWS {
            csv.push_str("0\\n");
        }
        let resp = handle_line(
            &cache,
            &request(&format!(
                r#""cmd": "trace", "source": "{SRC}", "trace": "{csv}""#
            )),
        );
        assert_eq!(resp.get("ok").unwrap().as_bool(), Some(false));
        assert!(
            resp.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("row cap"),
            "{}",
            resp.get("error").unwrap()
        );
    }
}
