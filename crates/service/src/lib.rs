//! `sna-service` — the batch + server execution layer of the SNA
//! toolchain.
//!
//! The paper's economics are: building a noise model is the one-off cost,
//! evaluating it is `O(#sources)`. This crate is where that asymmetry
//! becomes operational. It provides the pieces both the batched CLI
//! (`sna analyze a.sna b.sna …`) and the long-running server (`sna
//! serve`) stand on:
//!
//! * [`CompileCache`] — a hash-keyed source → compiled-model cache.
//!   Raw-byte FNV for the fast path, the canonical fingerprint from
//!   `sna-lang` for spelling-insensitive aliasing; entries share the
//!   lowered [`Dfg`](sna_dfg::Dfg) and the lazily built
//!   [`NaModel`](sna_core::NaModel) behind `Arc`s.
//! * [`run_ordered`] / [`WorkerPool`] — std-only worker pools
//!   (`std::thread` + channels; the build environment has no network, so
//!   no tokio): the former fans a batch across cores and collects
//!   results in input order, the latter is the long-lived pool the
//!   server's event loop executes requests on.
//! * [`exec`] — one function per verb (`analyze`, `optimize`, `synth`),
//!   shared by the CLI subcommands and the server so both produce
//!   identical numbers and identical JSON for the same request.
//! * [`serve`] / [`spawn_server`] — the line-oriented JSON protocol:
//!   one request per line in, one compact JSON response per line out.
//!   `serve` drives a trusted stdio peer; `spawn_server` runs the
//!   `poll(2)` event-loop transport for TCP peers, with bounded accept,
//!   slow-client backpressure, idle timeouts and graceful drain.
//!   Documented in `crates/service/README.md`.
//! * [`StatsRegistry`] — the observability plane: connection-lifecycle
//!   counters plus log-spaced latency histograms per verb and per
//!   resolved engine, reported in full by the `stats` verb.
//! * [`Json`] — the document model, writer (pretty + compact) and parser
//!   the protocol and the CLI share. It moved here from `crates/cli`,
//!   which re-exports it.

// `deny` rather than `forbid`: the event loop's `sys` module is the one
// place allowed (via a scoped `#[allow]`) to use unsafe — the thin FFI
// shim over poll(2)/pipe(2), reviewed syscall-by-syscall. Everything
// else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod event_loop;
pub mod exec;
mod fault;
mod json;
mod pool;
mod proto;
mod stats;

pub use cache::{
    CacheLimits, CacheStats, CompileCache, CompiledEntry, Lookup, SHAPE_PTR_KIND, SKEL_KIND,
};
pub use event_loop::{spawn_server, ServerConfig, ServerHandle};
pub use fault::{FaultPlan, IoFault, JobFault};
pub use json::Json;
pub use pool::{default_jobs, run_ordered, WorkerPool};
pub use proto::{
    handle_line, handle_line_stats, handle_line_untrusted, handle_line_untrusted_stats,
    handle_line_untrusted_stats_limited, serve, serve_stats, serve_stats_limited, ExecLimits,
    ServeReport, MAX_TIMEOUT_MS,
};
pub use stats::{
    bin_hi, bin_lo, Counter, HistogramSnapshot, InFlightGuard, LatencyHistogram, StatsRegistry,
    COUNTERS, ENGINES, N_BINS, VERBS,
};
