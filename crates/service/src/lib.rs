//! `sna-service` — the batch + server execution layer of the SNA
//! toolchain.
//!
//! The paper's economics are: building a noise model is the one-off cost,
//! evaluating it is `O(#sources)`. This crate is where that asymmetry
//! becomes operational. It provides the pieces both the batched CLI
//! (`sna analyze a.sna b.sna …`) and the long-running server (`sna
//! serve`) stand on:
//!
//! * [`CompileCache`] — a hash-keyed source → compiled-model cache.
//!   Raw-byte FNV for the fast path, the canonical fingerprint from
//!   `sna-lang` for spelling-insensitive aliasing; entries share the
//!   lowered [`Dfg`](sna_dfg::Dfg) and the lazily built
//!   [`NaModel`](sna_core::NaModel) behind `Arc`s.
//! * [`run_ordered`] — a std-only worker pool (`std::thread` + channels;
//!   the build environment has no network, so no tokio) that fans a job
//!   list across cores and collects results in input order, keeping
//!   batch output byte-stable.
//! * [`exec`] — one function per verb (`analyze`, `optimize`, `synth`),
//!   shared by the CLI subcommands and the server so both produce
//!   identical numbers and identical JSON for the same request.
//! * [`serve`] / [`serve_tcp`] — the line-oriented JSON protocol:
//!   one request per line in, one compact JSON response per line out,
//!   with per-request cache hit/miss and timing. Documented in
//!   `crates/service/README.md`.
//! * [`Json`] — the document model, writer (pretty + compact) and parser
//!   the protocol and the CLI share. It moved here from `crates/cli`,
//!   which re-exports it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod exec;
mod json;
mod pool;
mod proto;

pub use cache::{CacheLimits, CacheStats, CompileCache, CompiledEntry, Lookup};
pub use json::Json;
pub use pool::{default_jobs, run_ordered};
pub use proto::{handle_line, handle_line_untrusted, serve, serve_tcp, ServeReport};
