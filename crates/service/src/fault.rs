//! Deterministic fault injection for the chaos test suite.
//!
//! A [`FaultPlan`] is a small set of rules, each firing on the *N*-th
//! occurrence of an event class, parsed from a compact spec string
//! (`sna serve --fault-plan "panic@2,reset@5"`). The server consults the
//! plan at two runtime hooks — no `#[cfg(test)]` builds, no conditional
//! compilation, so the binary under chaos test is the production binary:
//!
//! * **job hook** ([`FaultPlan::next_job`]) — called by a pool worker
//!   once per request execution, *before* the handler runs:
//!   - `panic@N`: the N-th job panics inside the worker (exercising
//!     the `catch_unwind` isolation and the completion guard);
//!   - `cancel@N`: the N-th job runs with a pre-cancelled budget, so
//!     it stops at its first cooperative checkpoint with the
//!     structured `request cancelled` error.
//! * **I/O hook** ([`FaultPlan::next_io`]) — called by the reactor once
//!   per connection flush that has bytes to write:
//!   - `delay@N:MS`: the N-th flush sleeps `MS` milliseconds first
//!     (a slow kernel / slow peer stand-in);
//!   - `short@N`: the N-th flush writes at most one byte (a pathological
//!     short write — the buffering must resume cleanly);
//!   - `reset@N`: the N-th flush treats the connection as reset by the
//!     peer (the `conn.dead` path — completions for it are dropped and
//!     the registry must still reconcile).
//!
//! Counters are 1-based and atomic; with a single connection issuing
//! requests sequentially the firing order is fully deterministic, which
//! is what lets the chaos tests assert *exact* registry reconciliation
//! rather than eventually-consistent bounds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What the job hook tells a worker to do with the current request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFault {
    /// Execute normally.
    None,
    /// Panic inside the worker before running the handler.
    Panic,
    /// Run the handler with a pre-cancelled execution budget.
    Cancel,
}

/// What the I/O hook tells the reactor to do with the current flush.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// Flush normally.
    None,
    /// Sleep this long before flushing.
    Delay(Duration),
    /// Write at most one byte this round.
    ShortWrite,
    /// Treat the connection as reset by the peer.
    Reset,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Rule {
    Panic,
    Cancel,
    DelayMs(u64),
    ShortWrite,
    Reset,
}

impl Rule {
    fn is_job(self) -> bool {
        matches!(self, Rule::Panic | Rule::Cancel)
    }
}

/// A parsed fault plan: rules indexed by the 1-based event ordinal they
/// fire on, plus the two live event counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// `(fire on the n-th event, what to do)`, in spec order.
    rules: Vec<(u64, Rule)>,
    jobs: AtomicU64,
    ios: AtomicU64,
}

impl FaultPlan {
    /// Parses a comma-separated spec: `panic@N`, `cancel@N`,
    /// `delay@N:MS`, `short@N`, `reset@N` (`N` is the 1-based ordinal of
    /// the job or I/O event the rule fires on).
    ///
    /// # Errors
    ///
    /// A usage-style message naming the offending rule.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("fault rule `{part}` needs the form kind@N"))?;
            let bad_n = |_| format!("fault rule `{part}`: `{rest}` is not a valid ordinal");
            let rule = match kind {
                "panic" => (rest.parse().map_err(bad_n)?, Rule::Panic),
                "cancel" => (rest.parse().map_err(bad_n)?, Rule::Cancel),
                "short" => (rest.parse().map_err(bad_n)?, Rule::ShortWrite),
                "reset" => (rest.parse().map_err(bad_n)?, Rule::Reset),
                "delay" => {
                    let (n, ms) = rest
                        .split_once(':')
                        .ok_or_else(|| format!("fault rule `{part}` needs the form delay@N:MS"))?;
                    let n = n.parse().map_err(|_| {
                        format!("fault rule `{part}`: `{n}` is not a valid ordinal")
                    })?;
                    let ms = ms.parse().map_err(|_| {
                        format!("fault rule `{part}`: `{ms}` is not a millisecond count")
                    })?;
                    (n, Rule::DelayMs(ms))
                }
                other => {
                    return Err(format!(
                    "unknown fault kind `{other}` (expected panic, cancel, delay, short or reset)"
                ))
                }
            };
            if rule.0 == 0 {
                return Err(format!("fault rule `{part}`: ordinals are 1-based"));
            }
            rules.push(rule);
        }
        Ok(FaultPlan {
            rules,
            jobs: AtomicU64::new(0),
            ios: AtomicU64::new(0),
        })
    }

    /// Advances the job counter and returns the fault (if any) for this
    /// job. Called once per request execution by the pool workers.
    pub fn next_job(&self) -> JobFault {
        let n = self.jobs.fetch_add(1, Ordering::Relaxed) + 1;
        for &(at, rule) in &self.rules {
            if at == n && rule.is_job() {
                return match rule {
                    Rule::Panic => JobFault::Panic,
                    Rule::Cancel => JobFault::Cancel,
                    _ => unreachable!("is_job filtered"),
                };
            }
        }
        JobFault::None
    }

    /// Advances the I/O counter and returns the fault (if any) for this
    /// flush. Called once per connection flush that has pending bytes.
    pub fn next_io(&self) -> IoFault {
        let n = self.ios.fetch_add(1, Ordering::Relaxed) + 1;
        for &(at, rule) in &self.rules {
            if at == n && !rule.is_job() {
                return match rule {
                    Rule::DelayMs(ms) => IoFault::Delay(Duration::from_millis(ms)),
                    Rule::ShortWrite => IoFault::ShortWrite,
                    Rule::Reset => IoFault::Reset,
                    _ => unreachable!("!is_job filtered"),
                };
            }
        }
        IoFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_on_their_ordinal_and_only_there() {
        let plan = FaultPlan::parse("panic@2,cancel@4").unwrap();
        assert_eq!(plan.next_job(), JobFault::None);
        assert_eq!(plan.next_job(), JobFault::Panic);
        assert_eq!(plan.next_job(), JobFault::None);
        assert_eq!(plan.next_job(), JobFault::Cancel);
        assert_eq!(plan.next_job(), JobFault::None);
    }

    #[test]
    fn io_and_job_counters_are_independent() {
        let plan = FaultPlan::parse("panic@1,reset@1,delay@2:50,short@3").unwrap();
        // Job events never see the I/O rules and vice versa.
        assert_eq!(plan.next_io(), IoFault::Reset);
        assert_eq!(plan.next_job(), JobFault::Panic);
        assert_eq!(plan.next_io(), IoFault::Delay(Duration::from_millis(50)));
        assert_eq!(plan.next_io(), IoFault::ShortWrite);
        assert_eq!(plan.next_io(), IoFault::None);
        assert_eq!(plan.next_job(), JobFault::None);
    }

    #[test]
    fn malformed_specs_are_rejected_with_the_offending_rule() {
        for bad in [
            "panic",
            "panic@x",
            "panic@0",
            "delay@1",
            "delay@1:x",
            "warp@1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad}");
        }
        // The empty spec is a valid no-op plan.
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan.next_job(), JobFault::None);
        assert_eq!(plan.next_io(), IoFault::None);
    }
}
