//! The production transport behind `sna serve --listen`: a std-only
//! connection-multiplexing reactor.
//!
//! One thread owns every socket. Nonblocking listener + connections are
//! driven by `poll(2)` through the thin FFI shim in [`sys`] (the build
//! environment has no `libc` crate, let alone mio/tokio — the shim
//! declares the five POSIX calls the reactor needs and nothing else).
//! Request *execution* never runs on the reactor thread: complete lines
//! are handed to a [`WorkerPool`] and the responses come back through a
//! completion queue plus a self-pipe wakeup, so a slow `optimize` only
//! occupies a worker while the reactor keeps accepting, reading and
//! flushing everyone else.
//!
//! What the reactor owns and enforces:
//!
//! * **Bounded accept** — past [`ServerConfig::max_conns`] concurrent
//!   connections a new peer gets one line of JSON
//!   (`{"ok":false,"error":"server at capacity"}`) and an immediate
//!   close, instead of a silently spawned thread (the PR 2 wart) or a
//!   hang. Counted as `rejected`.
//! * **Slow-client backpressure** — each connection has a write queue;
//!   when it exceeds [`ServerConfig::write_buf_cap`] unflushed bytes (or
//!   [`ServerConfig::max_pipeline`] requests are in flight) the reactor
//!   stops *reading* that peer until it drains, so a client that never
//!   reads its responses cannot grow server memory: at most one line
//!   buffer, one capped write queue, and a bounded pipeline per
//!   connection. Counted as `backpressured` (once per pause).
//! * **Idle timeouts** — a connection with no in-flight work and no
//!   activity for [`ServerConfig::idle_timeout`] is evicted
//!   (`timed_out`).
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] (or SIGTERM via
//!   [`ServerHandle::install_termination_handler`]) starts a drain: no
//!   new connections, in-flight requests finish and flush, late request
//!   lines are answered with `{"ok":false,"error":"server draining"}`,
//!   and the loop exits once every connection is quiescent or
//!   [`ServerConfig::drain_timeout`] expires. Worker threads are joined
//!   before [`ServerHandle::join`] returns — shutdown is deterministic,
//!   nothing stays detached.
//!
//! Every lifecycle transition lands in the shared [`StatsRegistry`], so
//! the `stats` verb can report the transport's behaviour next to the
//! per-verb latency histograms.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::CompileCache;
use crate::fault::{FaultPlan, IoFault, JobFault};
use crate::pool::{default_jobs, WorkerPool};
use crate::proto::{
    self, capacity_error_line, draining_error_line, handle_line_untrusted_stats_limited,
    internal_error_line, oversize_error_line, ExecLimits,
};
use crate::stats::{Counter, StatsRegistry};

/// Thin `libc`-free FFI shim over the POSIX calls the reactor needs:
/// `poll`, `pipe`, `fcntl` (to make the pipe nonblocking), raw-fd
/// `read`/`write` (the self-pipe), `close`, and `signal`. This module is
/// the only place in the workspace allowed to use `unsafe` — every
/// wrapper is a safe function over one syscall, with the constants
/// written for Linux (the deployment target; the BSD/macOS values that
/// differ are cfg-gated).
#[allow(unsafe_code)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::io;

    /// `struct pollfd` from `poll(2)`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[cfg(target_os = "linux")]
    type Nfds = std::ffi::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type Nfds = std::ffi::c_uint;

    /// `sighandler_t`.
    pub type SigHandler = extern "C" fn(c_int);
    pub const SIGTERM: c_int = 15;

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: c_int = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: c_int = 0x0004;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: Nfds, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn signal(signum: c_int, handler: SigHandler) -> isize;
    }

    /// `poll(2)`: blocks up to `timeout_ms` (−1 = forever) for events.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: fds is a valid, exclusively borrowed slice of
        // repr(C) pollfd; the kernel writes only `revents`.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as Nfds, timeout_ms) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }

    /// A nonblocking pipe: `(read_fd, write_fd)`.
    pub fn make_pipe() -> io::Result<(i32, i32)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: fds is a valid 2-element array for pipe(2) to fill.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        for &fd in &fds {
            if let Err(e) = set_nonblocking(fd) {
                close_fd(fds[0]);
                close_fd(fds[1]);
                return Err(e);
            }
        }
        Ok((fds[0], fds[1]))
    }

    fn set_nonblocking(fd: c_int) -> io::Result<()> {
        // SAFETY: plain fcntl on an owned fd.
        let flags = unsafe { fcntl(fd, F_GETFL, 0) };
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: as above.
        if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Best-effort single-byte write (the self-pipe wakeup; a full pipe
    /// already guarantees the reactor will wake, so EAGAIN is fine).
    /// Async-signal-safe: one `write(2)`, no allocation.
    pub fn write_byte(fd: i32) {
        let byte = [1u8];
        // SAFETY: one byte from a live stack buffer to an open fd.
        unsafe { write(fd, byte.as_ptr().cast(), 1) };
    }

    /// Drains every pending byte from a nonblocking fd.
    pub fn drain_fd(fd: i32) {
        let mut buf = [0u8; 256];
        loop {
            // SAFETY: buf is a valid exclusively-owned buffer.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }

    /// `close(2)`, errors ignored (only used on fds this module made).
    pub fn close_fd(fd: i32) {
        // SAFETY: closing an fd owned by the caller.
        unsafe { close(fd) };
    }

    /// Installs a signal handler (`signal(2)`).
    pub fn install_signal(signum: c_int, handler: SigHandler) -> io::Result<()> {
        // SAFETY: handler is a valid extern "C" fn for the lifetime of
        // the process (a plain fn item).
        if unsafe { signal(signum, handler) } == -1 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }
}

/// Knobs of the event-loop transport (the `sna serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrent connections; peers past the cap get a JSON
    /// `server at capacity` error and an immediate close.
    pub max_conns: usize,
    /// A connection with no in-flight request and no read/write
    /// activity for this long is evicted.
    pub idle_timeout: Duration,
    /// On shutdown, how long in-flight requests and unflushed responses
    /// get to finish before connections are closed forcibly.
    pub drain_timeout: Duration,
    /// Per-connection unflushed-response cap in bytes; past it the
    /// peer's reads are paused (slow-client backpressure).
    pub write_buf_cap: usize,
    /// Per-connection cap on requests in flight at once (pipelining
    /// depth); past it reads pause until responses complete.
    pub max_pipeline: usize,
    /// Worker threads executing requests (0 = available parallelism).
    pub workers: usize,
    /// Server-wide per-request execution cap (`--request-timeout`);
    /// requests may ask for *less* via `timeout_ms` but never more.
    /// `None` means unbounded unless a request bounds itself.
    pub request_timeout: Option<Duration>,
    /// Deterministic fault injection (`--fault-plan`); `None` in normal
    /// operation. See [`FaultPlan`].
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 256,
            idle_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(5),
            write_buf_cap: 1 << 20,
            max_pipeline: 64,
            workers: 0,
            request_timeout: None,
            fault_plan: None,
        }
    }
}

/// The self-pipe: how workers, [`ServerHandle::shutdown`] and the
/// SIGTERM handler interrupt a blocking `poll`.
#[derive(Debug)]
struct Wake {
    read_fd: i32,
    write_fd: i32,
}

impl Wake {
    fn notify(&self) {
        sys::write_byte(self.write_fd);
    }
    fn drain(&self) {
        sys::drain_fd(self.read_fd);
    }
}

impl Drop for Wake {
    fn drop(&mut self) {
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

/// Signal-handler plumbing: `signal(2)` handlers cannot capture state,
/// so the wake-pipe fd and the shutdown flag live in process globals.
/// One server per process installs them (the CLI); in-process tests use
/// [`ServerHandle::shutdown`], which goes through the handle's own flag.
static SIGNAL_WAKE_FD: AtomicI32 = AtomicI32::new(-1);
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_termination_signal(_sig: std::ffi::c_int) {
    // Async-signal-safe: two atomic stores and one write(2).
    SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    let fd = SIGNAL_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        sys::write_byte(fd);
    }
}

/// A running event-loop server. Dropping the handle shuts the server
/// down and joins it — nothing detaches.
#[derive(Debug)]
pub struct ServerHandle {
    wake: Arc<Wake>,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<io::Result<()>>>,
    local_addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (useful with `:0` listeners).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins a graceful drain: in-flight requests finish and flush,
    /// late requests are refused, then the reactor exits. Idempotent;
    /// returns immediately (use [`join`](Self::join) to wait).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake.notify();
    }

    /// Waits for the reactor (and its workers) to exit.
    ///
    /// # Errors
    ///
    /// The reactor's I/O error, if it died on one, or a synthesized
    /// error if the server thread panicked.
    pub fn join(mut self) -> io::Result<()> {
        self.join_inner()
    }

    /// [`shutdown`](Self::shutdown) then [`join`](Self::join).
    ///
    /// # Errors
    ///
    /// Same as [`join`](Self::join).
    pub fn shutdown_and_join(self) -> io::Result<()> {
        self.shutdown();
        self.join()
    }

    /// Routes SIGTERM to this server's graceful drain (the production
    /// `kill -TERM` path). Process-global: the last installed server
    /// wins; in-process tests should prefer [`shutdown`](Self::shutdown).
    ///
    /// # Errors
    ///
    /// `signal(2)` failure.
    pub fn install_termination_handler(&self) -> io::Result<()> {
        SIGNAL_WAKE_FD.store(self.wake.write_fd, Ordering::SeqCst);
        sys::install_signal(sys::SIGTERM, on_termination_signal)
    }

    fn join_inner(&mut self) -> io::Result<()> {
        match self.thread.take() {
            None => Ok(()),
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("server reactor thread panicked"))),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
            let _ = self.join_inner();
        }
    }
}

/// Spawns the reactor on its own thread and returns the handle that
/// owns its lifecycle. The listener is switched to nonblocking mode;
/// `cache` and `stats` are shared with every worker.
///
/// # Errors
///
/// Listener setup or self-pipe creation failures.
pub fn spawn_server(
    listener: TcpListener,
    cache: Arc<CompileCache>,
    stats: Arc<StatsRegistry>,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let (read_fd, write_fd) = sys::make_pipe()?;
    let wake = Arc::new(Wake { read_fd, write_fd });
    let shutdown = Arc::new(AtomicBool::new(false));
    let thread = {
        let wake = Arc::clone(&wake);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("sna-serve-reactor".to_string())
            .spawn(move || run_reactor(&listener, &cache, &stats, &config, &wake, &shutdown))?
    };
    Ok(ServerHandle {
        wake,
        shutdown,
        thread: Some(thread),
        local_addr,
    })
}

/// One request handed to the worker pool.
struct Job {
    token: u64,
    seq: u64,
    line: String,
}

/// Finished responses coming back from the workers:
/// `(connection token, request seq, response bytes)`.
type CompletionQueue = Arc<Mutex<Vec<(u64, u64, Vec<u8>)>>>;

/// Guarantees exactly one completion per submitted job, panic or not.
///
/// The reactor decrements `conn.inflight` once per completion; a job
/// whose handler panicked without one would leak that slot forever — the
/// connection could never drain and the peer would hang waiting for a
/// response that was silently dropped. The guard is armed with a
/// pre-built `internal error` line *before* any fallible work; the happy
/// path replaces it via [`complete`](CompletionGuard::complete), and the
/// unwind path (`Drop` during a panic, after `catch_unwind` in the pool
/// re-enters it) delivers the fallback and counts the crash.
struct CompletionGuard<'a> {
    completions: &'a CompletionQueue,
    wake: &'a Wake,
    stats: &'a StatsRegistry,
    token: u64,
    seq: u64,
    fallback: Option<Vec<u8>>,
}

impl CompletionGuard<'_> {
    /// Delivers the real response and disarms the fallback.
    fn complete(mut self, bytes: Vec<u8>) {
        self.fallback = None;
        self.completions
            .lock()
            .expect("completion queue lock")
            .push((self.token, self.seq, bytes));
        self.wake.notify();
    }
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let Some(fallback) = self.fallback.take() else {
            return; // completed normally
        };
        self.stats.bump(Counter::Panics);
        self.stats.bump(Counter::Errors);
        // Fallible locking: this Drop runs while unwinding, and a panic
        // here would abort the process. A poisoned queue means the
        // reactor side is already gone; dropping the response is fine.
        if let Ok(mut queue) = self.completions.lock() {
            queue.push((self.token, self.seq, fallback));
        }
        self.wake.notify();
    }
}

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed as complete lines.
    read_buf: Vec<u8>,
    /// Serialized responses queued for the socket; `written` bytes of
    /// the front are already sent.
    write_buf: Vec<u8>,
    written: usize,
    /// Completed responses waiting for their turn (responses go out in
    /// request order even when workers finish out of order).
    pending_out: BTreeMap<u64, Vec<u8>>,
    /// Next sequence number to assign / to flush.
    next_seq: u64,
    next_flush: u64,
    /// Requests submitted to workers, not yet completed.
    inflight: usize,
    /// Reads paused by backpressure (write queue or pipeline cap).
    paused: bool,
    /// Peer EOF seen, or the connection decided to close after flushing.
    read_closed: bool,
    /// Unrecoverable socket error: drop everything.
    dead: bool,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending_out: BTreeMap::new(),
            next_seq: 0,
            next_flush: 0,
            inflight: 0,
            paused: false,
            read_closed: false,
            dead: false,
            last_activity: now,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// Nothing queued, nothing running: safe to close.
    fn quiescent(&self) -> bool {
        self.inflight == 0 && self.pending_out.is_empty() && self.unflushed() == 0
    }

    /// Queues a reactor-generated response (refusals) in sequence order.
    fn push_direct(&mut self, line: String) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending_out.insert(seq, line.into_bytes());
    }
}

/// Reads until the socket would block, the peer EOFs, or a full line
/// buffer is pending (the consumer caps are what bound memory — unread
/// bytes stay in the kernel's receive buffer and TCP flow control does
/// the rest).
fn read_socket(conn: &mut Conn, now: Instant) {
    let mut chunk = [0u8; 16 * 1024];
    while (conn.read_buf.len() as u64) < proto::MAX_LINE_BYTES {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&chunk[..n]);
                conn.last_activity = now;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Consumes complete lines from the read buffer: submits them to the
/// workers (normal operation) or refuses them inline (draining). Stops
/// at the pipeline cap so a pipelining flood cannot queue unbounded
/// work.
fn extract_lines(
    conn: &mut Conn,
    token: u64,
    pool: &WorkerPool<Job>,
    stats: &StatsRegistry,
    cfg: &ServerConfig,
    draining: bool,
) {
    loop {
        if !draining && conn.inflight >= cfg.max_pipeline {
            break;
        }
        let Some(pos) = conn.read_buf.iter().position(|&b| b == b'\n') else {
            break;
        };
        let raw: Vec<u8> = conn.read_buf.drain(..=pos).collect();
        let text = String::from_utf8_lossy(&raw);
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        if draining {
            stats.bump(Counter::Requests);
            stats.bump(Counter::Errors);
            conn.push_direct(draining_error_line(proto::request_id(line)));
        } else {
            let seq = conn.next_seq;
            conn.next_seq += 1;
            conn.inflight += 1;
            pool.submit(Job {
                token,
                seq,
                line: line.to_string(),
            });
        }
    }
    // A full line buffer with no newline anywhere is one over-long
    // request: answer once, flush, hang up (same behaviour as the
    // stdio transport).
    if conn.read_buf.len() as u64 >= proto::MAX_LINE_BYTES
        && !conn.read_buf.contains(&b'\n')
        && !conn.read_closed
    {
        stats.bump(Counter::Requests);
        stats.bump(Counter::Errors);
        conn.push_direct(oversize_error_line());
        conn.read_buf.clear();
        conn.read_closed = true;
    }
}

/// Moves in-order completed responses into the write queue and writes
/// as much as the socket accepts.
///
/// `fault` is the I/O fault hook: consulted once per flush that has
/// pending bytes, it can delay the flush, truncate it to a pathological
/// one-byte short write, or treat the connection as reset by the peer.
fn flush_conn(conn: &mut Conn, now: Instant, fault: Option<&FaultPlan>) {
    if conn.dead {
        return; // a dead (or injected-reset) connection delivers nothing
    }
    while let Some(bytes) = conn.pending_out.remove(&conn.next_flush) {
        conn.write_buf.extend_from_slice(&bytes);
        conn.next_flush += 1;
    }
    let mut short_write = false;
    if conn.unflushed() > 0 {
        if let Some(plan) = fault {
            match plan.next_io() {
                IoFault::None => {}
                IoFault::Delay(pause) => std::thread::sleep(pause),
                IoFault::ShortWrite => short_write = true,
                IoFault::Reset => {
                    conn.dead = true;
                    return;
                }
            }
        }
    }
    while conn.written < conn.write_buf.len() {
        let end = if short_write {
            conn.written + 1
        } else {
            conn.write_buf.len()
        };
        match (&conn.stream).write(&conn.write_buf[conn.written..end]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.written += n;
                conn.last_activity = now;
                if short_write {
                    break; // the rest waits for the next poll round
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.written == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.written = 0;
    } else if conn.written > 64 * 1024 {
        // Reclaim flushed prefix so a long-lived slow drain does not
        // hold peak memory.
        conn.write_buf.drain(..conn.written);
        conn.written = 0;
    }
}

/// Recomputes the backpressure pause, counting engage transitions.
fn update_pause(conn: &mut Conn, stats: &StatsRegistry, cfg: &ServerConfig) {
    let should_pause = conn.unflushed() >= cfg.write_buf_cap || conn.inflight >= cfg.max_pipeline;
    if should_pause && !conn.paused {
        stats.bump(Counter::Backpressured);
    }
    conn.paused = should_pause;
}

/// Accepts every pending connection, rejecting past the capacity cap.
fn accept_pending(
    listener: &TcpListener,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stats: &StatsRegistry,
    cfg: &ServerConfig,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Responses are small and latency-sensitive; without
                // this, Nagle holds a response fragment hostage to the
                // peer's delayed ACK (~40ms stalls on pipelined loads).
                let _ = stream.set_nodelay(true);
                if conns.len() >= cfg.max_conns {
                    stats.bump(Counter::Rejected);
                    // One best-effort line so the peer learns *why*; a
                    // freshly accepted socket's send buffer is empty, so
                    // the nonblocking write virtually always lands.
                    let _ = (&stream).write(capacity_error_line().as_bytes());
                    continue; // drop → close
                }
                stats.bump(Counter::Accepted);
                let token = *next_token;
                *next_token += 1;
                conns.insert(token, Conn::new(stream, now));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection accept failures (ECONNABORTED
            // etc.): retry on the next poll round.
            Err(_) => break,
        }
    }
}

/// The next poll timeout: the soonest idle/drain deadline, or forever
/// (the self-pipe interrupts any wait).
fn poll_timeout_ms(
    conns: &HashMap<u64, Conn>,
    draining: bool,
    drain_deadline: Option<Instant>,
    cfg: &ServerConfig,
    now: Instant,
) -> i32 {
    let mut deadline: Option<Instant> = if draining { drain_deadline } else { None };
    if !draining {
        for conn in conns.values() {
            if conn.inflight == 0 {
                let d = conn.last_activity + cfg.idle_timeout;
                deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
            }
        }
    }
    match deadline {
        None => -1,
        Some(d) => {
            let ms = d.saturating_duration_since(now).as_millis();
            i32::try_from(ms.clamp(1, 60_000)).unwrap_or(60_000)
        }
    }
}

fn run_reactor(
    listener: &TcpListener,
    cache: &Arc<CompileCache>,
    stats: &Arc<StatsRegistry>,
    cfg: &ServerConfig,
    wake: &Arc<Wake>,
    shutdown: &Arc<AtomicBool>,
) -> io::Result<()> {
    let completions: CompletionQueue = Arc::default();
    let workers = if cfg.workers == 0 {
        default_jobs()
    } else {
        cfg.workers
    };
    let pool = {
        let cache = Arc::clone(cache);
        let stats = Arc::clone(stats);
        let completions = Arc::clone(&completions);
        let wake = Arc::clone(wake);
        let fault = cfg.fault_plan.clone();
        let limits = ExecLimits {
            request_timeout: cfg.request_timeout,
            pre_cancelled: false,
        };
        WorkerPool::new(workers, move |job: Job| {
            // Armed before anything that can panic: whatever happens
            // below, the reactor gets exactly one completion for (token,
            // seq) and the peer gets a structured response.
            let guard = CompletionGuard {
                completions: &completions,
                wake: &wake,
                stats: &stats,
                token: job.token,
                seq: job.seq,
                fallback: Some(internal_error_line(proto::request_id(&job.line)).into_bytes()),
            };
            let mut limits = limits;
            match fault.as_deref().map_or(JobFault::None, FaultPlan::next_job) {
                JobFault::None => {}
                JobFault::Cancel => limits.pre_cancelled = true,
                JobFault::Panic => {
                    // `handle` never runs for this request, so count its
                    // arrival here; the guard's Drop counts the crash and
                    // delivers the internal-error line.
                    stats.bump(Counter::Requests);
                    panic!("injected fault: worker panic");
                }
            }
            let mut bytes = handle_line_untrusted_stats_limited(&cache, &stats, &limits, &job.line)
                .to_compact()
                .into_bytes();
            bytes.push(b'\n');
            guard.complete(bytes);
        })
    };

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = 0u64;
    let mut draining = false;
    let mut drain_deadline: Option<Instant> = None;

    loop {
        // 1. Build the poll set: self-pipe, listener (while accepting),
        //    then every connection in a stable order.
        let mut pfds = Vec::with_capacity(2 + conns.len());
        pfds.push(sys::PollFd {
            fd: wake.read_fd,
            events: sys::POLLIN,
            revents: 0,
        });
        let listener_polled = !draining;
        if listener_polled {
            pfds.push(sys::PollFd {
                fd: listener.as_raw_fd(),
                events: sys::POLLIN,
                revents: 0,
            });
        }
        let conn_base = pfds.len();
        let tokens: Vec<u64> = conns.keys().copied().collect();
        for &token in &tokens {
            let conn = &conns[&token];
            let mut events = 0i16;
            if !conn.read_closed && (!conn.paused || draining) {
                events |= sys::POLLIN;
            }
            if conn.unflushed() > 0 {
                events |= sys::POLLOUT;
            }
            pfds.push(sys::PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }

        let timeout = poll_timeout_ms(&conns, draining, drain_deadline, cfg, Instant::now());
        match sys::poll_fds(&mut pfds, timeout) {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
        let now = Instant::now();

        // 2. Wakeups: worker completions and/or a shutdown request.
        wake.drain();
        if !draining && (shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst))
        {
            draining = true;
            drain_deadline = Some(now + cfg.drain_timeout);
        }
        for (token, seq, bytes) in completions.lock().expect("completion queue lock").drain(..) {
            if let Some(conn) = conns.get_mut(&token) {
                conn.pending_out.insert(seq, bytes);
                conn.inflight -= 1;
            }
            // A completion for a connection that died mid-request is
            // dropped — the client is gone.
        }

        // 3. Flush responses freed by completions; unpause drained peers
        //    *before* reading so newly freed capacity applies this round.
        for conn in conns.values_mut() {
            flush_conn(conn, now, cfg.fault_plan.as_deref());
            update_pause(conn, stats, cfg);
        }

        // 4. New connections.
        if listener_polled && pfds[1].revents != 0 {
            accept_pending(listener, &mut conns, &mut next_token, stats, cfg, now);
        }

        // 5. Socket reads, gated by the pause flag.
        for (i, &token) in tokens.iter().enumerate() {
            let revents = pfds[conn_base + i].revents;
            if revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) == 0 {
                continue;
            }
            let conn = conns.get_mut(&token).expect("token is live");
            if !conn.dead && !conn.read_closed && (!conn.paused || draining) {
                read_socket(conn, now);
            }
        }

        // 6. Turn buffered bytes into work (or refusals while draining).
        for (&token, conn) in &mut conns {
            if !conn.dead && (!conn.paused || draining) {
                extract_lines(conn, token, &pool, stats, cfg, draining);
            }
        }

        // 7. Flush direct refusals and anything that raced in; then
        //    recompute backpressure with the post-read queue sizes.
        for conn in conns.values_mut() {
            flush_conn(conn, now, cfg.fault_plan.as_deref());
            update_pause(conn, stats, cfg);
        }

        // 8. Closures: dead sockets, finished EOF peers, idle evictions,
        //    and quiescent connections during a drain.
        let mut to_close: Vec<(u64, Option<Counter>)> = Vec::new();
        for (&token, conn) in &conns {
            if conn.dead || (conn.read_closed && conn.quiescent()) {
                to_close.push((token, None));
            } else if draining && conn.quiescent() {
                to_close.push((token, Some(Counter::Drained)));
            } else if !draining
                && conn.inflight == 0
                && now.duration_since(conn.last_activity) >= cfg.idle_timeout
            {
                to_close.push((token, Some(Counter::TimedOut)));
            }
        }
        for (token, reason) in to_close {
            conns.remove(&token);
            if let Some(reason) = reason {
                stats.bump(reason);
            }
            stats.bump(Counter::Closed);
        }

        // 9. Drain exit: everyone quiescent, or time is up.
        if draining {
            let expired = drain_deadline.is_some_and(|d| now >= d);
            if conns.is_empty() || expired {
                for _ in conns.drain() {
                    stats.bump(Counter::Closed);
                }
                break;
            }
        }
    }
    // Dropping the pool joins every worker: by the time join() returns
    // to the caller, no request is still executing anywhere.
    drop(pool);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert!(cfg.max_conns >= 64);
        assert!(cfg.write_buf_cap >= 64 * 1024);
        assert!(cfg.max_pipeline >= 1);
    }

    #[test]
    fn self_pipe_wakes_and_drains() {
        let (r, w) = sys::make_pipe().unwrap();
        let wake = Wake {
            read_fd: r,
            write_fd: w,
        };
        wake.notify();
        wake.notify();
        let mut pfds = [sys::PollFd {
            fd: r,
            events: sys::POLLIN,
            revents: 0,
        }];
        assert_eq!(sys::poll_fds(&mut pfds, 1000).unwrap(), 1);
        assert!(pfds[0].revents & sys::POLLIN != 0);
        wake.drain();
        // Drained: poll times out immediately-ish with no event.
        let mut pfds = [sys::PollFd {
            fd: r,
            events: sys::POLLIN,
            revents: 0,
        }];
        assert_eq!(sys::poll_fds(&mut pfds, 10).unwrap(), 0);
    }

    #[test]
    fn spawn_and_shutdown_with_no_connections_is_immediate() {
        let Ok(listener) = TcpListener::bind("127.0.0.1:0") else {
            return; // sandboxed environments may forbid binding
        };
        let handle = spawn_server(
            listener,
            Arc::new(CompileCache::new()),
            Arc::new(StatsRegistry::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let started = Instant::now();
        handle.shutdown_and_join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
