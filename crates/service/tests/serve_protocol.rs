//! Protocol round-trips: a scripted client feeds request lines through
//! [`sna_service::serve`] exactly as `sna serve` does over stdin/stdout
//! (the CLI passes locked stdio to this same function), and over a real
//! TCP socket via the event-loop transport ([`sna_service::spawn_server`]).
//! Every response line must parse as JSON; malformed requests must answer
//! with an error instead of killing the server. The transport-specific
//! behaviours (backpressure, drain, idle eviction, capacity) live in
//! `tests/event_loop.rs`.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::sync::Arc;

use sna_service::{serve, spawn_server, CompileCache, Json, ServerConfig, StatsRegistry};

const SRC: &str = r"input x in [-1, 1];\ny = 0.5*x;\noutput y;\n";

fn run_session(lines: &[String]) -> (Vec<Json>, sna_service::ServeReport) {
    let input = lines.join("\n") + "\n";
    let cache = CompileCache::new();
    let mut output = Vec::new();
    let report = serve(Cursor::new(input.into_bytes()), &mut output, &cache).unwrap();
    let text = String::from_utf8(output).unwrap();
    let responses = text
        .lines()
        .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("unparsable response {line}: {e}")))
        .collect();
    (responses, report)
}

#[test]
fn full_round_trip_covers_every_verb_and_reports_cache_transitions() {
    let lines = vec![
        format!(r#"{{"id": 1, "cmd": "parse", "source": "{SRC}"}}"#),
        format!(r#"{{"id": 2, "cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#),
        format!(r#"{{"id": 3, "cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#),
        format!(r#"{{"id": 4, "cmd": "optimize", "source": "{SRC}", "method": "waterfill"}}"#),
        format!(r#"{{"id": 5, "cmd": "synth", "source": "{SRC}", "bits": 10}}"#),
        format!(
            r#"{{"id": 6, "cmd": "simulate", "source": "{SRC}", "bits": 8, "paths": 20000, "seed": 7, "pdf": false}}"#
        ),
        r#"{"id": 7, "cmd": "stats"}"#.to_string(),
    ];
    let (responses, report) = run_session(&lines);
    assert_eq!(responses.len(), 7);
    assert_eq!(report.requests, 7);
    assert_eq!(report.errors, 0);

    for (k, resp) in responses.iter().enumerate() {
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert_eq!(resp.get("id").and_then(Json::as_f64), Some((k + 1) as f64));
        assert!(resp.get("elapsed_us").is_some());
    }
    // parse → structural facts; it also warms the cache (miss)…
    let parse = responses[0].get("result").unwrap();
    assert_eq!(
        parse.get("is_combinational").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        responses[0].get("cache").and_then(Json::as_str),
        Some("miss")
    );
    // …so both analyzes hit, and the repeat returns identical reports.
    assert_eq!(
        responses[1].get("cache").and_then(Json::as_str),
        Some("hit")
    );
    assert_eq!(
        responses[2].get("cache").and_then(Json::as_str),
        Some("hit")
    );
    assert_eq!(
        responses[1].get("result").unwrap().to_compact(),
        responses[2].get("result").unwrap().to_compact(),
        "cached analyze must be bit-identical to the cold one"
    );
    // optimize → word lengths under budget
    let opt = responses[3].get("result").unwrap();
    assert!(opt.get("budget").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(opt.get("results").unwrap().get("waterfill").is_some());
    // synth → a cost report
    let synth = responses[4].get("result").unwrap();
    assert!(
        synth
            .get("cost")
            .unwrap()
            .get("area_um2")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    // simulate → empirical statistics next to the analytic prediction,
    // served from the same cached model (hit, not a recompile).
    let sim = responses[5].get("result").unwrap();
    assert_eq!(sim.get("engine").and_then(Json::as_str), Some("simulate"));
    assert_eq!(sim.get("paths").and_then(Json::as_f64), Some(20000.0));
    assert_eq!(sim.get("seed").and_then(Json::as_f64), Some(7.0));
    assert_eq!(
        responses[5].get("cache").and_then(Json::as_str),
        Some("hit")
    );
    let Json::Arr(sim_outputs) = sim.get("outputs").unwrap() else {
        panic!("outputs must be an array");
    };
    let sim_out = &sim_outputs[0];
    assert_eq!(sim_out.get("output").and_then(Json::as_str), Some("y"));
    assert!(
        sim_out
            .get("empirical")
            .unwrap()
            .get("variance")
            .and_then(Json::as_f64)
            .unwrap()
            > 0.0
    );
    assert!(sim_out.get("mean_gap").unwrap().get("abs").is_some());
    // stats → cache block: one entry, exactly one miss for the shared
    // source; and the registry's per-verb histograms ride along.
    let stats = responses[6].get("result").unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("misses").and_then(Json::as_f64), Some(1.0));
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(5.0));
    let counters = stats.get("counters").unwrap();
    assert_eq!(counters.get("requests").and_then(Json::as_f64), Some(7.0));
    let verbs = stats.get("verbs").unwrap();
    assert_eq!(
        verbs
            .get("analyze")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64),
        Some(2.0)
    );
    assert_eq!(
        verbs
            .get("simulate")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    // The engine-time bucket proves the simulate engine itself ran.
    assert!(
        stats.get("engines").unwrap().get("simulate").is_some(),
        "simulate must appear in the engines bucket: {stats}"
    );
}

#[test]
fn malformed_requests_get_json_errors_and_the_server_keeps_serving() {
    let lines = vec![
        "this is not json at all".to_string(),
        r#"{"cmd": 42}"#.to_string(),
        r#"{"id": "later", "cmd": "analyze"}"#.to_string(),
        format!(r#"{{"cmd": "analyze", "source": "{SRC}", "engine": "warp"}}"#),
        r#"{"cmd": "parse", "source": "input x;\noutput y = x +;\n"}"#.to_string(),
        // After five bad requests, a good one still works.
        format!(r#"{{"id": "ok", "cmd": "parse", "source": "{SRC}"}}"#),
    ];
    let (responses, report) = run_session(&lines);
    assert_eq!(responses.len(), 6);
    assert_eq!(report.errors, 5);

    for resp in &responses[..5] {
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "{resp}"
        );
        assert!(resp.get("error").and_then(Json::as_str).is_some(), "{resp}");
    }
    assert!(responses[0]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("malformed request"));
    assert!(responses[2]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("`source`"));
    // The id travels even on errors, so clients can correlate.
    assert_eq!(responses[2].get("id").and_then(Json::as_str), Some("later"));
    // Compile diagnostics arrive rendered, with their caret snippet.
    assert!(responses[4]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains('^'));

    let last = &responses[5];
    assert_eq!(last.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(last.get("id").and_then(Json::as_str), Some("ok"));
}

#[test]
fn empty_lines_are_ignored_not_answered() {
    let cache = CompileCache::new();
    let mut output = Vec::new();
    let input = "\n\n{\"cmd\": \"stats\"}\n   \n".to_string();
    let report = serve(Cursor::new(input.into_bytes()), &mut output, &cache).unwrap();
    assert_eq!(report.requests, 1);
    assert_eq!(String::from_utf8(output).unwrap().lines().count(), 1);
}

#[test]
fn oversized_request_lines_get_one_error_then_hangup_not_oom() {
    let cache = CompileCache::new();
    let mut output = Vec::new();
    // 2 MiB of bytes with no newline: past the 1 MiB line bound.
    let input = vec![b'a'; 2 << 20];
    let report = serve(Cursor::new(input), &mut output, &cache).unwrap();
    assert_eq!(report.requests, 1);
    assert_eq!(report.errors, 1);
    let text = String::from_utf8(output).unwrap();
    assert_eq!(text.lines().count(), 1);
    let resp = Json::parse(text.trim()).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert!(resp
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("exceeds"));
}

#[test]
fn capacity_zero_rejects_every_peer_with_an_error_line() {
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(_) => return,
    };
    let cache = Arc::new(CompileCache::new());
    let stats = Arc::new(StatsRegistry::new());
    let config = ServerConfig {
        max_conns: 0,
        ..ServerConfig::default()
    };
    let handle = spawn_server(listener, cache, Arc::clone(&stats), config).unwrap();
    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let resp = Json::parse(line.trim()).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("server at capacity")
    );
    // …and then EOF: the server hung up.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(sna_service::Counter::Rejected), 1);
    assert_eq!(stats.get(sna_service::Counter::Accepted), 0);
}

#[test]
fn tcp_round_trip_shares_the_cache_across_connections() {
    let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        // Sandboxed environments may forbid binding; the stdio transport
        // above already covers the protocol itself.
        Err(e) => {
            eprintln!("skipping TCP round-trip (bind failed: {e})");
            return;
        }
    };
    let cache = Arc::new(CompileCache::new());
    let stats = Arc::new(StatsRegistry::new());
    let handle =
        spawn_server(listener, Arc::clone(&cache), stats, ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let mut lookups = Vec::new();
    for _ in 0..2 {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        writeln!(
            stream,
            r#"{{"cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#
        )
        .unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Json::parse(line.trim()).unwrap();
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        lookups.push(
            resp.get("cache")
                .and_then(Json::as_str)
                .unwrap()
                .to_string(),
        );
        // Dropping the stream closes this connection; the server carries on.
    }
    handle.shutdown_and_join().unwrap();
    assert_eq!(
        lookups,
        ["miss", "hit"],
        "second connection must reuse the model"
    );
    assert_eq!(cache.stats().entries, 1);
}
