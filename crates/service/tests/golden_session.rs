//! Golden equivalence suite for the `Session`/`Engine` redesign: every
//! engine's output through the new unified path must be **byte-identical
//! (as JSON)** to the pre-redesign dispatch on all shipped
//! `examples/*.sna` datapaths.
//!
//! The reference below is a faithful port of the old `exec::analyze`
//! logic — per-engine hand-rolled dispatch, direct engine entry points,
//! its own range analysis and per-sample view construction — kept here
//! (and only here) as the frozen behavioral baseline.

use std::path::PathBuf;

use sna_core::{
    CartesianEngine, DfgEngine, EngineKind, EngineOptions, LtiEngine, NaModel, NoiseReport,
    SymbolicEngine, SymbolicOptions, UncertainInput,
};
use sna_dfg::{Dfg, LtiOptions, RangeOptions};
use sna_fixp::WlConfig;
use sna_interval::Interval;
use sna_lang::Lowered;
use sna_service::exec::{self, AnalyzeParams};
use sna_service::{CompileCache, Json};

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

// ----------------------------------------------------------------------
// The frozen pre-redesign dispatch
// ----------------------------------------------------------------------

fn reference_view(lowered: &Lowered) -> (Dfg, Vec<Interval>) {
    if lowered.dfg.is_combinational() {
        return (lowered.dfg.clone(), lowered.input_ranges.clone());
    }
    let node_ranges = lowered
        .dfg
        .ranges_auto(
            &lowered.input_ranges,
            &RangeOptions::default(),
            &LtiOptions::default(),
        )
        .expect("range analysis succeeds on the examples");
    let mut ranges = lowered.input_ranges.clone();
    ranges.extend(
        lowered
            .dfg
            .delay_nodes()
            .iter()
            .map(|d| node_ranges[d.index()]),
    );
    (lowered.dfg.combinational_view(), ranges)
}

fn reference_cartesian(lowered: &Lowered, bins: usize) -> Vec<(String, NoiseReport)> {
    assert!(lowered.dfg.is_combinational());
    let inputs: Vec<UncertainInput> = lowered
        .dfg
        .input_names()
        .iter()
        .zip(&lowered.input_ranges)
        .map(|(name, range)| {
            UncertainInput::uniform(name.clone(), range.lo(), range.hi(), bins).unwrap()
        })
        .collect();
    let engine = CartesianEngine::new(bins.max(2) * 2);
    lowered
        .dfg
        .outputs()
        .iter()
        .enumerate()
        .map(|(k, (name, _))| {
            let report = engine
                .analyze(&inputs, |ranges| {
                    lowered
                        .dfg
                        .output_ranges(ranges, &RangeOptions::default())
                        .expect("interval evaluation succeeds")[k]
                        .1
                })
                .unwrap();
            (name.clone(), report)
        })
        .collect()
}

fn reference_analyze(
    lowered: &Lowered,
    engine: EngineKind,
    bits: u8,
    bins: usize,
) -> Vec<(String, NoiseReport)> {
    let dfg = &lowered.dfg;
    let ranges = &lowered.input_ranges;
    match engine {
        EngineKind::Cartesian => reference_cartesian(lowered, bins),
        EngineKind::Na => {
            let model = NaModel::build(dfg, ranges, &LtiOptions::default()).unwrap();
            let config = WlConfig::from_ranges(dfg, ranges, bits).unwrap();
            model.evaluate(dfg, &config)
        }
        EngineKind::Auto => {
            let config = WlConfig::from_ranges(dfg, ranges, bits).unwrap();
            if dfg.is_linear() {
                LtiEngine::build(dfg, ranges, &LtiOptions::default(), bins)
                    .unwrap()
                    .analyze(dfg, &config)
                    .unwrap()
            } else {
                assert!(dfg.is_combinational());
                DfgEngine::new(EngineOptions::default().with_bins(bins))
                    .analyze(dfg, &config, ranges)
                    .unwrap()
            }
        }
        EngineKind::Lti => {
            let config = WlConfig::from_ranges(dfg, ranges, bits).unwrap();
            LtiEngine::build(dfg, ranges, &LtiOptions::default(), bins)
                .unwrap()
                .analyze(dfg, &config)
                .unwrap()
        }
        EngineKind::Dfg => {
            let (view, vranges) = reference_view(lowered);
            let config = WlConfig::from_ranges(&view, &vranges, bits).unwrap();
            DfgEngine::new(EngineOptions::default().with_bins(bins))
                .analyze(&view, &config, &vranges)
                .unwrap()
        }
        EngineKind::Symbolic => {
            let (view, vranges) = reference_view(lowered);
            let config = WlConfig::from_ranges(&view, &vranges, bits).unwrap();
            SymbolicEngine::new(SymbolicOptions {
                symbol_bins: bins,
                out_bins: bins * 2,
                ..Default::default()
            })
            .analyze(&view, &config, &vranges)
            .unwrap()
            .reports
        }
        // Monte-Carlo simulation has no independent scalar reference to
        // golden-compare against here; its own differential suite (in
        // `sna-core`) checks it bit-for-bit against the scalar
        // simulators instead.
        EngineKind::Simulate => unreachable!("simulate is not part of the golden matrix"),
    }
}

/// Renders a report list exactly like the CLI/server do — the byte-level
/// contract of this suite.
fn render(reports: &[(String, NoiseReport)]) -> String {
    Json::Arr(
        reports
            .iter()
            .map(|(name, r)| exec::report_json(name, r, true))
            .collect(),
    )
    .to_string()
}

/// Which engines each example supports (matrix mirrors the engines'
/// structural requirements: na/lti need linearity, cartesian needs a
/// combinational graph).
fn engine_matrix() -> Vec<(&'static str, Vec<EngineKind>)> {
    use EngineKind::*;
    vec![
        ("fir.sna", vec![Auto, Na, Lti, Dfg]),
        ("diffeq.sna", vec![Auto, Na, Lti, Dfg]),
        ("quadratic.sna", vec![Auto, Dfg, Symbolic, Cartesian]),
        ("rgb.sna", vec![Auto, Na, Lti, Dfg, Symbolic, Cartesian]),
    ]
}

#[test]
fn every_engine_is_byte_identical_to_the_pre_redesign_path_on_all_examples() {
    let bits = 9u8;
    let bins = 24usize;
    let cache = CompileCache::new();
    for (file, engines) in engine_matrix() {
        let source = example(file);
        let (entry, _) = cache.get_or_compile(&source).unwrap();
        let lowered = sna_lang::compile(&source).unwrap();
        for engine in engines {
            let new_path = exec::analyze(&entry, &AnalyzeParams { engine, bits, bins })
                .unwrap_or_else(|e| panic!("{file} {}: {e}", engine.name()));
            let old_path = reference_analyze(&lowered, engine, bits, bins);
            assert_eq!(
                render(&new_path),
                render(&old_path),
                "{file} {}: JSON diverged from the pre-redesign path",
                engine.name()
            );
        }
    }
}

#[test]
fn auto_provenance_is_reported_per_structure() {
    let cache = CompileCache::new();
    let (fir, _) = cache.get_or_compile(&example("fir.sna")).unwrap();
    let report = exec::analyze_report(&fir, &AnalyzeParams::default()).unwrap();
    assert_eq!(
        report.engine,
        EngineKind::Lti,
        "linear graphs auto-pick LTI"
    );

    let (quad, _) = cache.get_or_compile(&example("quadratic.sna")).unwrap();
    let report = exec::analyze_report(&quad, &AnalyzeParams::default()).unwrap();
    assert_eq!(
        report.engine,
        EngineKind::Dfg,
        "nonlinear combinational graphs fall back to histograms"
    );
}

#[test]
fn repeated_requests_reuse_the_session_artifacts() {
    // Two engines that share the gain model (na + lti) against one
    // cached entry: the model must build exactly once.
    let cache = CompileCache::new();
    let (entry, _) = cache.get_or_compile(&example("fir.sna")).unwrap();
    for engine in [EngineKind::Na, EngineKind::Lti, EngineKind::Auto] {
        exec::analyze(
            &entry,
            &AnalyzeParams {
                engine,
                bits: 10,
                bins: 32,
            },
        )
        .unwrap();
    }
    let stats = entry.session.stats();
    assert_eq!(stats.na_builds, 1, "{stats:?}");
    assert_eq!(stats.range_builds, 1, "{stats:?}");
}
