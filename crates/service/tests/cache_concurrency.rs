//! Hammers the [`CompileCache`] from many threads — the exact access
//! pattern of `sna serve --listen` (one thread per connection) and the
//! batch worker pool. Entries must be shared (`Arc::ptr_eq`), counters
//! must balance, and the lazily built NA model must come out identical
//! from every thread.

use std::collections::HashMap;
use std::sync::Arc;

use sna_service::{CacheLimits, CompileCache, CompiledEntry, Lookup};

/// A family of *structurally* distinct one-pole filters (`k` extra
/// feed-forward taps) — none of them can shape-alias another, so every
/// first compile is a deterministic miss. Coefficient-only families go
/// through the shape tier instead (tested separately below).
fn source(k: usize) -> String {
    format!(
        "input x in [-1, 1];\nt = delay y;\ny = 0.3*x + 0.5*t{};\noutput y;\n",
        " + x".repeat(k)
    )
}

#[test]
fn n_threads_on_same_and_distinct_sources_share_entries_and_balance_counters() {
    const THREADS: usize = 8;
    const ITERS: usize = 50;
    const DISTINCT: usize = 4;

    let cache = CompileCache::new();
    let sources: Vec<String> = (0..DISTINCT).map(source).collect();

    let entries: Vec<Vec<(usize, Arc<CompiledEntry>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let sources = &sources;
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for i in 0..ITERS {
                        // Interleave one shared source with the distinct
                        // ones so both contention patterns occur.
                        let k = (t + i) % DISTINCT;
                        let (entry, _) = cache.get_or_compile(&sources[k]).unwrap();
                        seen.push((k, entry));
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every thread got the *same* Arc for the same source.
    let mut canonical: HashMap<usize, Arc<CompiledEntry>> = HashMap::new();
    for (k, entry) in entries.iter().flatten() {
        let slot = canonical.entry(*k).or_insert_with(|| entry.clone());
        assert!(
            Arc::ptr_eq(slot, entry),
            "source {k} produced two distinct cache entries"
        );
    }
    assert_eq!(canonical.len(), DISTINCT);

    // Counters balance: every lookup was a hit or a miss, the entry
    // count is the number of distinct programs, and exactly one miss is
    // charged per program — racing first-compiles may duplicate the
    // *work*, but only the winning insert counts as a miss, so the
    // numbers are deterministic however the threads interleave.
    let stats = cache.stats();
    assert_eq!(stats.entries, DISTINCT);
    assert_eq!(stats.hits + stats.misses, (THREADS * ITERS) as u64);
    assert_eq!(stats.misses, DISTINCT as u64);
}

#[test]
fn concurrent_coefficient_swaps_ride_the_shape_tier() {
    // One warm skeleton, then many threads requesting coefficient-only
    // variants: every variant must come back consistent, and none may
    // charge a full-compile miss (the donor absorbs them all).
    let cache = CompileCache::new();
    let base = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x;\n";
    let (donor, _) = cache.get_or_compile(base).unwrap();
    donor.na_model().unwrap();

    let variant = |k: usize| format!("input x in [-1, 1];\nlet k = 0.5{k};\noutput y = k*x;\n");
    let donor_shape = donor.shape_fingerprint;
    std::thread::scope(|scope| {
        for t in 0..8 {
            let cache = &cache;
            let variant = &variant;
            scope.spawn(move || {
                for i in 0..20 {
                    let (entry, lookup) = cache.get_or_compile(&variant((t + i) % 4 + 1)).unwrap();
                    assert!(lookup.is_hit(), "coefficient variants never fully compile");
                    assert_eq!(entry.shape_fingerprint, donor_shape);
                    assert!(entry.na_model_built() || entry.na_model().is_ok());
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.misses, 1, "{stats:?}");
    assert!(stats.shape_hits >= 4, "{stats:?}");
    assert_eq!(stats.entries, 5, "{stats:?}");
}

#[test]
fn hot_shape_tier_entries_survive_concurrent_eviction_pressure() {
    // LRU hammer: a bounded cache under concurrent streams of one-off
    // programs (pure eviction pressure), while the main thread keeps one
    // shape-tier skeleton hot through coefficient respins. After every
    // round the donor must still be resident: each swap refreshes its
    // recency, and at most 64 distinct programs land between touches —
    // under the 128-entry cap, so a true LRU can never pick the donor.
    const ROUNDS: usize = 8;
    const THREADS: usize = 4;
    const PER_THREAD: usize = 16;

    let cache = CompileCache::with_limits(CacheLimits {
        max_entries: 128,
        ..CacheLimits::default()
    });
    let base = "input x in [-1, 1];\nlet k = 0.5;\noutput y = k*x;\n";
    let (donor, _) = cache.get_or_compile(base).unwrap();
    donor.na_model().unwrap();
    let donor_shape = donor.shape_fingerprint;

    for round in 0..ROUNDS {
        // Pressure: THREADS × PER_THREAD distinct programs, all misses.
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        let k = 1 + round * THREADS * PER_THREAD + t * PER_THREAD + i;
                        cache.get_or_compile(&source(k)).unwrap();
                    }
                });
            }
            // The hot path, concurrent with the pressure: coefficient
            // respins of the donor's shape.
            for i in 0..PER_THREAD {
                let swapped = format!(
                    "input x in [-1, 1];\nlet k = 0.5{}{i};\noutput y = k*x;\n",
                    round + 1
                );
                let (entry, lookup) = cache.get_or_compile(&swapped).unwrap();
                assert!(lookup.is_hit(), "round {round}: swap was {lookup:?}");
                assert_eq!(entry.shape_fingerprint, donor_shape);
            }
        });
        // The donor survived the round's churn.
        let (entry, lookup) = cache.get_or_compile(base).unwrap();
        assert!(
            lookup.is_hit(),
            "round {round}: the hot shape donor was evicted ({lookup:?})"
        );
        assert!(
            Arc::ptr_eq(&entry, &donor),
            "round {round}: the donor was recompiled, not retained"
        );
    }

    let stats = cache.stats();
    assert!(stats.entries <= 128, "{stats:?}");
    assert!(
        stats.evictions > 0,
        "the pressure must actually overflow the cap: {stats:?}"
    );
    assert!(stats.shape_hits >= ROUNDS as u64, "{stats:?}");
}

#[test]
fn concurrent_na_model_builds_converge_to_one_shared_model() {
    let cache = CompileCache::new();
    let src = source(0);
    let (entry, _) = cache.get_or_compile(&src).unwrap();

    let models: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let entry = entry.clone();
                scope.spawn(move || entry.na_model().unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for model in &models[1..] {
        assert!(Arc::ptr_eq(&models[0], model));
    }
}

#[test]
fn mixed_spellings_of_one_program_converge_on_one_entry() {
    let cache = CompileCache::new();
    let spellings = [
        "input x;\noutput y = 0.5*x;\n".to_string(),
        "# comment\ninput x;\noutput y = 0.5 * x;\n".to_string(),
        "input   x;\n\noutput y = 0.5*x;".to_string(),
    ];
    let entries: Vec<Arc<CompiledEntry>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let cache = &cache;
                let spellings = &spellings;
                scope.spawn(move || {
                    let (entry, _) = cache.get_or_compile(&spellings[t % 3]).unwrap();
                    entry
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for entry in &entries[1..] {
        assert!(Arc::ptr_eq(&entries[0], entry));
    }
    assert_eq!(cache.stats().entries, 1);
    // A final lookup of each spelling is now a pure source-hash hit.
    for s in &spellings {
        let (_, lookup) = cache.get_or_compile(s).unwrap();
        assert_eq!(lookup, Lookup::SourceHit);
    }
}
