//! Differential suite for the DSL growth features (vector inputs,
//! tap-index sugar, `range` override clauses): every sugared example
//! under `examples/` must produce **byte-identical** `analyze
//! --format json` output to a hand-desugared twin written with explicit
//! scalar inputs and `delay` chains, on every engine the datapath
//! structurally supports.
//!
//! This extends the golden harness (`golden_session.rs`): where that
//! suite froze the engine dispatch across the Session redesign, this
//! one freezes the *lowering* of the new surface syntax — the sugar
//! must be invisible to every analysis, down to the last bit.
//!
//! The twins are kept inline, statement-for-statement aligned with
//! their sugared files, because byte-identity relies on both programs
//! creating graph nodes in the same order (tap chains are hoisted ahead
//! of each statement exactly so that this alignment is expressible).

use std::path::PathBuf;

use sna_core::EngineKind;
use sna_dfg::Simulator;
use sna_service::exec::{self, AnalyzeParams};
use sna_service::{CompileCache, Json};

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The desugared twin of `examples/vec_dot.sna`: the vector bank becomes
/// four scalar inputs.
const VEC_DOT_DESUGARED: &str = "\
input v0 in [-1, 1];
input v1 in [-1, 1];
input v2 in [-1, 1];
input v3 in [-1, 1];
let w0 = 0.3125;
let w1 = -0.21875;
let w2 = 0.125;
let w3 = 0.0625;
acc01 = w0*v0 + w1*v1 range [-0.5, 0.5];
acc23 = w2*v2 + w3*v3;
output y = acc01 + acc23;
";

/// The desugared twin of `examples/fir_taps.sna`: explicit delay chain,
/// scalar trim inputs.
const FIR_TAPS_DESUGARED: &str = "\
input x in [-1, 1];
input trim0 in [-0.125, 0.125];
input trim1 in [-0.125, 0.125];
let c0 = 0.0625;
let c1 = 0.25;
let c2 = 0.375;
x1 = delay x;
x2 = delay x1;
x3 = delay x2;
x4 = delay x3;
core = c0*x + c1*x1 + c2*x2 + c1*x3 + c0*x4 range [-0.75, 0.75];
output y = core + trim0 - trim1;
";

/// The desugared twin of `examples/biquad.sna`: the feedback taps become
/// the classic forward-`delay` idiom.
const BIQUAD_DESUGARED: &str = "\
input x in [-0.5, 0.5];
input bias0 in [-0.0625, 0.0625];
input bias1 in [-0.0625, 0.0625];
let b0 = 0.25;
let b1 = 0.5;
let b2 = 0.25;
let a1 = 0.25;
let a2 = -0.125;
x1 = delay x;
x2 = delay x1;
yd1 = delay y;
yd2 = delay yd1;
acc = b0*x + b1*x1 + b2*x2 + a1*yd1 + a2*yd2 range [-1, 1];
y = acc + bias0 + bias1;
output y;
";

/// Each pair with the engines its structure supports (cartesian needs a
/// combinational graph).
fn pairs() -> Vec<(&'static str, &'static str, Vec<EngineKind>)> {
    use EngineKind::*;
    vec![
        (
            "vec_dot.sna",
            VEC_DOT_DESUGARED,
            vec![Auto, Na, Lti, Dfg, Symbolic, Cartesian],
        ),
        (
            "fir_taps.sna",
            FIR_TAPS_DESUGARED,
            vec![Auto, Na, Lti, Dfg, Symbolic],
        ),
        (
            "biquad.sna",
            BIQUAD_DESUGARED,
            vec![Auto, Na, Lti, Dfg, Symbolic],
        ),
    ]
}

/// Renders a report list exactly like the CLI/server do — the byte-level
/// contract of this suite (shared with the golden harness).
fn render(reports: &[(String, sna_core::NoiseReport)]) -> String {
    Json::Arr(
        reports
            .iter()
            .map(|(name, r)| exec::report_json(name, r, true))
            .collect(),
    )
    .to_string()
}

#[test]
fn sugared_and_desugared_twins_lower_to_bit_identical_graphs() {
    for (file, desugared, _) in pairs() {
        let sugar = sna_lang::compile(&example(file)).unwrap();
        let plain = sna_lang::compile(desugared).unwrap();
        assert_eq!(
            sugar.dfg.op_counts(),
            plain.dfg.op_counts(),
            "{file}: node inventories diverge"
        );
        assert_eq!(sugar.dfg.len(), plain.dfg.len(), "{file}");
        assert_eq!(&sugar.input_ranges, &plain.input_ranges, "{file}");
        // Same node ids must carry the same ops (names may differ: the
        // twin names its delay-chain statements, sugar does not).
        for ((ia, na), (_, nb)) in sugar.dfg.nodes().zip(plain.dfg.nodes()) {
            assert_eq!(na.op(), nb.op(), "{file}: node {ia} op diverges");
            assert_eq!(na.args(), nb.args(), "{file}: node {ia} args diverge");
        }
        // Range overrides landed on the same nodes.
        for (id, _) in sugar.dfg.nodes() {
            assert_eq!(
                sugar.dfg.range_override(id),
                plain.dfg.range_override(id),
                "{file}: override at {id} diverges"
            );
        }
        // Bit-identical traces on a deterministic stimulus.
        let mut a = Simulator::new(&sugar.dfg);
        let mut b = Simulator::new(&plain.dfg);
        let mut state = 0x5eed_cafe_f00d_0001u64;
        for _ in 0..64 {
            let frame: Vec<f64> = (0..sugar.dfg.n_inputs())
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
                })
                .collect();
            let ya: Vec<u64> = a
                .step(&frame)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let yb: Vec<u64> = b
                .step(&frame)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(ya, yb, "{file}: traces diverge");
        }
    }
}

#[test]
fn sugared_analyze_json_is_byte_identical_to_the_desugared_twin_on_every_engine() {
    let bits = 9u8;
    let bins = 24usize;
    let cache = CompileCache::new();
    for (file, desugared, engines) in pairs() {
        let source = example(file);
        let (sugar, _) = cache.get_or_compile(&source).unwrap();
        let (plain, _) = cache.get_or_compile(desugared).unwrap();
        // Genuinely different programs (different canonical forms) …
        assert_ne!(sugar.fingerprint, plain.fingerprint, "{file}");
        for engine in engines {
            let a = exec::analyze(&sugar, &AnalyzeParams { engine, bits, bins })
                .unwrap_or_else(|e| panic!("{file} {}: {e}", engine.name()));
            let b = exec::analyze(&plain, &AnalyzeParams { engine, bits, bins })
                .unwrap_or_else(|e| panic!("{file} twin {}: {e}", engine.name()));
            // … whose analysis output agrees to the byte.
            assert_eq!(
                render(&a),
                render(&b),
                "{file} {}: sugared vs desugared JSON diverged",
                engine.name()
            );
        }
    }
}

#[test]
fn auto_provenance_matches_between_twins() {
    let cache = CompileCache::new();
    for (file, desugared, _) in pairs() {
        let (sugar, _) = cache.get_or_compile(&example(file)).unwrap();
        let (plain, _) = cache.get_or_compile(desugared).unwrap();
        let a = exec::analyze_report(&sugar, &AnalyzeParams::default()).unwrap();
        let b = exec::analyze_report(&plain, &AnalyzeParams::default()).unwrap();
        assert_eq!(a.engine, b.engine, "{file}");
    }
}
