//! Chaos suite: the deterministic fault matrix from `--fault-plan`,
//! driven over TCP against the same reactor + worker-pool code the
//! production binary runs (the hooks are plain runtime state — nothing
//! here is `#[cfg]`-gated into existence).
//!
//! Each scenario asserts *exact* registry reconciliation, not
//! eventually-consistent bounds: the fault plans are deterministic and
//! the clients are sequential, so after a clean drain every counter has
//! one correct value. The panic and reset scenarios — the two that
//! kill things mid-flight — run five rounds on fresh servers as a
//! flake check.
//!
//! Every test binds `127.0.0.1:0`; sandboxes that forbid binding skip.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sna_service::{
    spawn_server, CompileCache, Counter, FaultPlan, Json, ServerConfig, ServerHandle, StatsRegistry,
};

const SRC: &str = r"input x in [-1, 1];\ny = 0.5*x;\noutput y;\n";

fn start(config: ServerConfig) -> Option<(ServerHandle, Arc<StatsRegistry>)> {
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("skipping chaos test (bind failed: {e})");
            return None;
        }
    };
    let stats = Arc::new(StatsRegistry::new());
    let handle = spawn_server(
        listener,
        Arc::new(CompileCache::new()),
        Arc::clone(&stats),
        config,
    )
    .unwrap();
    Some((handle, stats))
}

fn faulted(spec: &str) -> ServerConfig {
    ServerConfig {
        fault_plan: Some(Arc::new(FaultPlan::parse(spec).unwrap())),
        ..ServerConfig::default()
    }
}

fn send_line(stream: &mut TcpStream, line: &str) {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).unwrap();
    stream.flush().unwrap();
}

fn read_json(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    assert!(
        reader.read_line(&mut line).unwrap() > 0,
        "server hung up before answering"
    );
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("unparsable response {line}: {e}"))
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.local_addr()).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// The acceptance scenario: a `timeout_ms: 1` budget against a
/// million-path Monte-Carlo sweep comes back as a structured deadline
/// error almost immediately — the VM abandons the sweep at a chunk
/// checkpoint instead of finishing it — while a concurrent `analyze` on
/// another connection completes normally.
#[test]
fn a_deadline_inside_vm_simulate_answers_fast_while_analyze_completes() {
    let Some((handle, stats)) = start(ServerConfig::default()) else {
        return;
    };

    let analyze = {
        let (mut stream, mut reader) = connect(&handle);
        std::thread::spawn(move || {
            send_line(
                &mut stream,
                &format!(r#"{{"cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#),
            );
            read_json(&mut reader)
        })
    };

    let (mut stream, mut reader) = connect(&handle);
    let started = Instant::now();
    send_line(
        &mut stream,
        &format!(
            r#"{{"cmd": "simulate", "source": "{SRC}", "timeout_ms": 1, "paths": 1000000, "pdf": false}}"#
        ),
    );
    let resp = read_json(&mut reader);
    let elapsed = started.elapsed();
    assert_eq!(
        resp.get("ok").and_then(Json::as_bool),
        Some(false),
        "{resp}"
    );
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("deadline exceeded")
    );
    // <100ms is the release-build acceptance bound; debug builds get
    // slack for their slower per-chunk checkpoint spacing.
    let bound = if cfg!(debug_assertions) { 500 } else { 100 };
    assert!(
        elapsed < Duration::from_millis(bound),
        "deadline error took {elapsed:?} (bound {bound}ms)"
    );

    let concurrent = analyze.join().unwrap();
    assert_eq!(
        concurrent.get("ok").and_then(Json::as_bool),
        Some(true),
        "the unbudgeted analyze must be untouched by the neighbour's deadline: {concurrent}"
    );

    drop((stream, reader));
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::Requests), 2);
    assert_eq!(stats.get(Counter::Errors), 1);
    assert_eq!(stats.get(Counter::Timeouts), 1);
    assert_eq!(stats.get(Counter::Cancelled), 0);
    assert_eq!(stats.get(Counter::Panics), 0);
    assert_eq!(stats.in_flight(), 0);
}

/// `--request-timeout` is a server-wide cap: a request that asks for
/// *more* is clamped down to it, and a request that asks for nothing
/// still gets it.
#[test]
fn the_server_cap_bounds_requests_that_ask_for_more_or_nothing() {
    let config = ServerConfig {
        request_timeout: Some(Duration::from_millis(5)),
        ..ServerConfig::default()
    };
    let Some((handle, stats)) = start(config) else {
        return;
    };
    let (mut stream, mut reader) = connect(&handle);

    // No `timeout_ms`: the server cap alone stops the sweep.
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "simulate", "source": "{SRC}", "paths": 1000000, "pdf": false}}"#),
    );
    let capped = read_json(&mut reader);
    assert_eq!(
        capped.get("error").and_then(Json::as_str),
        Some("deadline exceeded"),
        "{capped}"
    );

    // An hour-long `timeout_ms` cannot out-ask the 5ms server cap.
    send_line(
        &mut stream,
        &format!(
            r#"{{"cmd": "simulate", "source": "{SRC}", "timeout_ms": 3600000, "paths": 1000000, "pdf": false}}"#
        ),
    );
    let clamped = read_json(&mut reader);
    assert_eq!(
        clamped.get("error").and_then(Json::as_str),
        Some("deadline exceeded"),
        "{clamped}"
    );

    // A cheap request still fits comfortably inside 5ms.
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "parse", "source": "{SRC}"}}"#),
    );
    let quick = read_json(&mut reader);
    assert_eq!(
        quick.get("ok").and_then(Json::as_bool),
        Some(true),
        "{quick}"
    );

    drop((stream, reader));
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::Requests), 3);
    assert_eq!(stats.get(Counter::Timeouts), 2);
    assert_eq!(stats.in_flight(), 0);
}

/// The panic leg of the matrix, five rounds on fresh servers: the
/// injected worker panic yields a structured `internal error` response
/// (the completion guard), the worker survives (`catch_unwind`), the
/// server keeps answering, and every counter reconciles exactly.
#[test]
fn an_injected_worker_panic_leaves_the_server_answering() {
    for round in 0..5 {
        let Some((handle, stats)) = start(faulted("panic@2")) else {
            return;
        };
        let (mut stream, mut reader) = connect(&handle);

        send_line(
            &mut stream,
            &format!(r#"{{"id": 1, "cmd": "parse", "source": "{SRC}"}}"#),
        );
        let first = read_json(&mut reader);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));

        // Job #2 panics inside the worker before the handler runs.
        send_line(
            &mut stream,
            &format!(r#"{{"id": 2, "cmd": "analyze", "source": "{SRC}", "pdf": false}}"#),
        );
        let crashed = read_json(&mut reader);
        assert_eq!(crashed.get("id").and_then(Json::as_f64), Some(2.0));
        assert_eq!(crashed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            crashed.get("error").and_then(Json::as_str),
            Some("internal error: request execution panicked"),
            "round {round}: {crashed}"
        );

        // Same connection, same pool: the worker is still alive.
        send_line(
            &mut stream,
            &format!(r#"{{"id": 3, "cmd": "parse", "source": "{SRC}"}}"#),
        );
        let after = read_json(&mut reader);
        assert_eq!(after.get("ok").and_then(Json::as_bool), Some(true));

        // Both events visible over the wire via the stats verb.
        send_line(&mut stream, r#"{"cmd": "stats"}"#);
        let report = read_json(&mut reader);
        let counters = report.get("result").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("panics").and_then(Json::as_f64), Some(1.0));
        assert_eq!(counters.get("errors").and_then(Json::as_f64), Some(1.0));

        drop((stream, reader));
        handle.shutdown_and_join().unwrap();
        assert_eq!(stats.get(Counter::Requests), 4, "round {round}");
        assert_eq!(stats.get(Counter::Errors), 1, "round {round}");
        assert_eq!(stats.get(Counter::Panics), 1, "round {round}");
        assert_eq!(stats.get(Counter::Timeouts), 0, "round {round}");
        assert_eq!(stats.in_flight(), 0, "round {round}");
        assert_eq!(stats.get(Counter::Closed), 1, "round {round}");
    }
}

/// The reset leg of the matrix, five rounds: the I/O hook kills the
/// connection at its second flush, the response in flight is dropped
/// with it, a fresh connection still works, and after the drain the
/// registry reconciles (the executed-but-undeliverable request is
/// still counted — it ran).
#[test]
fn a_connection_reset_mid_pipeline_reconciles_and_the_server_survives() {
    for round in 0..5 {
        let Some((handle, stats)) = start(faulted("reset@2")) else {
            return;
        };
        let (mut stream, mut reader) = connect(&handle);

        // Flush #1 delivers the warm response…
        send_line(
            &mut stream,
            &format!(r#"{{"id": 1, "cmd": "parse", "source": "{SRC}"}}"#),
        );
        let warm = read_json(&mut reader);
        assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));

        // …flush #2 (this response) resets the connection instead.
        send_line(
            &mut stream,
            &format!(r#"{{"id": 2, "cmd": "analyze", "source": "{SRC}", "pdf": false}}"#),
        );
        let mut rest = String::new();
        assert_eq!(
            reader.read_line(&mut rest).unwrap_or(0),
            0,
            "round {round}: expected EOF after the injected reset, got {rest:?}"
        );
        drop((stream, reader));

        // The reactor shrugged off the dead connection; new peers work.
        let (mut stream, mut reader) = connect(&handle);
        send_line(
            &mut stream,
            &format!(r#"{{"id": 3, "cmd": "parse", "source": "{SRC}"}}"#),
        );
        let fresh = read_json(&mut reader);
        assert_eq!(fresh.get("ok").and_then(Json::as_bool), Some(true));
        drop((stream, reader));

        handle.shutdown_and_join().unwrap();
        // Three requests executed (the dropped analyze included), none
        // failed, nothing panicked, and both connections closed.
        assert_eq!(stats.get(Counter::Requests), 3, "round {round}");
        assert_eq!(stats.get(Counter::Errors), 0, "round {round}");
        assert_eq!(stats.get(Counter::Panics), 0, "round {round}");
        assert_eq!(stats.get(Counter::Accepted), 2, "round {round}");
        assert_eq!(stats.get(Counter::Closed), 2, "round {round}");
        assert_eq!(stats.in_flight(), 0, "round {round}");
    }
}

/// An injected cancellation runs the request against a pre-cancelled
/// budget: it stops at its first cooperative checkpoint with the
/// structured `request cancelled` error and lands in the `cancelled`
/// counter.
#[test]
fn an_injected_cancel_stops_at_the_first_checkpoint() {
    let Some((handle, stats)) = start(faulted("cancel@1")) else {
        return;
    };
    let (mut stream, mut reader) = connect(&handle);
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "analyze", "source": "{SRC}", "pdf": false}}"#),
    );
    let resp = read_json(&mut reader);
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("request cancelled"),
        "{resp}"
    );
    // The next request runs normally — the fault was one-shot.
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "analyze", "source": "{SRC}", "pdf": false}}"#),
    );
    let next = read_json(&mut reader);
    assert_eq!(next.get("ok").and_then(Json::as_bool), Some(true), "{next}");

    drop((stream, reader));
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::Requests), 2);
    assert_eq!(stats.get(Counter::Errors), 1);
    assert_eq!(stats.get(Counter::Cancelled), 1);
    assert_eq!(stats.get(Counter::Panics), 0);
    assert_eq!(stats.in_flight(), 0);
}

/// Pathological flushing — a one-byte short write, then a delayed
/// flush — must dribble the very same bytes out: responses arrive
/// intact and parseable, just later.
#[test]
fn short_writes_and_delays_do_not_corrupt_responses() {
    let Some((handle, stats)) = start(faulted("short@1,delay@2:20")) else {
        return;
    };
    let (mut stream, mut reader) = connect(&handle);
    send_line(
        &mut stream,
        &format!(r#"{{"id": 1, "cmd": "analyze", "source": "{SRC}", "pdf": true}}"#),
    );
    let dribbled = read_json(&mut reader);
    assert_eq!(
        dribbled.get("ok").and_then(Json::as_bool),
        Some(true),
        "{dribbled}"
    );
    assert_eq!(dribbled.get("id").and_then(Json::as_f64), Some(1.0));

    send_line(
        &mut stream,
        &format!(r#"{{"id": 2, "cmd": "parse", "source": "{SRC}"}}"#),
    );
    let clean = read_json(&mut reader);
    assert_eq!(clean.get("ok").and_then(Json::as_bool), Some(true));

    drop((stream, reader));
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::Requests), 2);
    assert_eq!(stats.get(Counter::Errors), 0);
    assert_eq!(stats.in_flight(), 0);
}
