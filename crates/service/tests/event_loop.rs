//! Transport-level tests for the `poll(2)` event loop behind
//! `sna serve --listen`: concurrency, slow-client backpressure,
//! graceful drain, idle-timeout eviction, and capacity rejection —
//! each reconciled against the [`StatsRegistry`] lifecycle counters.
//!
//! Every test binds `127.0.0.1:0`; sandboxes that forbid binding skip
//! (the stdio-protocol tests in `serve_protocol.rs` still run there).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sna_service::{
    spawn_server, CompileCache, Counter, Json, ServerConfig, ServerHandle, StatsRegistry,
};

const SRC: &str = r"input x in [-1, 1];\ny = 0.5*x;\noutput y;\n";

fn start(config: ServerConfig) -> Option<(ServerHandle, Arc<StatsRegistry>)> {
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("skipping event-loop test (bind failed: {e})");
            return None;
        }
    };
    let stats = Arc::new(StatsRegistry::new());
    let handle = spawn_server(
        listener,
        Arc::new(CompileCache::new()),
        Arc::clone(&stats),
        config,
    )
    .unwrap();
    Some((handle, stats))
}

/// One request, one `write(2)`: splitting the line across syscalls lets
/// Nagle + delayed-ACK park the tail for ~40ms, which would blur the
/// timing the drain test depends on.
fn send_line(stream: &mut TcpStream, line: &str) {
    let framed = format!("{line}\n");
    stream.write_all(framed.as_bytes()).unwrap();
    stream.flush().unwrap();
}

fn read_json(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    assert!(
        reader.read_line(&mut line).unwrap() > 0,
        "server hung up before answering"
    );
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("unparsable response {line}: {e}"))
}

#[test]
fn sixty_four_concurrent_peers_and_the_registry_reconciles() {
    const PEERS: usize = 64;
    const PER_PEER: usize = 6; // parse, analyze, stats, trace, analyze, parse
    let Some((handle, stats)) = start(ServerConfig::default()) else {
        return;
    };
    let addr = handle.local_addr();

    let clients: Vec<_> = (0..PEERS)
        .map(|peer| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let requests = [
                    format!(r#"{{"id": {peer}, "cmd": "parse", "source": "{SRC}"}}"#),
                    format!(r#"{{"cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#),
                    r#"{"cmd": "stats"}"#.to_string(),
                    format!(
                        r#"{{"cmd": "trace", "source": "{SRC}", "trace": "x\n0.5\n-0.5\n0.25\n", "pdf": false}}"#
                    ),
                    format!(r#"{{"cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": false}}"#),
                    format!(r#"{{"cmd": "parse", "source": "{SRC}"}}"#),
                ];
                for request in &requests {
                    send_line(&mut stream, request);
                    let resp = read_json(&mut reader);
                    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().unwrap();
    }

    // One more connection asks for the registry over the wire.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_line(&mut stream, r#"{"cmd": "stats"}"#);
    let resp = read_json(&mut reader);
    let result = resp.get("result").unwrap();
    let counters = result.get("counters").unwrap();
    let total = (PEERS * PER_PEER + 1) as f64; // the stats request counts itself
    assert_eq!(counters.get("requests").and_then(Json::as_f64), Some(total));
    assert_eq!(counters.get("errors").and_then(Json::as_f64), Some(0.0));
    assert_eq!(
        counters.get("accepted").and_then(Json::as_f64),
        Some((PEERS + 1) as f64)
    );
    assert_eq!(counters.get("rejected").and_then(Json::as_f64), Some(0.0));
    // No faults were injected and no budgets were set: the failure
    // counters stay zero, and the only request in flight while `stats`
    // renders is the `stats` request itself.
    assert_eq!(counters.get("timeouts").and_then(Json::as_f64), Some(0.0));
    assert_eq!(counters.get("cancelled").and_then(Json::as_f64), Some(0.0));
    assert_eq!(counters.get("panics").and_then(Json::as_f64), Some(0.0));
    assert_eq!(result.get("in_flight").and_then(Json::as_f64), Some(1.0));
    assert!(result.get("uptime_us").and_then(Json::as_f64).unwrap() > 0.0);
    drop((stream, reader));

    handle.shutdown_and_join().unwrap();

    // Server-side reconciliation: every request sent landed in exactly
    // one verb histogram, and every analyze resolved to the linear
    // engine for this combinational source.
    assert_eq!(stats.get(Counter::Requests), (PEERS * PER_PEER + 1) as u64);
    assert_eq!(stats.get(Counter::Errors), 0);
    assert_eq!(stats.in_flight(), 0, "the gauge reconciles after drain");
    let verb_total: u64 = sna_service::VERBS
        .iter()
        .filter_map(|v| stats.verb(v))
        .map(|h| h.snapshot().count)
        .sum();
    assert_eq!(verb_total, (PEERS * PER_PEER + 1) as u64);
    let lti = stats.engine("lti").unwrap().snapshot();
    assert_eq!(lti.count, (PEERS * 2) as u64, "two analyzes per peer");
    // The trace verb reconciles in both tables: one row per peer in the
    // verb histogram and one replay in the engine histogram.
    let trace_verb = stats.verb("trace").unwrap().snapshot();
    assert_eq!(trace_verb.count, PEERS as u64, "one trace per peer");
    let trace_engine = stats.engine("trace").unwrap().snapshot();
    assert_eq!(trace_engine.count, PEERS as u64);
    assert_eq!(stats.get(Counter::Accepted), (PEERS + 1) as u64);
    assert_eq!(
        stats.get(Counter::Closed),
        (PEERS + 1) as u64,
        "every accepted connection was closed exactly once"
    );
}

#[test]
fn pipelined_flood_hits_backpressure_and_responses_stay_ordered() {
    const BURST: usize = 64;
    let config = ServerConfig {
        max_pipeline: 2,
        write_buf_cap: 2048,
        workers: 2,
        ..ServerConfig::default()
    };
    let Some((handle, stats)) = start(config) else {
        return;
    };

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // One burst, one write: the reactor sees a deep pipeline at once
    // and must pause this peer at 2 in-flight instead of queueing all 64.
    let mut burst = String::new();
    for i in 0..BURST {
        burst.push_str(&format!(
            r#"{{"id": {i}, "cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": true}}"#
        ));
        burst.push('\n');
    }
    stream.write_all(burst.as_bytes()).unwrap();
    stream.flush().unwrap();

    // Responses arrive complete, valid, and in request order even though
    // workers finish out of order.
    for i in 0..BURST {
        let resp = read_json(&mut reader);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert_eq!(resp.get("id").and_then(Json::as_f64), Some(i as f64));
    }
    drop((stream, reader));
    handle.shutdown_and_join().unwrap();

    assert_eq!(stats.get(Counter::Requests), BURST as u64);
    assert!(
        stats.get(Counter::Backpressured) >= 1,
        "a 64-deep pipeline against a 2-deep cap must pause reads at least once \
         (got {})",
        stats.get(Counter::Backpressured)
    );
}

#[test]
fn graceful_drain_finishes_in_flight_and_refuses_late_requests() {
    // A deep-enough design that one single-threaded 64-restart anneal
    // takes ~100ms even in release builds: the request is reliably
    // still in flight when the drain begins 30ms after submission.
    const DEEP: &str = r"input x in [-1, 1];\ninput w in [-1, 1];\na = 0.5*x + 0.25*w;\nb = 0.75*a + 0.125*x;\nc = 0.5*b + 0.25*a;\nd = 0.375*c + 0.5*b;\ny = 0.25*d + 0.125*c;\noutput y;\n";
    let Some((handle, stats)) = start(ServerConfig::default()) else {
        return;
    };
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // Warm round-trip proves the connection is live.
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "parse", "source": "{SRC}"}}"#),
    );
    let warm = read_json(&mut reader);
    assert_eq!(warm.get("ok").and_then(Json::as_bool), Some(true));

    // In-flight at shutdown: sent (and, 30ms later, certainly being
    // executed on a worker) before the drain begins…
    send_line(
        &mut stream,
        &format!(
            r#"{{"id": "inflight", "cmd": "optimize", "source": "{DEEP}", "method": "anneal", "restarts": 64, "threads": 1}}"#
        ),
    );
    std::thread::sleep(Duration::from_millis(30));
    handle.shutdown();
    // …and a straggler sent strictly after shutdown(): the drain flag is
    // already visible, so the reactor must refuse it whichever poll
    // round it lands in.
    send_line(&mut stream, r#"{"id": "late", "cmd": "stats"}"#);

    let inflight = read_json(&mut reader);
    assert_eq!(
        inflight.get("id").and_then(Json::as_str),
        Some("inflight"),
        "{inflight}"
    );
    assert_eq!(
        inflight.get("ok").and_then(Json::as_bool),
        Some(true),
        "the request that was in flight when the drain began must complete: {inflight}"
    );
    let late = read_json(&mut reader);
    assert_eq!(late.get("id").and_then(Json::as_str), Some("late"));
    assert_eq!(late.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        late.get("error").and_then(Json::as_str),
        Some("server draining")
    );
    // Then the server hangs up and the reactor exits on its own.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "expected EOF");
    handle.join().unwrap();
    assert_eq!(stats.get(Counter::Drained), 1);
    assert_eq!(stats.get(Counter::Closed), 1);
}

#[test]
fn idle_connections_are_evicted_and_counted() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let Some((handle, stats)) = start(config) else {
        return;
    };
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send_line(
        &mut stream,
        &format!(r#"{{"cmd": "parse", "source": "{SRC}"}}"#),
    );
    let resp = read_json(&mut reader);
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));

    // Go quiet; the server must hang up on us, not the other way round.
    let started = Instant::now();
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "expected EOF");
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(100),
        "evicted suspiciously fast ({waited:?})"
    );
    assert!(
        waited < Duration::from_secs(10),
        "idle eviction took too long ({waited:?})"
    );
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::TimedOut), 1);
    assert_eq!(stats.get(Counter::Closed), 1);
}

#[test]
fn over_capacity_peers_get_the_reason_then_eof() {
    let config = ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    };
    let Some((handle, stats)) = start(config) else {
        return;
    };
    let addr = handle.local_addr();

    // Two peers hold their seats (a round-trip each pins the accept).
    let mut seats = Vec::new();
    for _ in 0..2 {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        send_line(&mut stream, r#"{"cmd": "stats"}"#);
        let resp = read_json(&mut reader);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        seats.push((stream, reader));
    }

    // The third is told why, then hung up on.
    let third = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(third);
    let mut line = String::new();
    assert!(reader.read_line(&mut line).unwrap() > 0);
    let resp = Json::parse(line.trim()).unwrap();
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("server at capacity")
    );
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "expected EOF");

    drop(seats);
    handle.shutdown_and_join().unwrap();
    assert_eq!(stats.get(Counter::Accepted), 2);
    assert_eq!(stats.get(Counter::Rejected), 1);
}

#[test]
fn a_never_reading_client_cannot_block_other_peers() {
    // The slow client floods pipelined big-pdf requests and never reads;
    // with a small write cap the reactor pauses it. A healthy peer on the
    // same server must keep getting sub-second round-trips throughout.
    let config = ServerConfig {
        write_buf_cap: 4096,
        max_pipeline: 4,
        workers: 2,
        ..ServerConfig::default()
    };
    let Some((handle, stats)) = start(config) else {
        return;
    };
    let addr = handle.local_addr();

    let mut slow = TcpStream::connect(addr).unwrap();
    let mut burst = String::new();
    for i in 0..128 {
        burst.push_str(&format!(
            r#"{{"id": {i}, "cmd": "analyze", "source": "{SRC}", "bits": 8, "pdf": true}}"#
        ));
        burst.push('\n');
    }
    slow.write_all(burst.as_bytes()).unwrap();
    slow.flush().unwrap();
    // Never read `slow`; its responses must back up server-side, capped.

    let mut healthy = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(healthy.try_clone().unwrap());
    for _ in 0..5 {
        let started = Instant::now();
        send_line(&mut healthy, r#"{"cmd": "stats"}"#);
        let resp = read_json(&mut reader);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "healthy peer starved behind the slow one"
        );
    }
    drop((healthy, reader));
    // Shutdown with the slow client still wedged: the drain deadline
    // bounds how long its unflushed responses may hold the reactor.
    let shutdown_started = Instant::now();
    handle.shutdown_and_join().unwrap();
    assert!(shutdown_started.elapsed() < Duration::from_secs(10));
    assert!(stats.get(Counter::Backpressured) >= 1);
    // Drain the slow socket so the OS can reclaim it cleanly.
    let _ = slow.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 16 * 1024];
    while matches!(slow.read(&mut sink), Ok(n) if n > 0) {}
}
