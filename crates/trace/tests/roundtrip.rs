//! Property tests: the CSV writer and parser are exact inverses for
//! finite data, and malformed tails never panic or corrupt the
//! accepted prefix.

use proptest::prelude::*;
use sna_trace::{write_csv, Trace, TraceLimits};

fn col_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("c{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn writer_output_reparses_bit_exact(
        cols in 1usize..5,
        vals in proptest::collection::vec(-1e9..1e9f64, 1..160),
    ) {
        let rows: Vec<Vec<f64>> = vals.chunks(cols)
            .filter(|c| c.len() == cols)
            .map(|c| c.to_vec())
            .collect();
        prop_assume!(!rows.is_empty());
        let names = col_names(cols);
        let csv = write_csv(&names, &rows);
        let t = Trace::parse(&csv, &names, &TraceLimits::default()).unwrap();
        prop_assert_eq!(t.rows(), rows.len());
        prop_assert_eq!(t.skipped(), 0);
        for (j, col) in t.columns().iter().enumerate() {
            for (i, v) in col.iter().enumerate() {
                prop_assert_eq!(v.to_bits(), rows[i][j].to_bits(),
                                "col {} row {}", j, i);
            }
        }
    }

    #[test]
    fn malformed_tails_skip_without_touching_the_prefix(
        vals in proptest::collection::vec(-1e3..1e3f64, 2..40),
        junk in prop_oneof![
            Just("1"),                // ragged: one of two columns
            Just("NaN,2"),            // non-finite field
            Just("inf,-inf"),         // non-finite field
            Just(",,"),               // empty fields
            Just("true,x"),           // unparseable text
        ],
    ) {
        let rows: Vec<Vec<f64>> = vals.chunks(2)
            .filter(|c| c.len() == 2)
            .map(|c| c.to_vec())
            .collect();
        let names = col_names(2);
        let mut csv = write_csv(&names, &rows);
        csv.push_str(junk);
        csv.push('\n');
        let t = Trace::parse(&csv, &names, &TraceLimits::default()).unwrap();
        prop_assert_eq!(t.rows(), rows.len());
        prop_assert_eq!(t.skipped(), 1);
        prop_assert_eq!(t.columns()[0].len(), rows.len());
    }
}
