//! `sna-trace` — streaming CSV trace ingestion for trace-driven noise
//! analysis.
//!
//! Every SNA engine samples inputs from *declared* ranges; this crate
//! is the bridge from **measured** signals: a recorded CSV trace is
//! bound column-by-column to a design's input names (vector banks bind
//! per element: a DSL `input v[4]` expects columns `v[0]`..`v[3]`),
//! streamed once through per-column [`OnlineStats`] (count / mean / M2
//! / min / max, Welford's update), and retained as column-major sample
//! vectors ready to replay through the VM's trace-fed lane banks.
//!
//! # Binding rules
//!
//! * The first non-empty line is the header; fields may be quoted with
//!   `"` (doubled quotes escape) and CRLF line endings are accepted.
//! * Every design input name must match a header field exactly (after
//!   unquoting and trimming); missing names are a structured
//!   [`TraceError::MissingColumn`], extra CSV columns are ignored and
//!   counted in [`Trace::ignored_columns`].
//! * Data rows too short to cover every bound column are skipped and
//!   counted ([`Trace::skipped_ragged`]); rows with a non-finite,
//!   empty, or unparseable bound field are skipped and counted
//!   ([`Trace::skipped_non_finite`]). Parsing never panics.
//! * A trace with zero accepted rows is [`TraceError::NoRows`].
//!
//! # Caps
//!
//! [`TraceLimits`] bounds ingestion: `max_bytes` caps the bytes read
//! from the source, `max_rows` caps accepted rows — both produce
//! structured errors rather than truncating silently, so callers (the
//! server's `trace` verb in particular) can refuse oversized uploads
//! deterministically. A cooperative cancellation callback is consulted
//! every [`CANCEL_EVERY_ROWS`] rows for budget-checked ingestion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::BufRead;

/// Rows between cooperative cancellation checks during ingestion.
pub const CANCEL_EVERY_ROWS: usize = 512;

/// Single-pass running statistics of one column (Welford's algorithm):
/// count, mean, sum of squared deviations (M2), min and max — constant
/// memory however long the trace is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        OnlineStats::new()
    }
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Samples folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance `M2 / count` (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Ingestion caps; exceeding either is a structured error, never a
/// silent truncation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceLimits {
    /// Maximum bytes read from the source (header included).
    pub max_bytes: usize,
    /// Maximum accepted data rows.
    pub max_rows: usize,
}

impl Default for TraceLimits {
    fn default() -> Self {
        TraceLimits {
            max_bytes: 1 << 30,
            max_rows: 4_000_000,
        }
    }
}

/// Structured ingestion failures. Parsing itself never panics: every
/// malformed shape lands here or in a skip counter.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// Reading the underlying source failed.
    Io(String),
    /// The source had no header line.
    NoHeader,
    /// A design input name matched no CSV header field.
    MissingColumn {
        /// The unmatched input name.
        name: String,
    },
    /// Every data row was missing, malformed, or absent.
    NoRows,
    /// The source exceeded [`TraceLimits::max_bytes`].
    TooManyBytes {
        /// The configured cap.
        limit: usize,
    },
    /// The source exceeded [`TraceLimits::max_rows`].
    TooManyRows {
        /// The configured cap.
        limit: usize,
    },
    /// The cancellation callback fired mid-ingestion.
    Cancelled,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::NoHeader => write!(f, "trace has no header line"),
            TraceError::MissingColumn { name } => {
                write!(f, "trace has no column for input `{name}`")
            }
            TraceError::NoRows => write!(f, "trace has no usable data rows"),
            TraceError::TooManyBytes { limit } => {
                write!(f, "trace exceeds the byte cap ({limit} bytes)")
            }
            TraceError::TooManyRows { limit } => {
                write!(f, "trace exceeds the row cap ({limit} rows)")
            }
            TraceError::Cancelled => write!(f, "trace ingestion cancelled"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A parsed, input-bound trace: one column of accepted samples per
/// design input, in the design's input order, plus the single-pass
/// statistics and skip counters gathered on the way through.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    stats: Vec<OnlineStats>,
    rows: usize,
    skipped_ragged: usize,
    skipped_non_finite: usize,
    ignored_columns: usize,
}

impl Trace {
    /// Parses an in-memory CSV text bound to `inputs` (see the crate
    /// docs for binding rules).
    ///
    /// # Errors
    ///
    /// Any [`TraceError`]; never panics on malformed input.
    pub fn parse(text: &str, inputs: &[String], limits: &TraceLimits) -> Result<Trace, TraceError> {
        Trace::read_with(text.as_bytes(), inputs, limits, &|| false)
    }

    /// Streams a CSV source bound to `inputs`.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`]; I/O failures map to [`TraceError::Io`].
    pub fn read(
        r: impl BufRead,
        inputs: &[String],
        limits: &TraceLimits,
    ) -> Result<Trace, TraceError> {
        Trace::read_with(r, inputs, limits, &|| false)
    }

    /// [`Trace::read`] with a cooperative cancellation check, consulted
    /// every [`CANCEL_EVERY_ROWS`] accepted-or-skipped rows — the
    /// budget-checked ingestion hook for the server. A check that never
    /// fires leaves the result identical to [`Trace::read`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Cancelled`] when the check fires; otherwise as
    /// [`Trace::read`].
    pub fn read_with(
        mut r: impl BufRead,
        inputs: &[String],
        limits: &TraceLimits,
        cancelled: &dyn Fn() -> bool,
    ) -> Result<Trace, TraceError> {
        let mut bytes_read = 0usize;
        let mut line = String::new();
        let mut next_line = |line: &mut String| -> Result<Option<()>, TraceError> {
            line.clear();
            let n = r
                .read_line(line)
                .map_err(|e| TraceError::Io(e.to_string()))?;
            if n == 0 {
                return Ok(None);
            }
            bytes_read += n;
            if bytes_read > limits.max_bytes {
                return Err(TraceError::TooManyBytes {
                    limit: limits.max_bytes,
                });
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            Ok(Some(()))
        };

        // Header: first non-empty line, quote-aware split.
        let headers = loop {
            if next_line(&mut line)?.is_none() {
                return Err(TraceError::NoHeader);
            }
            if !line.trim().is_empty() {
                break split_csv(&line);
            }
        };

        // Bind each input name to its header position.
        let bound: Vec<usize> = inputs
            .iter()
            .map(|name| {
                headers
                    .iter()
                    .position(|h| h == name)
                    .ok_or_else(|| TraceError::MissingColumn { name: name.clone() })
            })
            .collect::<Result<_, _>>()?;
        let ignored_columns = headers.len() - {
            let mut seen = bound.clone();
            seen.sort_unstable();
            seen.dedup();
            seen.len()
        };

        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); inputs.len()];
        let mut stats = vec![OnlineStats::new(); inputs.len()];
        let mut rows = 0usize;
        let mut scanned = 0usize;
        let mut skipped_ragged = 0usize;
        let mut skipped_non_finite = 0usize;
        let mut parsed = Vec::with_capacity(inputs.len());
        while next_line(&mut line)?.is_some() {
            if line.trim().is_empty() {
                continue;
            }
            scanned += 1;
            if scanned.is_multiple_of(CANCEL_EVERY_ROWS) && cancelled() {
                return Err(TraceError::Cancelled);
            }
            let fields = split_csv(&line);
            if bound.iter().any(|&c| c >= fields.len()) {
                skipped_ragged += 1;
                continue;
            }
            parsed.clear();
            let mut bad = false;
            for &c in &bound {
                match fields[c].trim().parse::<f64>() {
                    Ok(v) if v.is_finite() => parsed.push(v),
                    _ => {
                        bad = true;
                        break;
                    }
                }
            }
            if bad {
                skipped_non_finite += 1;
                continue;
            }
            if rows == limits.max_rows {
                return Err(TraceError::TooManyRows {
                    limit: limits.max_rows,
                });
            }
            rows += 1;
            for (j, &v) in parsed.iter().enumerate() {
                columns[j].push(v);
                stats[j].push(v);
            }
        }
        if rows == 0 {
            return Err(TraceError::NoRows);
        }
        Ok(Trace {
            names: inputs.to_vec(),
            columns,
            stats,
            rows,
            skipped_ragged,
            skipped_non_finite,
            ignored_columns,
        })
    }

    /// Bound input names, in the order given at parse time.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Accepted samples, column-major: `columns()[j][t]` is input `j`
    /// at row `t`. All columns have [`Trace::rows`] entries and every
    /// value is finite.
    pub fn columns(&self) -> &[Vec<f64>] {
        &self.columns
    }

    /// Per-column single-pass statistics, aligned with
    /// [`Trace::names`].
    pub fn stats(&self) -> &[OnlineStats] {
        &self.stats
    }

    /// Accepted data rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows skipped because they were too short to cover every bound
    /// column.
    pub fn skipped_ragged(&self) -> usize {
        self.skipped_ragged
    }

    /// Rows skipped because a bound field was non-finite, empty, or
    /// unparseable.
    pub fn skipped_non_finite(&self) -> usize {
        self.skipped_non_finite
    }

    /// Total rows skipped for any reason.
    pub fn skipped(&self) -> usize {
        self.skipped_ragged + self.skipped_non_finite
    }

    /// Header columns not bound to any input.
    pub fn ignored_columns(&self) -> usize {
        self.ignored_columns
    }

    /// The measured `(min, max)` range of column `j`.
    pub fn range(&self, j: usize) -> (f64, f64) {
        (self.stats[j].min(), self.stats[j].max())
    }
}

/// Splits one CSV line into fields: comma-separated, optionally
/// double-quoted (doubled quotes escape a literal quote), whitespace
/// around unquoted fields trimmed.
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    let mut was_quoted = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if field.trim().is_empty() && !was_quoted => {
                in_quotes = true;
                was_quoted = true;
                field.clear();
            }
            ',' if !in_quotes => {
                fields.push(finish_field(&mut field, &mut was_quoted));
            }
            _ => field.push(ch),
        }
    }
    fields.push(finish_field(&mut field, &mut was_quoted));
    fields
}

fn finish_field(field: &mut String, was_quoted: &mut bool) -> String {
    let out = if *was_quoted {
        std::mem::take(field)
    } else {
        let trimmed = field.trim().to_string();
        field.clear();
        trimmed
    };
    *was_quoted = false;
    out
}

/// Writes a CSV text for `names` and row-major `rows` — the exact
/// inverse of [`Trace::parse`] for finite values (headers are quoted
/// when they contain a comma or quote; values use Rust's shortest
/// round-trip `f64` formatting).
pub fn write_csv(names: &[String], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if name.contains(',') || name.contains('"') {
            out.push('"');
            out.push_str(&name.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(name);
        }
    }
    out.push('\n');
    for row in rows {
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn binds_columns_by_header_name_in_input_order() {
        let csv = "b,a,extra\n1,2,9\n3,4,9\n";
        let t = Trace::parse(csv, &names(&["a", "b"]), &TraceLimits::default()).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.columns()[0], vec![2.0, 4.0], "a");
        assert_eq!(t.columns()[1], vec![1.0, 3.0], "b");
        assert_eq!(t.ignored_columns(), 1);
        assert_eq!(t.stats()[0].count(), 2);
        assert_eq!(t.stats()[0].mean(), 3.0);
    }

    #[test]
    fn vector_bank_columns_bind_per_element() {
        let csv = "v[0],v[1]\n0.5,-0.5\n";
        let t = Trace::parse(csv, &names(&["v[0]", "v[1]"]), &TraceLimits::default()).unwrap();
        assert_eq!(t.range(0), (0.5, 0.5));
        assert_eq!(t.range(1), (-0.5, -0.5));
    }

    #[test]
    fn crlf_and_quoted_headers_parse() {
        let csv = "\"x\",\"y\"\r\n1,2\r\n3,4\r\n";
        let t = Trace::parse(csv, &names(&["x", "y"]), &TraceLimits::default()).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.columns()[1], vec![2.0, 4.0]);
    }

    #[test]
    fn ragged_and_non_finite_rows_skip_with_counts() {
        let csv = "x,y\n1,2\n3\n,5\nNaN,6\ninf,7\n8,9\n\n";
        let t = Trace::parse(csv, &names(&["x", "y"]), &TraceLimits::default()).unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.skipped_ragged(), 1, "short row");
        assert_eq!(t.skipped_non_finite(), 3, "empty, NaN, inf");
        assert_eq!(t.columns()[0], vec![1.0, 8.0]);
    }

    #[test]
    fn structured_errors_for_empty_missing_and_capped() {
        let e = Trace::parse("", &names(&["x"]), &TraceLimits::default());
        assert_eq!(e, Err(TraceError::NoHeader));
        let e = Trace::parse("x,y\n", &names(&["x"]), &TraceLimits::default());
        assert_eq!(e, Err(TraceError::NoRows));
        let e = Trace::parse("a\n1\n", &names(&["x"]), &TraceLimits::default());
        assert_eq!(
            e,
            Err(TraceError::MissingColumn {
                name: "x".to_string()
            })
        );
        let tight = TraceLimits {
            max_rows: 1,
            ..TraceLimits::default()
        };
        let e = Trace::parse("x\n1\n2\n", &names(&["x"]), &tight);
        assert_eq!(e, Err(TraceError::TooManyRows { limit: 1 }));
        let tiny = TraceLimits {
            max_bytes: 4,
            ..TraceLimits::default()
        };
        let e = Trace::parse("x,y\n1,2\n", &names(&["x"]), &tiny);
        assert_eq!(e, Err(TraceError::TooManyBytes { limit: 4 }));
    }

    #[test]
    fn cancellation_fires_between_row_batches() {
        let mut csv = String::from("x\n");
        for i in 0..2 * CANCEL_EVERY_ROWS {
            csv.push_str(&format!("{i}\n"));
        }
        let e = Trace::read_with(
            csv.as_bytes(),
            &names(&["x"]),
            &TraceLimits::default(),
            &|| true,
        );
        assert_eq!(e, Err(TraceError::Cancelled));
    }

    #[test]
    fn online_stats_match_two_pass_reference() {
        let xs = [1.5, -2.0, 0.25, 7.0, -0.125];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let fields = split_csv("\"a,b\",\"he said \"\"hi\"\"\", plain ");
        assert_eq!(fields, vec!["a,b", "he said \"hi\"", "plain"]);
    }
}
