//! Lowering a [`Dfg`] to a flat, register-allocated bytecode program.
//!
//! The compiler walks the graph's topological order once and emits one
//! instruction per arithmetic node.  Register allocation is a linear
//! scan with a free list: a node's register is recycled as soon as its
//! last reader has executed, so the register file stays small (a 25-tap
//! FIR with 75 nodes runs in ~5 working registers plus its pinned
//! state).  Three classes of registers are *pinned* — never recycled:
//!
//! * constants — loaded once per reset, not once per step;
//! * delay states — they carry values across steps;
//! * end-of-step reads — outputs and delay-latch sources must survive
//!   until after the instruction sweep.
//!
//! The program is **value-agnostic**: it stores node ids, not constant
//! values or quantizers, so one compiled program serves every
//! coefficient set and word-length configuration of the same graph
//! shape (see `Executable` in [`crate::exec`], which binds values).
//!
//! Division lowers to [`OpCode::Div`] with zero checks performed by the
//! executor per lane, mirroring the scalar simulators' errors.

use sna_dfg::{Dfg, NodeId, Op};

/// A virtual register index into the structure-of-arrays lane banks.
pub type Reg = u32;

/// The operation of one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    /// Load an input's lanes (the instruction's `a` field is the input
    /// index).
    In,
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a * b`
    Mul,
    /// `dst = a / b` (lanes with a zero divisor abort the run).
    Div,
    /// `dst = -a`
    Neg,
}

/// One flat instruction: opcode, destination, operands, and the
/// originating node (for quantizer lookup and error reporting).
#[derive(Clone, Copy, Debug)]
pub struct Inst {
    /// What to compute.
    pub op: OpCode,
    /// Destination register.
    pub dst: Reg,
    /// First operand register ([`OpCode::In`]: the input index).
    pub a: Reg,
    /// Second operand register (unary ops: unused, equal to `a`).
    pub b: Reg,
    /// The graph node this instruction computes, as a raw index.
    pub node: u32,
}

/// A compiled, register-allocated program for one graph *shape*.
///
/// Constant values and per-node quantizers are intentionally absent —
/// they are bound per run by `Executable` — so a `Program` can be
/// cached on a session and shared across coefficient swaps
/// (`Session::with_coefficients`) exactly like the other shape-level
/// artifacts.
#[derive(Clone, Debug)]
pub struct Program {
    /// The instruction sweep, in topological order.
    pub(crate) insts: Vec<Inst>,
    /// Total registers (pinned + working).
    pub(crate) n_regs: usize,
    /// Pinned constant registers: `(register, node index)`.
    pub(crate) consts: Vec<(Reg, u32)>,
    /// Delay latches in [`Dfg::delay_nodes`] order:
    /// `(state register, source register, delay node index)`.
    pub(crate) latches: Vec<(Reg, Reg, u32)>,
    /// Output taps in declaration order: `(name, register)`.
    pub(crate) outputs: Vec<(String, Reg)>,
    /// Number of graph inputs the program expects per step.
    pub(crate) n_inputs: usize,
    /// Number of nodes in the source graph (quantizer table length).
    pub(crate) n_nodes: usize,
}

impl Program {
    /// Lowers a graph into a flat register-allocated program.
    ///
    /// Every [`Dfg`] compiles — the graph's own validation (arity,
    /// acyclicity through delays) already holds by construction.
    #[must_use]
    pub fn compile(dfg: &Dfg) -> Program {
        let n = dfg.len();
        let order = dfg.topo_order();

        // Which node registers must survive to the end of a step.
        let mut pinned = vec![false; n];
        for &(_, id) in dfg.outputs() {
            pinned[id.index()] = true;
        }
        for &d in dfg.delay_nodes() {
            pinned[d.index()] = true; // the state register itself
            pinned[dfg.node(d).args()[0].index()] = true; // latch source
        }
        for (id, node) in dfg.nodes() {
            if matches!(node.op(), Op::Const(_)) {
                pinned[id.index()] = true;
            }
        }

        // Last position in the instruction sweep at which each node's
        // register is read; pinned registers are never recycled.
        let mut last_use = vec![0usize; n];
        for (pos, &id) in order.iter().enumerate() {
            for arg in dfg.node(id).args() {
                last_use[arg.index()] = pos;
            }
        }

        let mut reg_of: Vec<Option<Reg>> = vec![None; n];
        let mut free: Vec<Reg> = Vec::new();
        let mut n_regs: Reg = 0;
        let mut alloc = |free: &mut Vec<Reg>| -> Reg {
            free.pop().unwrap_or_else(|| {
                let r = n_regs;
                n_regs += 1;
                r
            })
        };

        // Pinned allocations first: constants and delay states get the
        // low register numbers, so resets touch a contiguous prefix.
        let mut consts = Vec::new();
        for (id, node) in dfg.nodes() {
            if matches!(node.op(), Op::Const(_)) {
                let r = alloc(&mut free);
                reg_of[id.index()] = Some(r);
                consts.push((r, id.index() as u32));
            }
        }
        for &d in dfg.delay_nodes() {
            let r = alloc(&mut free);
            reg_of[d.index()] = Some(r);
        }

        let mut insts = Vec::with_capacity(order.len());
        for (pos, &id) in order.iter().enumerate() {
            let node = dfg.node(id);
            let (op, a, b) = match node.op() {
                Op::Input(i) => (OpCode::In, i as Reg, i as Reg),
                Op::Const(_) => continue, // pinned, loaded at reset
                Op::Add | Op::Sub | Op::Mul | Op::Div => {
                    let ra = reg_of[node.args()[0].index()].expect("operand allocated");
                    let rb = reg_of[node.args()[1].index()].expect("operand allocated");
                    let op = match node.op() {
                        Op::Add => OpCode::Add,
                        Op::Sub => OpCode::Sub,
                        Op::Mul => OpCode::Mul,
                        _ => OpCode::Div,
                    };
                    (op, ra, rb)
                }
                Op::Neg => {
                    let ra = reg_of[node.args()[0].index()].expect("operand allocated");
                    (OpCode::Neg, ra, ra)
                }
                Op::Delay => unreachable!("delays are excluded from the topo order"),
            };
            // Allocate the destination *before* recycling dead operands:
            // `dst` must never alias an operand register, which keeps the
            // executor's disjoint-borrow split trivially sound.
            let dst = alloc(&mut free);
            reg_of[id.index()] = Some(dst);
            insts.push(Inst {
                op,
                dst,
                a,
                b,
                node: id.index() as u32,
            });
            // Recycle operands whose last reader was this instruction.
            if !matches!(node.op(), Op::Input(_)) {
                for arg in node.args() {
                    let i = arg.index();
                    if !pinned[i] && last_use[i] == pos {
                        if let Some(r) = reg_of[i].take() {
                            free.push(r);
                        }
                    }
                }
            }
        }

        let latches = dfg
            .delay_nodes()
            .iter()
            .map(|&d| {
                let state = reg_of[d.index()].expect("delay state allocated");
                let src = reg_of[dfg.node(d).args()[0].index()].expect("latch source pinned");
                (state, src, d.index() as u32)
            })
            .collect();
        let outputs = dfg
            .outputs()
            .iter()
            .map(|(name, id)| (name.clone(), reg_of[id.index()].expect("output pinned")))
            .collect();

        Program {
            insts,
            n_regs: n_regs as usize,
            consts,
            latches,
            outputs,
            n_inputs: dfg.n_inputs(),
            n_nodes: n,
        }
    }

    /// Number of instructions in the per-step sweep.
    #[must_use]
    pub fn n_insts(&self) -> usize {
        self.insts.len()
    }

    /// Size of the register file (pinned + working registers).
    #[must_use]
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// Graph inputs expected per step.
    #[must_use]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Output names in declaration order.
    #[must_use]
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The node a given instruction computes.
    #[must_use]
    pub fn inst_node(&self, i: usize) -> NodeId {
        NodeId::from_index(self.insts[i].node as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;

    #[test]
    fn registers_are_recycled_on_long_chains() {
        // A long dependent chain: y = (((x+1)+1)+...)+1. Working set is
        // tiny regardless of chain length.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let one = b.constant(1.0);
        let mut t = x;
        for _ in 0..50 {
            t = b.add(t, one);
        }
        b.output("y", t);
        let dfg = b.build().unwrap();
        let p = Program::compile(&dfg);
        assert_eq!(p.n_insts(), 51); // input + 50 adds
                                     // 1 const + in-flight chain value + output pin + scratch.
        assert!(p.n_regs() <= 6, "register file too large: {}", p.n_regs());
    }

    #[test]
    fn dst_never_aliases_operands() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let t = b.mul(s, s);
        let u = b.sub(t, x);
        b.output("u", u);
        let dfg = b.build().unwrap();
        let p = Program::compile(&dfg);
        for inst in &p.insts {
            if inst.op != OpCode::In {
                assert_ne!(inst.dst, inst.a, "{inst:?}");
                assert_ne!(inst.dst, inst.b, "{inst:?}");
            }
        }
    }

    #[test]
    fn feedback_graphs_pin_states_and_latch_sources() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let dfg = b.build().unwrap();
        let p = Program::compile(&dfg);
        assert_eq!(p.latches.len(), 1);
        let (state, src, _) = p.latches[0];
        // The latch source is the output register (y feeds the delay).
        assert_eq!(p.outputs[0].1, src);
        assert_ne!(state, src);
    }
}
