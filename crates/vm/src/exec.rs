//! The vectorized executor: a compiled [`Program`] bound to concrete
//! constant values and per-node quantizers, sweeping N sample paths per
//! instruction over contiguous f64 lanes.
//!
//! # Structure-of-arrays layout
//!
//! State is two *banks* of registers — one exact, one quantized — and
//! each register is a contiguous `Vec<f64>` of N lanes.  Every
//! instruction therefore runs as a tight loop over slices the compiler
//! can auto-vectorize; there is no per-sample dispatch anywhere.
//!
//! # Bit-exactness contract
//!
//! The quantized bank mirrors `sna_fixp::FixedSimulator` bit-for-bit
//! under the configurations the repo actually uses (see
//! `crates/vm/README.md` for the proof sketch and the documented
//! caveats around >27-bit multiplies, division, and `Overflow::Wrap`):
//! each op computes in f64 from the operands' *quantized* values and
//! requantizes the result through the exact same
//! `scale → round/floor → overflow-handle → rescale` pipeline as
//! `Quantizer::mantissa_of`.  The exact bank mirrors
//! `sna_dfg::Simulator` exactly — same f64 ops in the same order,
//! including the reference's incidental `-0.0 → +0.0` normalization
//! (its `v + injection` add): every exact kernel stores `… + 0.0`.

use std::sync::Arc;

use sna_dfg::{Dfg, NodeId, Op};
use sna_fixp::{Overflow, Quantizer, Rounding, WlConfig};

use crate::program::{Inst, OpCode, Program, Reg};
use crate::VmError;

/// Per-node quantization parameters flattened for the lane kernels.
///
/// Mantissa bounds are kept as f64 (they are ≤ 2⁴⁷ so exactly
/// representable); the whole requantize loop then runs without any
/// int↔float conversions.
#[derive(Clone, Copy, Debug, PartialEq)]
struct LaneQuant {
    /// `Format::resolution()` — a power of two, so `x / res` is exact.
    res: f64,
    /// `1 / res`, also a power of two: `x * inv_res` is bit-identical
    /// to `x / res` (both scale the exponent exactly) and much cheaper
    /// in the lane loops.
    inv_res: f64,
    min_m: f64,
    max_m: f64,
    /// `max_m - min_m + 1`, the `Overflow::Wrap` modulus.
    modulus: f64,
    rounding: Rounding,
    overflow: Overflow,
}

/// 2⁵² — adding and subtracting it rounds a nonnegative f64 below 2⁵²
/// to the nearest integer (ties to even) using only two additions,
/// in the default round-to-nearest FP mode.
///
/// The baseline x86-64 target has no `roundpd` (that is SSE4.1), so
/// `f64::round`/`f64::floor` lower to one libm *call per lane* — the
/// magic-number forms below are pure add/sub/compare/bit ops that LLVM
/// auto-vectorizes, and they are bit-identical to the std functions
/// for every input (asserted exhaustively in the tests).
const MAGIC: f64 = 4_503_599_627_370_496.0;

/// Round-half-away-from-zero, bit-identical to `f64::round`.
///
/// `|x| ≥ 2⁵²` (and NaN) pass through — such values are already
/// integral.  Below that, `t = (|x| + 2⁵²) − 2⁵²` is nearest-ties-even;
/// the tie (`|x| − t == 0.5` — an exact subtraction, both operands
/// share scale) is then bumped away from zero.
#[inline]
fn round_ties_away(x: f64) -> f64 {
    let a = x.abs();
    if a < MAGIC {
        let t = (a + MAGIC) - MAGIC;
        let t = t + if a - t == 0.5 { 1.0 } else { 0.0 };
        t.copysign(x)
    } else {
        x
    }
}

/// Bit-identical to `f64::floor`, by sign-aware magic rounding and a
/// `-1` select when the rounding went up.  The final `copysign`
/// restores `-0.0` (the magic sum erases the sign of a negative zero);
/// it is a no-op everywhere else since `floor` never changes sign.
#[inline]
fn floor_magic(x: f64) -> f64 {
    if x.abs() < MAGIC {
        let s = MAGIC.copysign(x);
        let t = (x + s) - s;
        (t - if t > x { 1.0 } else { 0.0 }).copysign(x)
    } else {
        x
    }
}

impl LaneQuant {
    fn of(q: &Quantizer) -> LaneQuant {
        let res = q.format.resolution();
        // max/min mantissa reconstructed from the public surface; both
        // divisions are exact (integer × power-of-two ÷ power-of-two).
        let max_m = q.format.max_value() / res;
        let min_m = q.format.min_value() / res;
        LaneQuant {
            res,
            inv_res: 1.0 / res,
            min_m,
            max_m,
            modulus: max_m - min_m + 1.0,
            rounding: q.rounding,
            overflow: q.overflow,
        }
    }

    /// Requantizes lanes in place — the vector twin of
    /// `Quantizer::quantize`, decision-for-decision equivalent to
    /// `handle_overflow_f64` (including its treatment of non-finite
    /// scaled values).
    ///
    /// The `Saturate` arms clamp with two selects (`if m >= min_m`,
    /// `if m <= max_m`): in range `m` passes through unchanged, out of
    /// range the nearer bound wins, and NaN fails the first comparison
    /// and lands on `min_m` — exactly the scalar branch chain's
    /// outcomes, but in a form LLVM turns into vectorized compares +
    /// blends instead of branches.
    ///
    /// The trailing `+ 0.0` in every store normalizes `-0.0` to `+0.0`:
    /// the scalar quantizer round-trips through an `i64` mantissa, which
    /// erases the sign of zero, and bit-identity with it is the VM's
    /// contract. It is a no-op for every other value (IEEE-754
    /// `x + (+0.0) == x` whenever `x != -0.0`) and stays inside the
    /// auto-vectorized lane loop.
    #[inline]
    fn requantize(&self, lanes: &mut [f64]) {
        let LaneQuant {
            res,
            inv_res,
            min_m,
            max_m,
            modulus,
            ..
        } = *self;
        match (self.rounding, self.overflow) {
            (Rounding::Nearest, Overflow::Saturate) => {
                for x in lanes {
                    let m = round_ties_away(*x * inv_res);
                    let m = if m >= min_m { m } else { min_m };
                    let m = if m <= max_m { m } else { max_m };
                    *x = m * res + 0.0;
                }
            }
            (Rounding::Truncate, Overflow::Saturate) => {
                for x in lanes {
                    let m = floor_magic(*x * inv_res);
                    let m = if m >= min_m { m } else { min_m };
                    let m = if m <= max_m { m } else { max_m };
                    *x = m * res + 0.0;
                }
            }
            (Rounding::Nearest, Overflow::Wrap) => {
                for x in lanes {
                    let m = round_ties_away(*x * inv_res);
                    let m = if m >= min_m && m <= max_m {
                        m
                    } else {
                        (m - min_m).rem_euclid(modulus) + min_m
                    };
                    *x = m * res + 0.0;
                }
            }
            (Rounding::Truncate, Overflow::Wrap) => {
                for x in lanes {
                    let m = floor_magic(*x * inv_res);
                    let m = if m >= min_m && m <= max_m {
                        m
                    } else {
                        (m - min_m).rem_euclid(modulus) + min_m
                    };
                    *x = m * res + 0.0;
                }
            }
        }
    }

    /// One-pass `d[i] = requantize(f(x[i], y[i]))` — an arithmetic
    /// kernel fused with [`LaneQuant::requantize`], arm for arm the
    /// same decision chain.  Fusing saves a full read+write sweep of
    /// the destination row per instruction, which is most of what the
    /// separate requantize pass cost (the arithmetic itself is one or
    /// two machine ops per lane).
    #[inline]
    fn map2_requant(&self, d: &mut [f64], x: &[f64], y: &[f64], f: impl Fn(f64, f64) -> f64) {
        let LaneQuant {
            res,
            inv_res,
            min_m,
            max_m,
            modulus,
            ..
        } = *self;
        match (self.rounding, self.overflow) {
            (Rounding::Nearest, Overflow::Saturate) => {
                for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                    let m = round_ties_away(f(x, y) * inv_res);
                    let m = if m >= min_m { m } else { min_m };
                    let m = if m <= max_m { m } else { max_m };
                    *d = m * res + 0.0;
                }
            }
            (Rounding::Truncate, Overflow::Saturate) => {
                for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                    let m = floor_magic(f(x, y) * inv_res);
                    let m = if m >= min_m { m } else { min_m };
                    let m = if m <= max_m { m } else { max_m };
                    *d = m * res + 0.0;
                }
            }
            (Rounding::Nearest, Overflow::Wrap) => {
                for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                    let m = round_ties_away(f(x, y) * inv_res);
                    let m = if m >= min_m && m <= max_m {
                        m
                    } else {
                        (m - min_m).rem_euclid(modulus) + min_m
                    };
                    *d = m * res + 0.0;
                }
            }
            (Rounding::Truncate, Overflow::Wrap) => {
                for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                    let m = floor_magic(f(x, y) * inv_res);
                    let m = if m >= min_m && m <= max_m {
                        m
                    } else {
                        (m - min_m).rem_euclid(modulus) + min_m
                    };
                    *d = m * res + 0.0;
                }
            }
        }
    }

    /// One-pass `d[i] = requantize(f(s[i]))` — the unary twin, for
    /// inputs (`f` = identity) and negation.  Implemented on top of
    /// [`LaneQuant::map2_requant`] with `s` as both operands; the
    /// optimizer deletes the duplicate load.
    #[inline]
    fn map1_requant(&self, d: &mut [f64], s: &[f64], f: impl Fn(f64) -> f64) {
        self.map2_requant(d, s, s, |x, _| f(x));
    }

    /// Scalar requantize for constants and single values.
    fn quantize(&self, x: f64) -> f64 {
        let mut one = [x];
        self.requantize(&mut one);
        one[0]
    }
}

/// Vectorized run state: two register banks of N lanes each.
///
/// Obtained from [`Executable::new_state`]; reusable across runs via
/// [`Executable::reset`].
#[derive(Clone, Debug)]
pub struct VmState {
    lanes: usize,
    /// Exact (reference) bank, register-major.
    exact: Vec<Vec<f64>>,
    /// Quantized (fixed-point) bank, register-major.
    quant: Vec<Vec<f64>>,
    /// Snapshot rows for cycle-breaking latches only (both banks
    /// interleaved as `[exact_0, quant_0, ...]`).  Most latches need no
    /// snapshot — the bind-time plan orders copies so every reader of a
    /// state runs before that state is overwritten; only register
    /// cycles (`a = delay c; c = delay a`) pre-copy one source here.
    latch_snap: Vec<Vec<f64>>,
}

impl VmState {
    /// Number of sample paths (lanes) this state carries.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }
}

/// A [`Program`] bound to one graph's constant values and one
/// word-length configuration — everything the instruction sweep needs,
/// resolved to flat arrays up front.
pub struct Executable {
    program: Arc<Program>,
    /// Per-node requantization parameters, indexed by raw node id.
    quants: Vec<LaneQuant>,
    /// `(register, exact value, quantized value)` per constant.
    consts: Vec<(Reg, f64, f64)>,
    /// `(snapshot row pair, source register)` copies that run before
    /// the latch sweep — one per broken register cycle.
    snap_srcs: Vec<(usize, usize)>,
    /// The latch sweep, in an order where every latch reading another
    /// latch's state runs before that state is overwritten (see
    /// [`LatchStep`]).
    latch_plan: Vec<LatchStep>,
}

/// One scheduled latch update: `state ← requant?(src)`.
struct LatchStep {
    state_reg: usize,
    src: LatchSrc,
    /// `None` when the delay node's quantizer equals its source's —
    /// every value in the source register is then already a fixed
    /// point of the requantizer (an in-range multiple of `res`, or the
    /// NaN that `Overflow::Wrap` maps to itself), so the pass is the
    /// identity and is skipped.
    requant: Option<LaneQuant>,
}

enum LatchSrc {
    /// Read the live register (safe by schedule order).
    Reg(usize),
    /// Read a pre-sweep snapshot row pair (cycle breaker).
    Snap(usize),
}

impl Executable {
    /// Binds `program` to the constants of `dfg` and the per-node
    /// quantizers of `config`.
    ///
    /// `dfg` must be the graph the program was compiled from (or a
    /// `with_const_values` twin — same shape, different constants);
    /// `config` must cover every node, as `WlConfig` guarantees by
    /// construction.
    #[must_use]
    pub fn new(program: Arc<Program>, dfg: &Dfg, config: &WlConfig) -> Executable {
        let quants: Vec<LaneQuant> = (0..program.n_nodes)
            .map(|i| LaneQuant::of(config.quantizer(NodeId::from_index(i))))
            .collect();
        let consts = program
            .consts
            .iter()
            .map(|&(reg, node)| {
                let c = match dfg.node(NodeId::from_index(node as usize)).op() {
                    Op::Const(c) => c,
                    other => unreachable!("const register bound to {other:?}"),
                };
                (reg, c + 0.0, quants[node as usize].quantize(c))
            })
            .collect();
        let (snap_srcs, latch_plan) = plan_latches(&program, dfg, &quants);
        Executable {
            program,
            quants,
            consts,
            snap_srcs,
            latch_plan,
        }
    }

    /// The compiled program this executable runs.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Allocates a fully initialized state with `lanes` sample paths:
    /// constants loaded, delay states and working registers zeroed.
    #[must_use]
    pub fn new_state(&self, lanes: usize) -> VmState {
        let mut state = VmState {
            lanes,
            exact: vec![vec![0.0; lanes]; self.program.n_regs],
            quant: vec![vec![0.0; lanes]; self.program.n_regs],
            latch_snap: vec![vec![0.0; lanes]; 2 * self.snap_srcs.len()],
        };
        self.reset(&mut state);
        state
    }

    /// Resets a state to time zero: delay states back to 0, constants
    /// re-splatted.  Working registers are left as-is — every one is
    /// written before it is read within a step.
    pub fn reset(&self, state: &mut VmState) {
        for &(state_reg, _, _) in &self.program.latches {
            state.exact[state_reg as usize].fill(0.0);
            state.quant[state_reg as usize].fill(0.0);
        }
        for &(reg, c, cq) in &self.consts {
            state.exact[reg as usize].fill(c);
            state.quant[reg as usize].fill(cq);
        }
    }

    /// Advances every lane by one step.
    ///
    /// `inputs[j]` holds the N lane values of graph input `j` for this
    /// step.  Outputs are read afterwards via [`Executable::exact_out`]
    /// / [`Executable::quant_out`]; delay latches update at the end of
    /// the sweep (two-phase, like the scalar simulators).
    ///
    /// # Errors
    ///
    /// [`VmError::InputArity`] on an input count mismatch;
    /// [`VmError::DivisionByZero`] when any lane divides by an exact or
    /// quantized zero (matching `Simulator` / `FixedSimulator`).
    pub fn step(&self, state: &mut VmState, inputs: &[Vec<f64>]) -> Result<(), VmError> {
        if inputs.len() != self.program.n_inputs {
            return Err(VmError::InputArity {
                expected: self.program.n_inputs,
                got: inputs.len(),
            });
        }
        debug_assert!(inputs.iter().all(|lane| lane.len() == state.lanes));

        for inst in &self.program.insts {
            let Inst {
                op,
                dst,
                a,
                b,
                node,
            } = *inst;
            let (dst, a, b) = (dst as usize, a as usize, b as usize);
            let q = &self.quants[node as usize];
            match op {
                OpCode::In => {
                    let lanes = &inputs[a];
                    for (d, &s) in state.exact[dst].iter_mut().zip(lanes) {
                        *d = s + 0.0;
                    }
                    q.map1_requant(&mut state.quant[dst], lanes, |x| x);
                }
                OpCode::Neg => {
                    let (d, s, _) = split_dst(&mut state.exact, dst, a, a);
                    for (d, &s) in d.iter_mut().zip(s) {
                        *d = -s + 0.0;
                    }
                    let (d, s, _) = split_dst(&mut state.quant, dst, a, a);
                    q.map1_requant(d, s, |x| -x);
                }
                OpCode::Add | OpCode::Sub | OpCode::Mul => {
                    let (d, x, y) = split_dst(&mut state.exact, dst, a, b);
                    arith(op, d, x, y);
                    let (d, x, y) = split_dst(&mut state.quant, dst, a, b);
                    match op {
                        OpCode::Add => q.map2_requant(d, x, y, |x, y| x + y),
                        OpCode::Sub => q.map2_requant(d, x, y, |x, y| x - y),
                        OpCode::Mul => q.map2_requant(d, x, y, |x, y| x * y),
                        _ => unreachable!(),
                    }
                }
                OpCode::Div => {
                    // Any zero divisor lane aborts the whole run — the
                    // scalar simulators fail the sample, and a batch
                    // cannot partially fail deterministically.
                    if let Some(_lane) = state.exact[b].iter().position(|&y| y == 0.0) {
                        return Err(VmError::DivisionByZero {
                            node: NodeId::from_index(node as usize),
                        });
                    }
                    if let Some(_lane) = state.quant[b].iter().position(|&y| y == 0.0) {
                        return Err(VmError::DivisionByZero {
                            node: NodeId::from_index(node as usize),
                        });
                    }
                    let (d, x, y) = split_dst(&mut state.exact, dst, a, b);
                    for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                        *d = x / y + 0.0;
                    }
                    let (d, x, y) = split_dst(&mut state.quant, dst, a, b);
                    q.map2_requant(d, x, y, |x, y| x / y);
                }
            }
        }

        // Latch sweep, semantically the two-phase update of
        // `Simulator::step` / `FixedSimulator::step` (every delay sees
        // its source's *pre-latch* value), realized without a full
        // snapshot: the bind-time plan orders copies so each state is
        // read by every dependent latch before being overwritten, and
        // only register cycles pre-copy one source row here.
        for &(row, src_reg) in &self.snap_srcs {
            state.latch_snap[2 * row].copy_from_slice(&state.exact[src_reg]);
            state.latch_snap[2 * row + 1].copy_from_slice(&state.quant[src_reg]);
        }
        for step in &self.latch_plan {
            let dst = step.state_reg;
            match step.src {
                LatchSrc::Reg(s) if s == dst => {
                    // Self-loop (`x = delay x`): the copy is a no-op;
                    // only a differing quantizer does anything.
                    if let Some(q) = &step.requant {
                        q.requantize(&mut state.quant[dst]);
                    }
                }
                LatchSrc::Reg(s) => {
                    let (d, src, _) = split_dst(&mut state.exact, dst, s, s);
                    d.copy_from_slice(src);
                    let (d, src, _) = split_dst(&mut state.quant, dst, s, s);
                    match &step.requant {
                        Some(q) => q.map1_requant(d, src, |x| x),
                        None => d.copy_from_slice(src),
                    }
                }
                LatchSrc::Snap(row) => {
                    state.exact[dst].copy_from_slice(&state.latch_snap[2 * row]);
                    let d = &mut state.quant[dst];
                    let src = &state.latch_snap[2 * row + 1];
                    match &step.requant {
                        Some(q) => q.map1_requant(d, src, |x| x),
                        None => d.copy_from_slice(src),
                    }
                }
            }
        }
        Ok(())
    }

    /// Exact (reference) lanes of output `k`, in declaration order.
    #[must_use]
    pub fn exact_out<'s>(&self, state: &'s VmState, k: usize) -> &'s [f64] {
        &state.exact[self.program.outputs[k].1 as usize]
    }

    /// Quantized (fixed-point) lanes of output `k`.
    #[must_use]
    pub fn quant_out<'s>(&self, state: &'s VmState, k: usize) -> &'s [f64] {
        &state.quant[self.program.outputs[k].1 as usize]
    }

    /// Output names in declaration order.
    #[must_use]
    pub fn output_names(&self) -> Vec<&str> {
        self.program.output_names()
    }
}

/// Schedules the latch updates: a topological order over the
/// "latch j reads latch i's state" relation (j must run before i
/// overwrites it), with register cycles broken by snapshotting one
/// member's source.  Each latch reads exactly one register, so every
/// node in the dependency graph has out-degree ≤ 1 and the leftovers
/// after Kahn's algorithm are simple cycles — snapshotting any one
/// member's source removes one edge and unravels its cycle.
///
/// Also resolves, per latch, whether the delay node's requantization
/// is the identity (its quantizer equals its source node's), in which
/// case the pass is dropped: every value the source register can hold
/// is already a fixed point of that quantizer.
fn plan_latches(
    program: &Program,
    dfg: &Dfg,
    quants: &[LaneQuant],
) -> (Vec<(usize, usize)>, Vec<LatchStep>) {
    let latches = &program.latches;
    let n = latches.len();

    // owner[r] = index of the latch whose state register is `r`.
    let mut owner = vec![usize::MAX; program.n_regs];
    for (i, &(state_reg, _, _)) in latches.iter().enumerate() {
        owner[state_reg as usize] = i;
    }
    // out_edge[j] = i  ⇔  latch j reads state_i  ⇔  j before i.
    let mut out_edge = vec![usize::MAX; n];
    let mut indeg = vec![0usize; n];
    for (j, &(_, src_reg, _)) in latches.iter().enumerate() {
        let i = owner[src_reg as usize];
        if i != usize::MAX && i != j {
            out_edge[j] = i;
            indeg[i] += 1;
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut done = vec![false; n];
    let mut snapped = vec![usize::MAX; n];
    let mut snap_srcs = Vec::new();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while order.len() < n {
        while let Some(j) = queue.pop() {
            done[j] = true;
            order.push(j);
            let i = out_edge[j];
            if i != usize::MAX {
                indeg[i] -= 1;
                if indeg[i] == 0 && !done[i] {
                    queue.push(i);
                }
            }
        }
        if order.len() == n {
            break;
        }
        // Everything left sits on a cycle; break one edge by giving
        // some pending latch a pre-sweep copy of its source.
        let j = (0..n)
            .find(|&j| !done[j] && out_edge[j] != usize::MAX)
            .expect("a stalled latch schedule always has a pending edge");
        let row = snap_srcs.len();
        snap_srcs.push((row, latches[j].1 as usize));
        snapped[j] = row;
        let i = out_edge[j];
        out_edge[j] = usize::MAX;
        indeg[i] -= 1;
        if indeg[i] == 0 && !done[i] {
            queue.push(i);
        }
    }

    let delay_nodes = dfg.delay_nodes();
    let plan = order
        .into_iter()
        .map(|k| {
            let (state_reg, src_reg, node) = latches[k];
            let d = delay_nodes[k];
            debug_assert_eq!(d.index() as u32, node);
            let src_node = dfg.node(d).args()[0];
            let q = quants[node as usize];
            LatchStep {
                state_reg: state_reg as usize,
                src: if snapped[k] != usize::MAX {
                    LatchSrc::Snap(snapped[k])
                } else {
                    LatchSrc::Reg(src_reg as usize)
                },
                requant: (q != quants[src_node.index()]).then_some(q),
            }
        })
        .collect();
    (snap_srcs, plan)
}

/// Splits one bank into `(&mut dst, &a, &b)`.  Sound because the
/// compiler never allocates `dst` to an operand register (operands are
/// recycled only *after* the destination is assigned).
#[inline]
fn split_dst(
    bank: &mut [Vec<f64>],
    dst: usize,
    a: usize,
    b: usize,
) -> (&mut [f64], &[f64], &[f64]) {
    debug_assert!(dst != a && dst != b);
    let (lo, rest) = bank.split_at_mut(dst);
    let (d, hi) = rest.split_at_mut(1);
    let pick_a = if a < dst { &lo[a] } else { &hi[a - dst - 1] };
    let pick_b = if b < dst { &lo[b] } else { &hi[b - dst - 1] };
    (&mut d[0], pick_a.as_slice(), pick_b.as_slice())
}

/// The three reassociation-free binary kernels, one tight loop each so
/// the optimizer vectorizes them without per-lane dispatch.
#[inline]
fn arith(op: OpCode, d: &mut [f64], x: &[f64], y: &[f64]) {
    match op {
        OpCode::Add => {
            for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                *d = x + y + 0.0;
            }
        }
        OpCode::Sub => {
            for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                *d = x - y + 0.0;
            }
        }
        OpCode::Mul => {
            for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
                *d = x * y + 0.0;
            }
        }
        _ => unreachable!("arith handles Add/Sub/Mul only"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use sna_dfg::{DfgBuilder, Simulator};
    use sna_fixp::FixedSimulator;
    use sna_interval::Interval;

    /// The magic-number round/floor must be bit-identical to the std
    /// functions for *every* input class: the requantize loops lean on
    /// this to stay bit-exact against the scalar simulators.
    #[test]
    fn magic_round_and_floor_match_std_bitwise() {
        fn round_ref(x: f64) -> f64 {
            // f64::round is round-half-away-from-zero — the reference.
            x.round()
        }
        let mut probes: Vec<f64> = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.5,
            -1.5,
            2.5,
            -2.5,
            0.49999999999999994,
            f64::EPSILON,
            MAGIC - 1.0,
            MAGIC - 0.5,
            MAGIC,
            MAGIC + 1.0,
            -MAGIC,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        // Dense sweep around small magnitudes, including exact ties.
        for i in -2000i32..=2000 {
            probes.push(f64::from(i) / 8.0);
            probes.push(f64::from(i) / 7.0);
            probes.push(f64::from(i) * 1234.5678);
        }
        for &p in &probes {
            assert_eq!(
                round_ties_away(p).to_bits(),
                round_ref(p).to_bits(),
                "round_ties_away({p:e})"
            );
            assert_eq!(
                floor_magic(p).to_bits(),
                p.floor().to_bits(),
                "floor_magic({p:e})"
            );
        }
        assert!(round_ties_away(f64::NAN).is_nan());
        assert!(floor_magic(f64::NAN).is_nan());
    }

    /// [`LaneQuant::requantize`] vs the scalar [`Quantizer::quantize`]
    /// at the places they historically diverged or could: the range
    /// endpoints `lo`/`hi`, one tick and one half-tick inside/outside
    /// them, and ±0.0 (the scalar path's i64 mantissa round-trip erases
    /// the sign of zero; the lane path must match bit-for-bit).
    #[test]
    fn requantize_matches_scalar_quantizer_at_endpoints_and_zero() {
        use sna_fixp::Format;
        let formats = [
            Format::new(4, 0).unwrap(),   // integers −8..=7
            Format::new(8, 6).unwrap(),   // fractional, hi ≠ |lo|
            Format::new(12, 11).unwrap(), // the default unit-range shape
            Format::new(27, 20).unwrap(), // widest exactly-mirrored WL
        ];
        for format in formats {
            let res = format.resolution();
            let (lo, hi) = (format.min_value(), format.max_value());
            let probes = [
                lo,
                hi,
                0.0,
                -0.0,
                lo + res,
                hi - res,
                lo - res,
                hi + res,
                lo - res / 2.0, // rounding tie straddling the endpoint
                hi + res / 2.0,
                res / 2.0, // tie at the origin
                -res / 2.0,
                2.0 * lo,
                2.0 * hi,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            for rounding in [Rounding::Nearest, Rounding::Truncate] {
                for overflow in [Overflow::Saturate, Overflow::Wrap] {
                    let q = Quantizer::new(format, rounding, overflow);
                    let lane = LaneQuant::of(&q);
                    for &x in &probes {
                        if overflow == Overflow::Wrap && !x.is_finite() {
                            continue; // wrap of ±∞ is documented out of contract
                        }
                        let mut lanes = [x];
                        lane.requantize(&mut lanes);
                        let want = q.quantize(x);
                        assert_eq!(
                            lanes[0].to_bits(),
                            want.to_bits(),
                            "requantize({x:e}) with {rounding:?}/{overflow:?} on {format:?}: \
                             lane {:e} vs scalar {want:e}",
                            lanes[0]
                        );
                        let mut fused = [0.0];
                        lane.map2_requant(&mut fused, &[x], &[0.0], |a, b| a + b);
                        assert_eq!(
                            fused[0].to_bits(),
                            want.to_bits(),
                            "map2_requant({x:e}) with {rounding:?}/{overflow:?} on {format:?}"
                        );
                    }
                }
            }
        }
    }

    /// An endpoint-valued trace through the whole executor: inputs
    /// sitting exactly on `lo`, `hi`, ±0.0 and the half-tick ties must
    /// keep the VM bit-identical to both scalar simulators (the
    /// `neg`/`sub` paths produce `-0.0` internally, which the
    /// quantizers must normalize identically).
    #[test]
    fn endpoint_valued_traces_stay_bit_identical_to_the_scalar_simulators() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let p = b.mul(s, s);
        let d = b.sub(p, x);
        let n = b.neg(d);
        b.output("p", p);
        b.output("n", n);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-2.0, 2.0).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 12).unwrap();
        let res = 2.0 / ((1u64 << 11) as f64); // 12-bit format over [-2, 2)
        let edge = [
            0.0,
            -0.0,
            2.0,
            -2.0,
            2.0 - res,
            -2.0 + res,
            res / 2.0,
            -res / 2.0,
        ];
        // Every ordered pair of edge values, one lane per pair.
        let steps = 4;
        let traces: Vec<Vec<f64>> = edge
            .iter()
            .flat_map(|&a| edge.iter().map(move |&b| (a, b)))
            .map(|(a, b)| {
                (0..steps)
                    .flat_map(|t| [a, if t % 2 == 0 { b } else { -b }])
                    .collect()
            })
            .collect();
        lockstep_check(&dfg, &config, &traces, steps);
    }

    fn lockstep_check(dfg: &Dfg, config: &WlConfig, traces: &[Vec<f64>], steps: usize) {
        let program = Arc::new(Program::compile(dfg));
        let exe = Executable::new(Arc::clone(&program), dfg, config);
        let lanes = traces.len();
        let mut state = exe.new_state(lanes);

        let mut refs: Vec<Simulator> = (0..lanes).map(|_| Simulator::new(dfg)).collect();
        let mut fixes: Vec<FixedSimulator> = (0..lanes)
            .map(|_| FixedSimulator::new(dfg, config))
            .collect();

        for t in 0..steps {
            let inputs: Vec<Vec<f64>> = (0..dfg.n_inputs())
                .map(|j| traces.iter().map(|tr| tr[t * dfg.n_inputs() + j]).collect())
                .collect();
            exe.step(&mut state, &inputs).unwrap();
            for (lane, (r, f)) in refs.iter_mut().zip(fixes.iter_mut()).enumerate() {
                let per_lane: Vec<f64> = (0..dfg.n_inputs()).map(|j| inputs[j][lane]).collect();
                let want_exact = r.step(&per_lane).unwrap();
                let want_fixed = f.step(&per_lane).unwrap();
                for k in 0..dfg.outputs().len() {
                    let got_e = exe.exact_out(&state, k)[lane];
                    let got_q = exe.quant_out(&state, k)[lane];
                    assert_eq!(
                        got_e.to_bits(),
                        want_exact[k].to_bits(),
                        "exact t={t} k={k}"
                    );
                    assert_eq!(
                        got_q.to_bits(),
                        want_fixed[k].to_bits(),
                        "quant t={t} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn combinational_graph_matches_both_scalar_simulators_bitwise() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let p = b.mul(s, s);
        let d = b.sub(p, x);
        let n = b.neg(d);
        b.output("p", p);
        b.output("n", n);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-2.0, 2.0).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 12).unwrap();

        let traces: Vec<Vec<f64>> = (0..16)
            .map(|i| {
                (0..2)
                    .map(|j| -1.5 + 0.17 * (i as f64) + 0.09 * (j as f64))
                    .collect()
            })
            .collect();
        lockstep_check(&dfg, &config, &traces, 1);
    }

    #[test]
    fn feedback_graph_matches_both_scalar_simulators_bitwise() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 10).unwrap();

        let steps = 32;
        let traces: Vec<Vec<f64>> = (0..8)
            .map(|lane| {
                (0..steps)
                    .map(|t| 0.8 * ((lane * 31 + t * 7) as f64 * 0.061).sin())
                    .collect()
            })
            .collect();
        lockstep_check(&dfg, &config, &traces, steps);
    }

    /// Regression: a delay *chain* (`x2 = delay x1`, `x1 = delay x`) is a
    /// latch whose source is another latch's state.  The latch phase must
    /// snapshot all sources before writing any state, or the shift
    /// register collapses (every tap sees the freshest sample).
    #[test]
    fn delay_chain_matches_both_scalar_simulators_bitwise() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let taps = b.delay_chain(x, 3);
        let t0 = b.mul_const(0.25, x);
        let t1 = b.mul_const(0.5, taps[0]);
        let t2 = b.mul_const(-0.3, taps[1]);
        let t3 = b.mul_const(0.55, taps[2]);
        let s1 = b.add(t0, t1);
        let s2 = b.add(t2, t3);
        let y = b.add(s1, s2);
        b.output("y", y);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 10).unwrap();

        let steps = 32;
        let traces: Vec<Vec<f64>> = (0..8)
            .map(|lane| {
                (0..steps)
                    .map(|t| 0.9 * ((lane * 17 + t * 5) as f64 * 0.083).cos())
                    .collect()
            })
            .collect();
        lockstep_check(&dfg, &config, &traces, steps);
    }

    /// Regression: two delays feeding each other (a swap register) — the
    /// fully cyclic case no latch ordering can fix; only a two-phase
    /// snapshot gives both delays their pre-latch sources.
    #[test]
    fn swap_register_matches_both_scalar_simulators_bitwise() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let a = b.delay_placeholder();
        let c = b.delay_placeholder();
        let half = b.mul_const(0.5, c);
        let ain = b.add(half, x);
        b.bind_delay(a, ain).unwrap();
        b.bind_delay(c, a).unwrap();
        let y = b.sub(a, c);
        b.output("y", y);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-0.25, 0.25).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 12).unwrap();

        let steps = 24;
        let traces: Vec<Vec<f64>> = (0..6)
            .map(|lane| {
                (0..steps)
                    .map(|t| 0.2 * ((lane * 13 + t * 3) as f64 * 0.107).sin())
                    .collect()
            })
            .collect();
        lockstep_check(&dfg, &config, &traces, steps);
    }

    #[test]
    fn division_by_zero_reports_the_offending_node() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let q = b.div(x, y);
        b.output("q", q);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(1.0, 2.0).unwrap(); dfg.n_inputs()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 12).unwrap();
        let exe = Executable::new(Arc::new(Program::compile(&dfg)), &dfg, &config);
        let mut state = exe.new_state(4);
        let inputs = vec![vec![1.0; 4], vec![1.0, 1.0, 0.0, 1.0]];
        let err = exe.step(&mut state, &inputs).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { node } if node == q));
    }
}
