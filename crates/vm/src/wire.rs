//! Binary serialization of a compiled [`Program`] for the persistent
//! artifact store.
//!
//! The bytecode is shape-level (no constant values, no quantizers), so
//! a stored program can be rebound to any coefficient set — exactly the
//! property that lets the store key it by shape-tier fingerprints.
//!
//! Decoding re-validates the invariants the executor's
//! disjoint-borrow register split relies on (every register reference
//! inside the file, destination never aliasing an operand), so a frame
//! that passes CRC but not schema still degrades to a clean recompile
//! instead of a panic deep in the lane kernels.

use sna_store::{WireError, WireReader, WireWriter};

use crate::program::{Inst, OpCode, Program, Reg};

const TAG_IN: u8 = 0;
const TAG_ADD: u8 = 1;
const TAG_SUB: u8 = 2;
const TAG_MUL: u8 = 3;
const TAG_DIV: u8 = 4;
const TAG_NEG: u8 = 5;

impl Program {
    /// Encodes the program for the artifact store.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(self.n_regs as u64);
        w.u64(self.n_inputs as u64);
        w.u64(self.n_nodes as u64);
        w.len(self.insts.len());
        for i in &self.insts {
            w.u8(match i.op {
                OpCode::In => TAG_IN,
                OpCode::Add => TAG_ADD,
                OpCode::Sub => TAG_SUB,
                OpCode::Mul => TAG_MUL,
                OpCode::Div => TAG_DIV,
                OpCode::Neg => TAG_NEG,
            });
            w.u32(i.dst);
            w.u32(i.a);
            w.u32(i.b);
            w.u32(i.node);
        }
        w.len(self.consts.len());
        for &(reg, node) in &self.consts {
            w.u32(reg);
            w.u32(node);
        }
        w.len(self.latches.len());
        for &(state, src, node) in &self.latches {
            w.u32(state);
            w.u32(src);
            w.u32(node);
        }
        w.len(self.outputs.len());
        for (name, reg) in &self.outputs {
            w.str(name);
            w.u32(*reg);
        }
        w.finish()
    }

    /// Decodes a program written by [`Program::to_wire`], re-validating
    /// every register/node reference and the no-alias rule.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed or invariant-violating input.
    pub fn from_wire(bytes: &[u8]) -> Result<Program, WireError> {
        let mut r = WireReader::new(bytes);
        let n_regs = usize::try_from(r.u64()?).map_err(|_| WireError::new("n_regs"))?;
        let n_inputs = usize::try_from(r.u64()?).map_err(|_| WireError::new("n_inputs"))?;
        let n_nodes = usize::try_from(r.u64()?).map_err(|_| WireError::new("n_nodes"))?;
        if n_regs > u32::MAX as usize || n_nodes > u32::MAX as usize {
            return Err(WireError::new("register/node count exceeds u32"));
        }
        let reg = |v: Reg, what: &str| -> Result<Reg, WireError> {
            if (v as usize) < n_regs {
                Ok(v)
            } else {
                Err(WireError::new(format!(
                    "{what} register {v} out of range ({n_regs})"
                )))
            }
        };
        let node = |v: u32| -> Result<u32, WireError> {
            if (v as usize) < n_nodes {
                Ok(v)
            } else {
                Err(WireError::new(format!(
                    "node index {v} out of range ({n_nodes})"
                )))
            }
        };

        let n_insts = r.read_count(17)?;
        let mut insts = Vec::with_capacity(n_insts);
        for _ in 0..n_insts {
            let op = match r.u8()? {
                TAG_IN => OpCode::In,
                TAG_ADD => OpCode::Add,
                TAG_SUB => OpCode::Sub,
                TAG_MUL => OpCode::Mul,
                TAG_DIV => OpCode::Div,
                TAG_NEG => OpCode::Neg,
                t => return Err(WireError::new(format!("unknown opcode tag {t}"))),
            };
            let (dst, a, b) = (r.u32()?, r.u32()?, r.u32()?);
            let inst_node = node(r.u32()?)?;
            let dst = reg(dst, "destination")?;
            if op == OpCode::In {
                // `a`/`b` carry the input index, not a register.
                if a as usize >= n_inputs || b != a {
                    return Err(WireError::new(format!("bad input index {a}")));
                }
            } else {
                reg(a, "operand")?;
                reg(b, "operand")?;
                // The executor splits the lane banks at `dst`; aliasing
                // would make that split unsound.
                if dst == a || dst == b {
                    return Err(WireError::new(format!(
                        "destination register {dst} aliases an operand"
                    )));
                }
            }
            insts.push(Inst {
                op,
                dst,
                a,
                b,
                node: inst_node,
            });
        }

        let n_consts = r.read_count(8)?;
        let mut consts = Vec::with_capacity(n_consts);
        for _ in 0..n_consts {
            consts.push((reg(r.u32()?, "constant")?, node(r.u32()?)?));
        }
        let n_latches = r.read_count(12)?;
        let mut latches = Vec::with_capacity(n_latches);
        for _ in 0..n_latches {
            latches.push((
                reg(r.u32()?, "latch state")?,
                reg(r.u32()?, "latch source")?,
                node(r.u32()?)?,
            ));
        }
        let n_outputs = r.read_count(12)?;
        let mut outputs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let name = r.str()?;
            outputs.push((name, reg(r.u32()?, "output")?));
        }
        r.expect_end()?;
        Ok(Program {
            insts,
            n_regs,
            consts,
            latches,
            outputs,
            n_inputs,
            n_nodes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;

    fn program() -> Program {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        Program::compile(&b.build().unwrap())
    }

    #[test]
    fn round_trips_byte_identically() {
        let p = program();
        let decoded = Program::from_wire(&p.to_wire()).unwrap();
        assert_eq!(decoded.to_wire(), p.to_wire());
        assert_eq!(decoded.n_insts(), p.n_insts());
        assert_eq!(decoded.n_regs(), p.n_regs());
        assert_eq!(decoded.output_names(), p.output_names());
    }

    #[test]
    fn rejects_damage_without_panicking() {
        let good = program().to_wire();
        for cut in 0..good.len() {
            assert!(Program::from_wire(&good[..cut]).is_err(), "cut at {cut}");
        }
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            let _ = Program::from_wire(&bad); // may err, must not panic
        }
    }

    #[test]
    fn rejects_aliasing_and_out_of_range_registers() {
        let p = program();
        let mut w = WireWriter::new();
        w.u64(1); // n_regs: far too small for the real registers
        w.u64(p.n_inputs as u64);
        w.u64(p.n_nodes as u64);
        w.len(p.insts.len());
        for i in &p.insts {
            w.u8(match i.op {
                OpCode::In => TAG_IN,
                OpCode::Add => TAG_ADD,
                OpCode::Sub => TAG_SUB,
                OpCode::Mul => TAG_MUL,
                OpCode::Div => TAG_DIV,
                OpCode::Neg => TAG_NEG,
            });
            w.u32(i.dst);
            w.u32(i.a);
            w.u32(i.b);
            w.u32(i.node);
        }
        w.len(0);
        w.len(0);
        w.len(0);
        assert!(Program::from_wire(&w.finish()).is_err());
    }
}
