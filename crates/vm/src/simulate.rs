//! The Monte-Carlo driver: K×N sampled paths through an [`Executable`]
//! with deterministic seed fan-out and a deterministic merge.
//!
//! # Determinism contract
//!
//! The lane population is split into fixed-size *chunks*; chunk `i`
//! seeds its own `StdRng` from
//! `seed + (i+1) · 0x9E3779B97F4A7C15` (wrapping), and workers pull
//! chunk indices from an atomic cursor exactly like the service's
//! `run_ordered` pool.  Results are merged in chunk-index order, so the
//! output is a pure function of `(program, ranges, options)` — the
//! worker count only changes wall-clock time, never a single bit of the
//! report.  This is asserted across 1/4/8 workers in the core test
//! suite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sna_hist::Histogram;
use sna_interval::Interval;

use crate::exec::Executable;
use crate::VmError;

/// Lanes per chunk: big enough to amortize the instruction sweep, small
/// enough that a design's full register file (two f64 banks × lanes)
/// stays cache-resident — per-lane step cost rises measurably past this
/// (see `benches/eval.rs`) — and that chunk-level work stealing
/// balances uneven core counts.
pub(crate) const CHUNK_LANES: usize = 512;

/// Golden-ratio increment for per-chunk seed derivation (SplitMix64's
/// gamma) — consecutive chunk seeds land far apart in the seed space.
const SEED_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Options for [`simulate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimOptions {
    /// Number of independent sample paths (lanes across all chunks).
    pub paths: usize,
    /// Base RNG seed; every derived stream is a pure function of it.
    pub seed: u64,
    /// Steps to simulate per path (use 1 for combinational designs).
    pub steps: usize,
    /// Leading steps discarded from each path before collecting errors.
    pub warmup: usize,
    /// Worker threads; 0 means available hardware parallelism.
    pub workers: usize,
    /// Bins of the empirical per-output error histogram.
    pub bins: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            paths: 100_000,
            seed: 0x5eed_cafe,
            steps: 64,
            warmup: 16,
            workers: 0,
            bins: 64,
        }
    }
}

/// Empirical error statistics of one output (error = quantized − exact,
/// matching `sna_fixp::OutputErrorStats` conventions: population
/// variance, `power = E[e²]`).
#[derive(Clone, Debug)]
pub struct OutputStats {
    /// Output name as declared on the graph.
    pub name: String,
    /// Mean error.
    pub mean: f64,
    /// Error variance (population).
    pub variance: f64,
    /// Smallest observed error.
    pub min: f64,
    /// Largest observed error.
    pub max: f64,
    /// Mean squared error (noise power).
    pub power: f64,
    /// Number of collected error samples.
    pub samples: usize,
    /// Histogram of the observed errors.
    pub histogram: Histogram,
}

/// One chunk's collected error samples, per output.
pub(crate) type ChunkSamples = Vec<Vec<f64>>;

/// Runs `opts.paths` Monte-Carlo sample paths and returns per-output
/// empirical error statistics.
///
/// `input_ranges[j]` is the range input `j` is drawn from (uniformly;
/// point ranges pin the input, mirroring `sna_fixp::monte_carlo_error`).
/// Each path runs `opts.steps` steps with fresh draws every step and
/// collects `quantized − exact` per output from step `opts.warmup`
/// onward.
///
/// # Errors
///
/// * [`VmError::NoSamples`] when `paths == 0` or `steps <= warmup`;
/// * [`VmError::InputArity`] on a range/input count mismatch;
/// * [`VmError::DivisionByZero`] propagated from any lane;
/// * [`VmError::Histogram`] if collected errors are non-finite.
pub fn simulate(
    exe: &Executable,
    input_ranges: &[Interval],
    opts: &SimOptions,
) -> Result<Vec<OutputStats>, VmError> {
    simulate_with(exe, input_ranges, opts, &|| false)
}

/// [`simulate`] with a cooperative cancellation check, consulted before
/// every chunk claim (a chunk is the smallest unit of work — at most
/// 512 lanes × `steps` instruction sweeps).  When `cancelled` returns
/// `true` the remaining chunks are abandoned and the call fails with
/// [`VmError::Cancelled`]; chunks already computed are discarded.
///
/// The check must be cheap (an atomic load, a deadline comparison): with
/// many workers it runs once per chunk per worker.  A check that never
/// fires leaves the result bit-identical to [`simulate`].
///
/// # Errors
///
/// [`VmError::Cancelled`] when the check fires; otherwise as
/// [`simulate`].
pub fn simulate_with(
    exe: &Executable,
    input_ranges: &[Interval],
    opts: &SimOptions,
    cancelled: &(dyn Fn() -> bool + Sync),
) -> Result<Vec<OutputStats>, VmError> {
    if opts.paths == 0 || opts.steps <= opts.warmup {
        return Err(VmError::NoSamples);
    }
    if input_ranges.len() != exe.program().n_inputs() {
        return Err(VmError::InputArity {
            expected: exe.program().n_inputs(),
            got: input_ranges.len(),
        });
    }
    let n_out = exe.output_names().len();
    let n_chunks = opts.paths.div_ceil(CHUNK_LANES);
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        opts.workers
    }
    .clamp(1, n_chunks);

    let run_chunk = |i: usize| -> Result<ChunkSamples, VmError> {
        let lanes = (opts.paths - i * CHUNK_LANES).min(CHUNK_LANES);
        let seed = opts
            .seed
            .wrapping_add((i as u64 + 1).wrapping_mul(SEED_GAMMA));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = exe.new_state(lanes);
        let mut inputs: Vec<Vec<f64>> = vec![vec![0.0; lanes]; input_ranges.len()];
        let collected = opts.steps - opts.warmup;
        let mut samples: ChunkSamples = vec![Vec::with_capacity(lanes * collected); n_out];
        for step in 0..opts.steps {
            for (lane_values, r) in inputs.iter_mut().zip(input_ranges) {
                if r.is_point() {
                    lane_values.fill(r.lo());
                } else {
                    for v in lane_values.iter_mut() {
                        *v = rng.gen_range(r.lo()..r.hi());
                    }
                }
            }
            exe.step(&mut state, &inputs)?;
            if step >= opts.warmup {
                for (k, out) in samples.iter_mut().enumerate() {
                    let exact = exe.exact_out(&state, k);
                    let quant = exe.quant_out(&state, k);
                    out.extend(quant.iter().zip(exact).map(|(&q, &e)| q - e));
                }
            }
        }
        Ok(samples)
    };

    let chunks = run_chunks(n_chunks, workers, cancelled, &run_chunk);
    merge_stats(exe, n_out, chunks, opts.bins)
}

/// Deterministic fan-out shared by [`simulate_with`] and the trace
/// replay driver: workers steal chunk indices from a cursor; results
/// are reassembled in chunk order before merging.  The cancellation
/// check gates every chunk claim; a chunk abandoned to cancellation
/// leaves its slot empty, which the caller's merge reads as
/// `Cancelled` (never a panic).
pub(crate) fn run_chunks(
    n_chunks: usize,
    workers: usize,
    cancelled: &(dyn Fn() -> bool + Sync),
    run_chunk: &(dyn Fn(usize) -> Result<ChunkSamples, VmError> + Sync),
) -> Vec<Result<ChunkSamples, VmError>> {
    if workers == 1 {
        (0..n_chunks)
            .map(|i| {
                if cancelled() {
                    Err(VmError::Cancelled)
                } else {
                    run_chunk(i)
                }
            })
            .collect()
    } else {
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<std::sync::Mutex<Option<Result<ChunkSamples, VmError>>>> =
            (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if cancelled() {
                        break;
                    }
                    let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    *results[i].lock().expect("chunk slot lock") = Some(run_chunk(i));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("chunk slot lock")
                    .unwrap_or(Err(VmError::Cancelled))
            })
            .collect()
    }
}

/// Merges chunk results in chunk-index order — the sample sequence
/// (and therefore every statistic) is identical for any worker count —
/// and reduces them to per-output statistics.
pub(crate) fn merge_stats(
    exe: &Executable,
    n_out: usize,
    chunks: Vec<Result<ChunkSamples, VmError>>,
    bins: usize,
) -> Result<Vec<OutputStats>, VmError> {
    let mut merged: Vec<Vec<f64>> = vec![Vec::new(); n_out];
    for chunk in chunks {
        let chunk = chunk?;
        for (into, from) in merged.iter_mut().zip(chunk) {
            into.extend(from);
        }
    }

    exe.output_names()
        .iter()
        .zip(&merged)
        .map(|(name, samples)| stats_of(name, samples, bins))
        .collect()
}

fn stats_of(name: &str, samples: &[f64], bins: usize) -> Result<OutputStats, VmError> {
    if samples.is_empty() {
        return Err(VmError::NoSamples);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let variance = samples.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
    let power = samples.iter().map(|e| e * e).sum::<f64>() / n;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let histogram = Histogram::from_samples(samples.iter().copied(), bins)?;
    Ok(OutputStats {
        name: name.to_string(),
        mean,
        variance,
        min,
        max,
        power,
        samples: samples.len(),
        histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use sna_dfg::DfgBuilder;
    use sna_fixp::WlConfig;
    use std::sync::Arc;

    fn toy_exe() -> (Executable, Vec<Interval>) {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let p = b.mul(s, s);
        b.output("p", p);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); 2];
        let config = WlConfig::from_ranges(&dfg, &ranges, 10).unwrap();
        let exe = Executable::new(Arc::new(Program::compile(&dfg)), &dfg, &config);
        (exe, ranges)
    }

    #[test]
    fn worker_count_never_changes_a_bit() {
        let (exe, ranges) = toy_exe();
        let opts = SimOptions {
            paths: 10_000,
            steps: 1,
            warmup: 0,
            workers: 1,
            ..SimOptions::default()
        };
        let base = simulate(&exe, &ranges, &opts).unwrap();
        for workers in [2, 4, 8] {
            let alt = simulate(&exe, &ranges, &SimOptions { workers, ..opts }).unwrap();
            for (a, b) in base.iter().zip(&alt) {
                assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                assert_eq!(a.min.to_bits(), b.min.to_bits());
                assert_eq!(a.max.to_bits(), b.max.to_bits());
                assert_eq!(a.samples, b.samples);
            }
        }
    }

    #[test]
    fn different_seeds_differ_same_seed_repeats() {
        let (exe, ranges) = toy_exe();
        let opts = SimOptions {
            paths: 2_000,
            steps: 1,
            warmup: 0,
            ..SimOptions::default()
        };
        let a = simulate(&exe, &ranges, &opts).unwrap();
        let b = simulate(&exe, &ranges, &opts).unwrap();
        assert_eq!(a[0].mean.to_bits(), b[0].mean.to_bits());
        let c = simulate(&exe, &ranges, &SimOptions { seed: 1, ..opts }).unwrap();
        assert_ne!(a[0].mean.to_bits(), c[0].mean.to_bits());
    }

    #[test]
    fn cancellation_stops_the_fan_out() {
        let (exe, ranges) = toy_exe();
        let opts = SimOptions {
            paths: 10_000,
            steps: 1,
            warmup: 0,
            workers: 4,
            ..SimOptions::default()
        };
        // Already-cancelled: both the serial and parallel paths fail.
        for workers in [1, 4] {
            let opts = SimOptions { workers, ..opts };
            assert!(matches!(
                simulate_with(&exe, &ranges, &opts, &|| true),
                Err(VmError::Cancelled)
            ));
        }
        // A check that never fires leaves the report bit-identical.
        let a = simulate(&exe, &ranges, &opts).unwrap();
        let b = simulate_with(&exe, &ranges, &opts, &|| false).unwrap();
        assert_eq!(a[0].mean.to_bits(), b[0].mean.to_bits());
        assert_eq!(a[0].variance.to_bits(), b[0].variance.to_bits());
    }

    #[test]
    fn degenerate_options_are_rejected() {
        let (exe, ranges) = toy_exe();
        let opts = SimOptions {
            paths: 0,
            ..SimOptions::default()
        };
        assert!(matches!(
            simulate(&exe, &ranges, &opts),
            Err(VmError::NoSamples)
        ));
        let opts = SimOptions {
            steps: 4,
            warmup: 4,
            ..SimOptions::default()
        };
        assert!(matches!(
            simulate(&exe, &ranges, &opts),
            Err(VmError::NoSamples)
        ));
        assert!(matches!(
            simulate(&exe, &ranges[..1], &SimOptions::default()),
            Err(VmError::InputArity {
                expected: 2,
                got: 1
            })
        ));
    }
}
