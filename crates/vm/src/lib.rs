//! `sna-vm` — a lowered bytecode engine and vectorized Monte-Carlo
//! evaluation backend for SNA datapath graphs.
//!
//! The interpreted engines walk the [`sna_dfg::Dfg`] node-by-node
//! through match dispatch for every sample.  This crate compiles the
//! graph **once** into a flat, register-allocated program
//! ([`Program`]), binds it to concrete constants and per-node
//! quantizers ([`Executable`]), and then sweeps N Monte-Carlo sample
//! paths per instruction over contiguous f64 lanes — paired exact and
//! quantized banks, so every step yields per-output error samples
//! (`quantized − exact`) for free.
//!
//! Three layers:
//!
//! * [`Program::compile`] — lowering + linear-scan register allocation
//!   (delay feedback and constants handled via pinned registers);
//! * [`Executable`] — the vectorized interpreter, bit-compatible with
//!   the scalar `Simulator`/`FixedSimulator` pair (see the README for
//!   the exactness argument and its documented caveats);
//! * [`simulate`] — a deterministic chunked Monte-Carlo driver whose
//!   output is independent of the worker count.
//!
//! See `crates/vm/README.md` for the bytecode format, SoA layout, and
//! determinism scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod program;
mod replay;
mod simulate;
mod wire;

pub use exec::{Executable, VmState};
pub use program::{Inst, OpCode, Program, Reg};
pub use replay::{replay, replay_with, ReplayOptions};
pub use simulate::{simulate, simulate_with, OutputStats, SimOptions};

use sna_dfg::NodeId;
use sna_hist::HistError;

/// Errors from compilation, execution, or simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum VmError {
    /// A division instruction saw a zero divisor (exact or quantized)
    /// in at least one lane.
    DivisionByZero {
        /// The graph node performing the division.
        node: NodeId,
    },
    /// The number of input lane vectors does not match the program.
    InputArity {
        /// Inputs the program expects.
        expected: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// No sample paths requested, or every step fell inside the warmup.
    NoSamples,
    /// Building the empirical error histogram failed.
    Histogram(HistError),
    /// The simulation was stopped by its caller's cancellation check
    /// before every chunk completed (see [`simulate_with`]).
    Cancelled,
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::DivisionByZero { node } => {
                write!(f, "division by zero at node {node}")
            }
            VmError::InputArity { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            VmError::NoSamples => {
                write!(f, "no samples to simulate (paths = 0 or steps <= warmup)")
            }
            VmError::Histogram(e) => write!(f, "error histogram: {e}"),
            VmError::Cancelled => write!(f, "simulation cancelled"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<HistError> for VmError {
    fn from(e: HistError) -> Self {
        VmError::Histogram(e)
    }
}
