//! The trace replay driver: recorded sample rows through an
//! [`Executable`]'s paired exact/quantized lane banks, instead of RNG
//! draws — the measured-signal counterpart of [`crate::simulate`].
//!
//! # Replay scheme
//!
//! The trace is cut into *segments* of [`ReplayOptions::seg`]
//! consecutive rows; each segment becomes one VM lane. Before a
//! segment's rows are collected, the lane replays the
//! [`ReplayOptions::warmup`] rows preceding the segment (zero-filled
//! where the trace does not reach back far enough) so delay registers
//! carry realistic state across segment boundaries. For a
//! combinational design use `seg = 1, warmup = 0`: rows map straight
//! onto lanes. For an FIR-style design whose memory is at most
//! `warmup` steps deep, the segmented replay is *exactly* the
//! continuous single-lane replay; for feedback designs with longer
//! memory it is an overlap approximation — raise `warmup` to tighten
//! it.
//!
//! # Determinism contract
//!
//! Segments are grouped into fixed-size chunks and fanned out through
//! the same atomic-cursor pool as [`crate::simulate`], with results
//! merged in chunk-index order. There is no RNG anywhere: the collected
//! error sequence is the trace's row order, and the report is a pure
//! function of `(program, trace, options)` — the worker count never
//! changes a single bit.

use crate::exec::Executable;
use crate::simulate::{merge_stats, run_chunks, ChunkSamples, OutputStats, CHUNK_LANES};
use crate::VmError;

/// Options for [`replay`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplayOptions {
    /// Rows collected per lane segment (1 maps rows straight onto
    /// lanes; 0 is treated as 1).
    pub seg: usize,
    /// Overlap rows replayed before each segment to warm delay state.
    pub warmup: usize,
    /// Worker threads; 0 means available hardware parallelism.
    pub workers: usize,
    /// Bins of the empirical per-output error histogram.
    pub bins: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            seg: 512,
            warmup: 64,
            workers: 0,
            bins: 64,
        }
    }
}

/// Replays a recorded trace through the executable and returns
/// per-output empirical error statistics over exactly the trace's
/// rows, in row order.
///
/// `columns[j]` holds input `j`'s recorded samples; all columns must
/// be the same length (the row count).
///
/// # Errors
///
/// * [`VmError::InputArity`] on a column/input count mismatch or
///   unequal column lengths;
/// * [`VmError::NoSamples`] when the trace has no rows (or the design
///   has no inputs to drive);
/// * [`VmError::DivisionByZero`] propagated from any lane;
/// * [`VmError::Histogram`] if collected errors are non-finite.
pub fn replay(
    exe: &Executable,
    columns: &[Vec<f64>],
    opts: &ReplayOptions,
) -> Result<Vec<OutputStats>, VmError> {
    replay_with(exe, columns, opts, &|| false)
}

/// [`replay`] with a cooperative cancellation check, consulted before
/// every chunk claim exactly like [`crate::simulate_with`]. A check
/// that never fires leaves the result bit-identical to [`replay`].
///
/// # Errors
///
/// [`VmError::Cancelled`] when the check fires; otherwise as
/// [`replay`].
pub fn replay_with(
    exe: &Executable,
    columns: &[Vec<f64>],
    opts: &ReplayOptions,
    cancelled: &(dyn Fn() -> bool + Sync),
) -> Result<Vec<OutputStats>, VmError> {
    let n_inputs = exe.program().n_inputs();
    if columns.len() != n_inputs {
        return Err(VmError::InputArity {
            expected: n_inputs,
            got: columns.len(),
        });
    }
    let rows = columns.first().map_or(0, Vec::len);
    if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
        return Err(VmError::InputArity {
            expected: rows,
            got: bad.len(),
        });
    }
    if rows == 0 {
        return Err(VmError::NoSamples);
    }
    let seg = opts.seg.max(1);
    let warmup = opts.warmup;
    let n_out = exe.output_names().len();
    let n_segments = rows.div_ceil(seg);
    let n_chunks = n_segments.div_ceil(CHUNK_LANES);
    let workers = if opts.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        opts.workers
    }
    .clamp(1, n_chunks);

    let run_chunk = |i: usize| -> Result<ChunkSamples, VmError> {
        let seg_first = i * CHUNK_LANES;
        let lanes = (n_segments - seg_first).min(CHUNK_LANES);
        let mut state = exe.new_state(lanes);
        let mut inputs: Vec<Vec<f64>> = vec![vec![0.0; lanes]; n_inputs];
        // Per-output, per-lane buffers: concatenating lanes in order at
        // the end restores the trace's global row order.
        let mut per_lane: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); lanes]; n_out];
        for t in 0..warmup + seg {
            for (lane_values, col) in inputs.iter_mut().zip(columns) {
                for (l, v) in lane_values.iter_mut().enumerate() {
                    // Lane l replays rows [start − warmup, start + seg)
                    // of its segment; rows before the trace are
                    // zero-filled (a fresh, silent signal — identical
                    // to the VM's own zeroed delay state).
                    let start = (seg_first + l) * seg;
                    let r = (start + t) as i64 - warmup as i64;
                    *v = if (0..rows as i64).contains(&r) {
                        col[r as usize]
                    } else {
                        0.0
                    };
                }
            }
            exe.step(&mut state, &inputs)?;
            if t >= warmup {
                let c = t - warmup;
                for (k, out) in per_lane.iter_mut().enumerate() {
                    let exact = exe.exact_out(&state, k);
                    let quant = exe.quant_out(&state, k);
                    for l in 0..lanes {
                        // The final segment is short: collect only
                        // rows that exist.
                        if (seg_first + l) * seg + c < rows {
                            out[l].push(quant[l] - exact[l]);
                        }
                    }
                }
            }
        }
        Ok(per_lane
            .into_iter()
            .map(|lanes_vec| lanes_vec.into_iter().flatten().collect())
            .collect())
    };

    let chunks = run_chunks(n_chunks, workers, cancelled, &run_chunk);
    merge_stats(exe, n_out, chunks, opts.bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use sna_dfg::DfgBuilder;
    use sna_fixp::WlConfig;
    use sna_interval::Interval;
    use std::sync::Arc;

    fn comb_exe() -> Executable {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let p = b.mul(s, s);
        b.output("p", p);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); 2];
        let config = WlConfig::from_ranges(&dfg, &ranges, 10).unwrap();
        Executable::new(Arc::new(Program::compile(&dfg)), &dfg, &config)
    }

    /// A 3-tap moving average: memory two delays deep.
    fn fir_exe() -> Executable {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay(x);
        let d2 = b.delay(d1);
        let s = b.add(x, d1);
        let s = b.add(s, d2);
        let y = b.mul_const(1.0 / 3.0, s);
        b.output("y", y);
        let dfg = b.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap()];
        let config = WlConfig::from_ranges(&dfg, &ranges, 12).unwrap();
        Executable::new(Arc::new(Program::compile(&dfg)), &dfg, &config)
    }

    /// A deterministic pseudo-signal in (-1, 1).
    fn wave(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let s = ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64;
                s / (1u64 << 53) as f64 * 1.9 - 0.95
            })
            .collect()
    }

    #[test]
    fn combinational_replay_collects_every_row_in_order() {
        let exe = comb_exe();
        let cols = vec![wave(1000), wave(1000).iter().map(|v| -v).collect()];
        let opts = ReplayOptions {
            seg: 1,
            warmup: 0,
            workers: 1,
            bins: 32,
        };
        let stats = replay(&exe, &cols, &opts).unwrap();
        assert_eq!(stats[0].samples, 1000);
        assert!(stats[0].variance >= 0.0);
    }

    #[test]
    fn worker_count_never_changes_a_bit() {
        let exe = fir_exe();
        let cols = vec![wave(40_000)];
        let opts = ReplayOptions {
            seg: 16,
            warmup: 8,
            workers: 1,
            bins: 32,
        };
        let base = replay(&exe, &cols, &opts).unwrap();
        assert_eq!(base[0].samples, 40_000);
        for workers in [2, 4, 8] {
            let alt = replay(&exe, &cols, &ReplayOptions { workers, ..opts }).unwrap();
            for (a, b) in base.iter().zip(&alt) {
                assert_eq!(a.mean.to_bits(), b.mean.to_bits());
                assert_eq!(a.variance.to_bits(), b.variance.to_bits());
                assert_eq!(a.min.to_bits(), b.min.to_bits());
                assert_eq!(a.max.to_bits(), b.max.to_bits());
                assert_eq!(a.samples, b.samples);
            }
        }
    }

    #[test]
    fn segmented_replay_matches_continuous_when_warmup_covers_the_memory() {
        let exe = fir_exe();
        let cols = vec![wave(3000)];
        // Continuous: one segment spanning the whole trace.
        let continuous = replay(
            &exe,
            &cols,
            &ReplayOptions {
                seg: 3000,
                warmup: 0,
                workers: 1,
                bins: 32,
            },
        )
        .unwrap();
        // Segmented with warmup ≥ the FIR's two-delay memory.
        let segmented = replay(
            &exe,
            &cols,
            &ReplayOptions {
                seg: 64,
                warmup: 2,
                workers: 1,
                bins: 32,
            },
        )
        .unwrap();
        assert_eq!(continuous[0].samples, segmented[0].samples);
        assert_eq!(
            continuous[0].mean.to_bits(),
            segmented[0].mean.to_bits(),
            "overlap replay must reproduce the continuous run exactly"
        );
        assert_eq!(
            continuous[0].variance.to_bits(),
            segmented[0].variance.to_bits()
        );
    }

    #[test]
    fn shape_mismatches_and_empty_traces_are_structured_errors() {
        let exe = comb_exe();
        let opts = ReplayOptions::default();
        assert!(matches!(
            replay(&exe, &[vec![1.0]], &opts),
            Err(VmError::InputArity {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            replay(&exe, &[vec![1.0, 2.0], vec![1.0]], &opts),
            Err(VmError::InputArity { .. })
        ));
        assert!(matches!(
            replay(&exe, &[vec![], vec![]], &opts),
            Err(VmError::NoSamples)
        ));
    }

    #[test]
    fn cancellation_stops_the_fan_out() {
        let exe = comb_exe();
        let cols = vec![wave(2000), wave(2000)];
        let opts = ReplayOptions {
            seg: 1,
            warmup: 0,
            workers: 4,
            bins: 32,
        };
        for workers in [1, 4] {
            let opts = ReplayOptions { workers, ..opts };
            assert!(matches!(
                replay_with(&exe, &cols, &opts, &|| true),
                Err(VmError::Cancelled)
            ));
        }
        let a = replay(&exe, &cols, &opts).unwrap();
        let b = replay_with(&exe, &cols, &opts, &|| false).unwrap();
        assert_eq!(a[0].mean.to_bits(), b[0].mean.to_bits());
    }
}
