//! Design IV: a 4×4 two-dimensional DCT-II, computed row–column with the
//! orthonormal 4-point DCT basis.
//!
//! ```text
//! C(k,n) = α(k)·cos((2n+1)·k·π / 8),   α(0) = 1/2, α(k>0) = √2/2
//! Y = C · X · Cᵀ
//! ```
//!
//! 8 one-dimensional transforms (4 rows + 4 columns), 16 multiplies and 12
//! additions each.

use sna_dfg::{DfgBuilder, NodeId};
use sna_interval::Interval;

use crate::Design;

/// The orthonormal 4-point DCT-II matrix `C(k, n)`.
pub fn dct4_coefficients() -> [[f64; 4]; 4] {
    let mut c = [[0.0; 4]; 4];
    for (k, row) in c.iter_mut().enumerate() {
        let alpha = if k == 0 {
            0.5
        } else {
            std::f64::consts::FRAC_1_SQRT_2
        };
        for (n, v) in row.iter_mut().enumerate() {
            *v = alpha * ((2.0 * n as f64 + 1.0) * k as f64 * std::f64::consts::PI / 8.0).cos();
        }
    }
    c
}

/// One 1-D DCT-4 over four existing nodes.
fn dct4_1d(b: &mut DfgBuilder, x: &[NodeId; 4], tag: &str) -> [NodeId; 4] {
    let c = dct4_coefficients();
    let mut out = [x[0]; 4];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc: Option<NodeId> = None;
        for (n, &xn) in x.iter().enumerate() {
            let term = b.mul_const(c[k][n], xn);
            b.name(term, format!("{tag}.k{k}n{n}")).unwrap();
            acc = Some(match acc {
                None => term,
                Some(a) => b.add(a, term),
            });
        }
        *out_k = acc.expect("four terms accumulated");
    }
    out
}

/// Builds the 4×4 2-D DCT-II: 16 pixel inputs (row-major, normalized to
/// `[-1, 1)`), 16 coefficient outputs.
pub fn dct4x4() -> Design {
    let mut b = DfgBuilder::new();
    let mut pixels = Vec::with_capacity(16);
    for r in 0..4 {
        for cidx in 0..4 {
            pixels.push(b.input(format!("p{r}{cidx}")));
        }
    }
    // Row transforms.
    let mut rows: Vec<[NodeId; 4]> = Vec::with_capacity(4);
    for r in 0..4 {
        let row = [
            pixels[4 * r],
            pixels[4 * r + 1],
            pixels[4 * r + 2],
            pixels[4 * r + 3],
        ];
        rows.push(dct4_1d(&mut b, &row, &format!("row{r}")));
    }
    // Column transforms on the row results.
    let mut coeffs = [[rows[0][0]; 4]; 4];
    for cidx in 0..4 {
        let col = [rows[0][cidx], rows[1][cidx], rows[2][cidx], rows[3][cidx]];
        let t = dct4_1d(&mut b, &col, &format!("col{cidx}"));
        for (r, &node) in t.iter().enumerate() {
            coeffs[r][cidx] = node;
        }
    }
    for (r, row) in coeffs.iter().enumerate() {
        for (cidx, &node) in row.iter().enumerate() {
            b.output(format!("Y{r}{cidx}"), node);
        }
    }
    let dfg = b.build().expect("dct4x4 builds");
    // Pixels are pre-scaled to [-1, 1) (value/128), the usual fixed-point
    // normalization; intermediates then stay within ±4 and the design is
    // implementable at the paper's W = 8 operating point.
    Design {
        name: "dct4x4",
        description: "Design IV: 4×4 2-D DCT-II (row–column, orthonormal basis, normalized pixels)",
        dfg,
        input_ranges: vec![Interval::new(-1.0, 0.9921875).expect("valid range"); 16],
    }
}

/// Reference 2-D DCT for tests: `x` row-major 4×4, result row-major.
pub fn dct4x4_reference(x: &[f64; 16]) -> [f64; 16] {
    let c = dct4_coefficients();
    let mut tmp = [0.0; 16]; // C · X
    for k in 0..4 {
        for n in 0..4 {
            let mut acc = 0.0;
            for m in 0..4 {
                acc += c[k][m] * x[4 * m + n];
            }
            tmp[4 * k + n] = acc;
        }
    }
    let mut y = [0.0; 16]; // (C · X) · Cᵀ
    for k in 0..4 {
        for l in 0..4 {
            let mut acc = 0.0;
            for n in 0..4 {
                acc += tmp[4 * k + n] * c[l][n];
            }
            y[4 * k + l] = acc;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_is_orthonormal() {
        let c = dct4_coefficients();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = (0..4).map(|n| c[i][n] * c[j][n]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-12, "({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn dfg_matches_reference() {
        let d = dct4x4();
        let x: [f64; 16] = [
            12.0, -30.0, 55.0, 7.0, -100.0, 23.0, 0.0, 64.0, 127.0, -128.0, 5.0, -5.0, 90.0, -64.0,
            33.0, -17.0,
        ];
        let got = d.dfg.evaluate(&x).unwrap();
        let want = dct4x4_reference(&x);
        for k in 0..16 {
            assert!((got[k] - want[k]).abs() < 1e-9, "coeff {k}");
        }
    }

    #[test]
    fn flat_block_concentrates_in_dc() {
        let d = dct4x4();
        let x = [50.0; 16];
        let got = d.dfg.evaluate(&x).unwrap();
        // DC = 4 · 50 (orthonormal scaling: C·1 = 2·α₀·... → 4·mean).
        assert!((got[0] - 200.0).abs() < 1e-9, "dc {}", got[0]);
        for (k, &v) in got.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-9, "ac {k} = {v}");
        }
    }

    #[test]
    fn energy_is_preserved() {
        let d = dct4x4();
        let x: [f64; 16] = [
            1.0, 2.0, 3.0, 4.0, -4.0, -3.0, -2.0, -1.0, 10.0, 0.0, -10.0, 5.0, 6.0, 7.0, -8.0, 9.0,
        ];
        let got = d.dfg.evaluate(&x).unwrap();
        let ein: f64 = x.iter().map(|v| v * v).sum();
        let eout: f64 = got.iter().map(|v| v * v).sum();
        assert!((ein - eout).abs() < 1e-9, "{ein} vs {eout}");
    }

    #[test]
    fn structure_counts() {
        let d = dct4x4();
        let c = d.dfg.op_counts();
        assert_eq!(c.muls, 128);
        assert_eq!(c.adds, 96);
        assert!(d.dfg.is_combinational());
        assert!(d.dfg.is_linear());
        assert_eq!(d.dfg.outputs().len(), 16);
    }
}
