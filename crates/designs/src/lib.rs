//! The case-study datapaths of the DAC'08 SNA paper.
//!
//! | paper artifact | builder |
//! |---|---|
//! | quadratic example (Tables 1–2, Fig. 1) | [`quadratic`] |
//! | ITU RGB→YCrCb converter (Figs. 2–3) | [`rgb_to_ycrcb`] |
//! | Design I — order-18 difference equation | [`diff_eq18`] / [`diff_eq`] |
//! | Design II — FIR-25 | [`fir25`] / [`fir`] |
//! | Design III — 8-point FFT | [`fft8`] |
//! | Design IV — 4×4 DCT | [`dct4x4`] |
//!
//! The paper does not publish its coefficient sets, so each builder uses a
//! *deterministic, documented* generator (stable pole placement, windowed
//! sinc, standard twiddle factors / DCT-II basis — see `DESIGN.md`).  What
//! the analyses exercise — linearity, datapath topology, operation counts,
//! feedback structure — is preserved.
//!
//! # Example
//!
//! ```
//! use sna_designs::fir25;
//!
//! let design = fir25();
//! assert_eq!(design.dfg.op_counts().muls, 25);
//! assert_eq!(design.dfg.op_counts().adds, 24);
//! assert!(design.dfg.is_linear());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dct;
mod diffeq;
mod fft;
mod fir;
mod quadratic;
mod rgb;

pub use dct::{dct4_coefficients, dct4x4, dct4x4_reference};
pub use diffeq::{diff_eq, diff_eq18, diff_eq_coefficients};
pub use fft::{fft8, fft8_reference};
pub use fir::{fir, fir25, fir_coefficients};
pub use quadratic::{quadratic, quadratic_reference, QUADRATIC_RANGES};
pub use rgb::{rgb_reference, rgb_to_ycrcb, RGB_INPUT_RANGE};

use sna_dfg::Dfg;
use sna_interval::Interval;

/// A ready-to-analyze case study: a validated graph plus its input ranges.
#[derive(Clone, Debug)]
pub struct Design {
    /// Short identifier (e.g. `"fir25"`).
    pub name: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// The datapath.
    pub dfg: Dfg,
    /// Value range of each input, in input order.
    pub input_ranges: Vec<Interval>,
}

impl Design {
    /// The four synthesis case studies of the paper's Tables 3–6, in
    /// order: Design I (order-18 difference equation), Design II (FIR-25),
    /// Design III (8-point FFT), Design IV (4×4 DCT).
    pub fn paper_suite() -> Vec<Design> {
        vec![diff_eq18(), fir25(), fft8(), dct4x4()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_contains_the_four_designs() {
        let suite = Design::paper_suite();
        assert_eq!(suite.len(), 4);
        assert_eq!(suite[0].name, "diff-eq-18");
        assert_eq!(suite[1].name, "fir25");
        assert_eq!(suite[2].name, "fft8");
        assert_eq!(suite[3].name, "dct4x4");
        for d in &suite {
            assert!(d.dfg.is_linear(), "{} must be linear", d.name);
            assert_eq!(d.input_ranges.len(), d.dfg.n_inputs(), "{}", d.name);
        }
    }
}
