//! Design I: an order-18 difference equation (recursive IIR structure)
//!
//! ```text
//! y[n] = b₀·x[n] − Σ_{k=1..18} dₖ·y[n−k]
//! ```
//!
//! The paper does not give its coefficients; we synthesize a *stable*
//! denominator deterministically from 9 complex-conjugate pole pairs with
//! radii 0.35…0.67 and angles spread over `(0, π)`, then set `b₀ = D(1)`
//! for unit DC gain.  This reproduces the structural properties that
//! matter to the analyses: 19 constant multipliers, a deep feedback chain
//! of 18 delays, and noise amplification through recursion.

use sna_dfg::DfgBuilder;
use sna_interval::Interval;

use crate::Design;

/// Denominator coefficients `d₁ … d_order` (the `d₀ = 1` head is implied)
/// and the DC-normalizing gain `b₀`, for an even `order`.
///
/// # Panics
///
/// Panics if `order` is zero or odd.
pub fn diff_eq_coefficients(order: usize) -> (Vec<f64>, f64) {
    assert!(
        order > 0 && order.is_multiple_of(2),
        "order must be even and positive"
    );
    let pairs = order / 2;
    // D(z) = Π (1 − 2 rᵢ cosθᵢ z⁻¹ + rᵢ² z⁻²), expanded by convolution.
    let mut poly = vec![1.0];
    for i in 0..pairs {
        let r = 0.35 + 0.32 * (i as f64 / pairs.max(1) as f64);
        let theta = std::f64::consts::PI * (i as f64 + 1.0) / (pairs as f64 + 1.0);
        let sec = [1.0, -2.0 * r * theta.cos(), r * r];
        let mut next = vec![0.0; poly.len() + 2];
        for (j, &p) in poly.iter().enumerate() {
            for (k, &s) in sec.iter().enumerate() {
                next[j + k] += p * s;
            }
        }
        poly = next;
    }
    let b0: f64 = poly.iter().sum(); // D(1): unit DC gain
    (poly[1..].to_vec(), b0)
}

/// Builds an order-`order` difference equation (see module docs).
///
/// # Panics
///
/// Panics if `order` is zero or odd.
pub fn diff_eq(order: usize) -> Design {
    let (d, b0) = diff_eq_coefficients(order);
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let gain = b.mul_const(b0, x);
    b.name(gain, "b0·x").unwrap();

    // Feedback taps: y[n-1] … y[n-order].
    let first_tap = b.delay_placeholder();
    let mut taps = vec![first_tap];
    for _ in 1..order {
        let prev = *taps.last().expect("at least one tap");
        taps.push(b.delay(prev));
    }

    // y = b0·x − Σ dₖ·tapₖ, accumulated as a chain of adders.
    let mut acc = gain;
    for (k, (&tap, &dk)) in taps.iter().zip(d.iter()).enumerate() {
        let term = b.mul_const(-dk, tap);
        b.name(term, format!("fb{}", k + 1)).unwrap();
        acc = b.add(acc, term);
    }
    b.bind_delay(first_tap, acc).expect("placeholder binds");
    b.output("y", acc);
    let dfg = b.build().expect("difference equation builds");
    Design {
        name: if order == 18 { "diff-eq-18" } else { "diff-eq" },
        description: "Design I: order-18 difference equation (recursive, unit DC gain)",
        dfg,
        input_ranges: vec![Interval::new(-1.0, 1.0).expect("valid range")],
    }
}

/// Design I as evaluated in the paper: order 18.
pub fn diff_eq18() -> Design {
    diff_eq(18)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::{LtiOptions, Simulator};

    #[test]
    fn coefficients_are_stable() {
        // The impulse response of the built filter must decay.
        let d = diff_eq18();
        let gains = d
            .dfg
            .impulse_gains(d.dfg.outputs()[0].1, &LtiOptions::default())
            .unwrap();
        assert!(gains.per_output[0].l1.is_finite());
        assert!(gains.per_output[0].l1 > 0.0);
    }

    #[test]
    fn dc_gain_is_unity() {
        // Constant input 1 settles to output 1.
        let d = diff_eq18();
        let mut sim = Simulator::new(&d.dfg);
        let mut last = 0.0;
        for _ in 0..2000 {
            last = sim.step(&[1.0]).unwrap()[0];
        }
        assert!((last - 1.0).abs() < 1e-6, "settled at {last}");
    }

    #[test]
    fn structure_matches_order() {
        let d = diff_eq18();
        let c = d.dfg.op_counts();
        assert_eq!(c.delays, 18);
        assert_eq!(c.muls, 19); // b0 + 18 feedback taps
        assert_eq!(c.adds, 18);
        assert!(d.dfg.is_linear());
        assert!(!d.dfg.is_combinational());
    }

    #[test]
    fn recursion_matches_direct_evaluation() {
        // Simulate the DFG and the textbook recurrence side by side.
        let (dcoef, b0) = diff_eq_coefficients(18);
        let d = diff_eq(18);
        let mut sim = Simulator::new(&d.dfg);
        let mut hist = [0.0f64; 18];
        let inputs = [0.7, -0.3, 0.9, 0.1, -1.0, 0.5, 0.0, 0.2];
        for (n, &xn) in inputs.iter().enumerate() {
            let got = sim.step(&[xn]).unwrap()[0];
            let mut want = b0 * xn;
            for (k, &dk) in dcoef.iter().enumerate() {
                want -= dk * hist[k];
            }
            hist.rotate_right(1);
            hist[0] = want;
            assert!((got - want).abs() < 1e-9, "step {n}: {got} vs {want}");
        }
    }

    #[test]
    fn smaller_orders_build_too() {
        for order in [2, 4, 10] {
            let d = diff_eq(order);
            assert_eq!(d.dfg.op_counts().delays, order);
        }
    }

    #[test]
    #[should_panic(expected = "order must be even")]
    fn odd_order_panics() {
        diff_eq(7);
    }
}
