//! The paper's running example: `y = a·x² + b·x + c` with
//! `x ∈ [-1, 1]`, `a ∈ [9, 10]`, `b ∈ [-6, -4]`, `c ∈ [6, 7]`
//! (Section 4, Tables 1–2, Figure 1).

use sna_dfg::DfgBuilder;
use sna_interval::Interval;

use crate::Design;

/// The four input ranges `(x, a, b, c)` of the quadratic example.
pub const QUADRATIC_RANGES: [(f64, f64); 4] = [(-1.0, 1.0), (9.0, 10.0), (-6.0, -4.0), (6.0, 7.0)];

/// Builds the quadratic example as a DFG with uncertain inputs
/// `x, a, b, c` (all coefficients are inputs, matching the paper where
/// coefficient *ranges* are part of the problem).
pub fn quadratic() -> Design {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let x2 = b.mul(x, x);
    b.name(x2, "x^2").unwrap();
    let ax2 = b.mul(a, x2);
    let bx = b.mul(bb, x);
    let s = b.add(ax2, bx);
    let y = b.add(s, c);
    b.output("y", y);
    let dfg = b.build().expect("quadratic builds");
    Design {
        name: "quadratic",
        description: "y = a·x² + b·x + c with interval-uncertain inputs (paper Section 4)",
        dfg,
        input_ranges: QUADRATIC_RANGES
            .iter()
            .map(|&(lo, hi)| Interval::new(lo, hi).expect("valid range"))
            .collect(),
    }
}

/// Reference evaluation `a·x² + b·x + c`.
pub fn quadratic_reference(x: f64, a: f64, b: f64, c: f64) -> f64 {
    a * x * x + b * x + c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::RangeOptions;

    #[test]
    fn dfg_matches_reference() {
        let d = quadratic();
        for &(x, a, b, c) in &[
            (0.0, 9.5, -5.0, 6.5),
            (1.0, 9.0, -6.0, 6.0),
            (-1.0, 10.0, -4.0, 7.0),
            (0.33, 9.7, -4.4, 6.9),
        ] {
            let got = d.dfg.evaluate(&[x, a, b, c]).unwrap()[0];
            let want = quadratic_reference(x, a, b, c);
            assert!((got - want).abs() < 1e-12, "({x},{a},{b},{c})");
        }
    }

    #[test]
    fn interval_range_matches_paper_table1() {
        // IA with a dependent square yields y ∈ [0, 23] (Table 1).
        let d = quadratic();
        let out = d
            .dfg
            .output_ranges(&d.input_ranges, &RangeOptions::default())
            .unwrap();
        assert_eq!(out[0].1, Interval::new(0.0, 23.0).unwrap());
    }

    #[test]
    fn quadratic_is_nonlinear() {
        assert!(!quadratic().dfg.is_linear());
    }
}
