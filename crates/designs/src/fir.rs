//! Design II: a 25-tap direct-form FIR filter.
//!
//! Coefficients are a deterministic windowed-sinc low-pass (cutoff
//! `0.25·Fs`, Hamming window, unit DC gain) — the standard construction
//! for a filter of this size.

use sna_dfg::DfgBuilder;
use sna_interval::Interval;

use crate::Design;

/// Windowed-sinc low-pass coefficients (`taps` entries, unit DC gain).
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn fir_coefficients(taps: usize) -> Vec<f64> {
    assert!(taps > 0, "need at least one tap");
    let m = (taps - 1) as f64;
    let fc = 0.25;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let t = n as f64 - m / 2.0;
            let sinc = if t == 0.0 {
                2.0 * fc
            } else {
                (2.0 * std::f64::consts::PI * fc * t).sin() / (std::f64::consts::PI * t)
            };
            let window = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * n as f64 / m.max(1.0)).cos();
            sinc * window
        })
        .collect();
    let sum: f64 = h.iter().sum();
    for c in &mut h {
        *c /= sum;
    }
    h
}

/// Builds a direct-form FIR with the given number of taps:
/// `y[n] = Σ h[k]·x[n−k]`.
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn fir(taps: usize) -> Design {
    let h = fir_coefficients(taps);
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let delayed = b.delay_chain(x, taps - 1);
    let mut acc = b.mul_const(h[0], x);
    b.name(acc, "tap0").unwrap();
    for (k, (&tap, &hk)) in delayed.iter().zip(h[1..].iter()).enumerate() {
        let term = b.mul_const(hk, tap);
        b.name(term, format!("tap{}", k + 1)).unwrap();
        acc = b.add(acc, term);
    }
    b.output("y", acc);
    let dfg = b.build().expect("fir builds");
    Design {
        name: if taps == 25 { "fir25" } else { "fir" },
        description: "Design II: 25-tap direct-form low-pass FIR (windowed sinc)",
        dfg,
        input_ranges: vec![Interval::new(-1.0, 1.0).expect("valid range")],
    }
}

/// Design II as evaluated in the paper: 25 taps.
pub fn fir25() -> Design {
    fir(25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::Simulator;

    #[test]
    fn coefficients_are_symmetric_with_unit_dc() {
        let h = fir_coefficients(25);
        assert_eq!(h.len(), 25);
        let sum: f64 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for k in 0..12 {
            assert!((h[k] - h[24 - k]).abs() < 1e-12, "symmetry at {k}");
        }
        // Peak at the center tap.
        let max = h.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(h[12], max);
    }

    #[test]
    fn impulse_response_is_the_coefficient_vector() {
        let d = fir25();
        let h = fir_coefficients(25);
        let mut sim = Simulator::new(&d.dfg);
        let mut response = Vec::new();
        response.push(sim.step(&[1.0]).unwrap()[0]);
        for _ in 1..25 {
            response.push(sim.step(&[0.0]).unwrap()[0]);
        }
        for (k, (&got, &want)) in response.iter().zip(h.iter()).enumerate() {
            assert!((got - want).abs() < 1e-12, "h[{k}]");
        }
    }

    #[test]
    fn low_pass_attenuates_nyquist() {
        // Alternating ±1 input (Nyquist) must come out tiny; DC passes.
        let d = fir25();
        let mut sim = Simulator::new(&d.dfg);
        let mut last = 0.0;
        for k in 0..200 {
            let x = if k % 2 == 0 { 1.0 } else { -1.0 };
            last = sim.step(&[x]).unwrap()[0];
        }
        assert!(last.abs() < 0.02, "nyquist leakage {last}");
        sim.reset();
        for _ in 0..200 {
            last = sim.step(&[1.0]).unwrap()[0];
        }
        assert!((last - 1.0).abs() < 1e-9);
    }

    #[test]
    fn structure_counts() {
        let d = fir25();
        let c = d.dfg.op_counts();
        assert_eq!(c.muls, 25);
        assert_eq!(c.adds, 24);
        assert_eq!(c.delays, 24);
        assert!(d.dfg.is_linear());
    }
}
