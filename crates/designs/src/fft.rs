//! Design III: an 8-point radix-2 decimation-in-time FFT.
//!
//! Complex arithmetic is expanded into real nodes; trivial twiddles
//! (`W = 1`, `W = −j`) cost no multipliers, the two non-trivial ones
//! (`W₈¹`, `W₈³`) cost four real multiplies each — the classic 8-point
//! structure.  Inputs are 8 complex samples (16 real inputs), outputs the
//! 8 complex bins (16 real outputs).

use sna_dfg::{DfgBuilder, NodeId};
use sna_interval::Interval;

use crate::Design;

/// One complex signal as a pair of real nodes.
#[derive(Clone, Copy)]
struct Cx {
    re: NodeId,
    im: NodeId,
}

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Builds the 8-point DIT FFT.
pub fn fft8() -> Design {
    let mut b = DfgBuilder::new();
    // Inputs in natural order.
    let inputs: Vec<Cx> = (0..8)
        .map(|k| {
            let re = b.input(format!("x{k}.re"));
            let im = b.input(format!("x{k}.im"));
            Cx { re, im }
        })
        .collect();

    // Bit-reversed load order for DIT.
    let bitrev = [0usize, 4, 2, 6, 1, 5, 3, 7];
    let mut stage: Vec<Cx> = bitrev.iter().map(|&i| inputs[i]).collect();

    // Butterfly with twiddle applied to the second operand.
    // Twiddles are W₈^k = cos(2πk/8) − j·sin(2πk/8).
    let butterfly = |b: &mut DfgBuilder, a: Cx, x: Cx, k8: usize| -> (Cx, Cx) {
        let t = match k8 {
            0 => x, // W = 1
            2 => {
                // W = −j: t = −j·x = (x.im, −x.re).
                let nre = b.neg(x.re);
                Cx { re: x.im, im: nre }
            }
            1 | 3 => {
                // W₈¹ = (1 − j)/√2, W₈³ = −(1 + j)/√2.
                let (wr, wi) = if k8 == 1 {
                    (FRAC_1_SQRT_2, -FRAC_1_SQRT_2)
                } else {
                    (-FRAC_1_SQRT_2, -FRAC_1_SQRT_2)
                };
                let rr = b.mul_const(wr, x.re);
                let ii = b.mul_const(wi, x.im);
                let ri = b.mul_const(wr, x.im);
                let ir = b.mul_const(wi, x.re);
                let re = b.sub(rr, ii);
                let im = b.add(ri, ir);
                Cx { re, im }
            }
            _ => unreachable!("only W₈⁰–W₈³ appear in an 8-point DIT FFT"),
        };
        let sum = Cx {
            re: b.add(a.re, t.re),
            im: b.add(a.im, t.im),
        };
        let diff = Cx {
            re: b.sub(a.re, t.re),
            im: b.sub(a.im, t.im),
        };
        (sum, diff)
    };

    // Three stages; in stage s (1-based size = 2^s), butterfly k within a
    // block uses twiddle W₈^(k·8/size).
    for s in 0..3 {
        let size = 1usize << (s + 1);
        let half = size / 2;
        let mut next = stage.clone();
        for block in (0..8).step_by(size) {
            for k in 0..half {
                let k8 = k * (8 / size);
                let (hi, lo) = butterfly(&mut b, stage[block + k], stage[block + k + half], k8);
                next[block + k] = hi;
                next[block + k + half] = lo;
            }
        }
        stage = next;
    }

    for (k, cx) in stage.iter().enumerate() {
        b.output(format!("X{k}.re"), cx.re);
        b.output(format!("X{k}.im"), cx.im);
    }
    let dfg = b.build().expect("fft8 builds");
    Design {
        name: "fft8",
        description: "Design III: 8-point radix-2 DIT FFT (complex, expanded to real ops)",
        dfg,
        input_ranges: vec![Interval::new(-1.0, 1.0).expect("valid range"); 16],
    }
}

/// Direct-DFT reference: `inputs` is `[(re, im); 8]`, result likewise.
pub fn fft8_reference(inputs: &[(f64, f64); 8]) -> [(f64, f64); 8] {
    let mut out = [(0.0, 0.0); 8];
    for (k, o) in out.iter_mut().enumerate() {
        let mut re = 0.0;
        let mut im = 0.0;
        for (n, &(xr, xi)) in inputs.iter().enumerate() {
            let phi = -2.0 * std::f64::consts::PI * (k * n) as f64 / 8.0;
            let (s, c) = phi.sin_cos();
            re += xr * c - xi * s;
            im += xr * s + xi * c;
        }
        *o = (re, im);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_dfg(d: &Design, inputs: &[(f64, f64); 8]) -> [(f64, f64); 8] {
        let flat: Vec<f64> = inputs.iter().flat_map(|&(r, i)| [r, i]).collect();
        let out = d.dfg.evaluate(&flat).unwrap();
        let mut res = [(0.0, 0.0); 8];
        for k in 0..8 {
            res[k] = (out[2 * k], out[2 * k + 1]);
        }
        res
    }

    #[test]
    fn matches_direct_dft_on_real_signal() {
        let d = fft8();
        let x = [
            (1.0, 0.0),
            (0.5, 0.0),
            (-0.25, 0.0),
            (0.75, 0.0),
            (0.0, 0.0),
            (-1.0, 0.0),
            (0.3, 0.0),
            (0.9, 0.0),
        ];
        let got = run_dfg(&d, &x);
        let want = fft8_reference(&x);
        for k in 0..8 {
            assert!((got[k].0 - want[k].0).abs() < 1e-9, "re[{k}]");
            assert!((got[k].1 - want[k].1).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn matches_direct_dft_on_complex_signal() {
        let d = fft8();
        let x = [
            (0.1, -0.9),
            (0.8, 0.2),
            (-0.5, 0.5),
            (0.0, 1.0),
            (1.0, -1.0),
            (-0.3, -0.3),
            (0.6, 0.4),
            (-0.2, 0.7),
        ];
        let got = run_dfg(&d, &x);
        let want = fft8_reference(&x);
        for k in 0..8 {
            assert!((got[k].0 - want[k].0).abs() < 1e-9, "re[{k}]");
            assert!((got[k].1 - want[k].1).abs() < 1e-9, "im[{k}]");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let d = fft8();
        let mut x = [(0.0, 0.0); 8];
        x[0] = (1.0, 0.0);
        let got = run_dfg(&d, &x);
        for bin in &got {
            assert!((bin.0 - 1.0).abs() < 1e-12);
            assert!(bin.1.abs() < 1e-12);
        }
    }

    #[test]
    fn structure_counts() {
        let d = fft8();
        let c = d.dfg.op_counts();
        // Two non-trivial twiddles, four real multiplies each.
        assert_eq!(c.muls, 8);
        assert!(d.dfg.is_linear());
        assert!(d.dfg.is_combinational());
        assert_eq!(d.dfg.outputs().len(), 16);
        assert_eq!(d.dfg.n_inputs(), 16);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let d = fft8();
        let x = [
            (0.5, 0.1),
            (-0.4, 0.0),
            (0.3, -0.2),
            (0.0, 0.6),
            (-0.7, 0.0),
            (0.2, 0.2),
            (0.1, -0.5),
            (0.9, 0.3),
        ];
        let got = run_dfg(&d, &x);
        let ein: f64 = x.iter().map(|&(r, i)| r * r + i * i).sum();
        let eout: f64 = got.iter().map(|&(r, i)| r * r + i * i).sum();
        assert!(
            (eout - 8.0 * ein).abs() < 1e-9,
            "Parseval: {eout} vs {}",
            8.0 * ein
        );
    }
}
