//! The standard ITU-R BT.601 RGB → YCrCb converter (the paper's Figure 2;
//! its output-error PDFs are Figure 3).
//!
//! ```text
//! Y  =  0.299·R    + 0.587·G    + 0.114·B
//! Cb = −0.168736·R − 0.331264·G + 0.5·B      + 128
//! Cr =  0.5·R      − 0.418688·G − 0.081312·B + 128
//! ```
//!
//! The comparison in the paper assumes all three inputs range over
//! `[70, 100]`.

use sna_dfg::DfgBuilder;
use sna_interval::Interval;

use crate::Design;

/// The paper's input range for each of R, G, B.
pub const RGB_INPUT_RANGE: (f64, f64) = (70.0, 100.0);

const Y_COEFFS: [f64; 3] = [0.299, 0.587, 0.114];
const CB_COEFFS: [f64; 3] = [-0.168_736, -0.331_264, 0.5];
const CR_COEFFS: [f64; 3] = [0.5, -0.418_688, -0.081_312];

/// Builds the BT.601 converter: 3 inputs (R, G, B), 3 outputs
/// (Y, Cb, Cr); 9 constant multipliers, 6 adders (plus the two offset
/// adders for the chroma channels).
pub fn rgb_to_ycrcb() -> Design {
    let mut b = DfgBuilder::new();
    let r = b.input("R");
    let g = b.input("G");
    let bl = b.input("B");

    let mut weighted = |coeffs: &[f64; 3], tag: &str| {
        let tr = b.mul_const(coeffs[0], r);
        b.name(tr, format!("{tag}.r")).unwrap();
        let tg = b.mul_const(coeffs[1], g);
        b.name(tg, format!("{tag}.g")).unwrap();
        let tb = b.mul_const(coeffs[2], bl);
        b.name(tb, format!("{tag}.b")).unwrap();
        let s1 = b.add(tr, tg);
        b.add(s1, tb)
    };

    let y = weighted(&Y_COEFFS, "y");
    let cb_lin = weighted(&CB_COEFFS, "cb");
    let cr_lin = weighted(&CR_COEFFS, "cr");

    let off_cb = b.constant(128.0);
    let cb = b.add(cb_lin, off_cb);
    let off_cr = b.constant(128.0);
    let cr = b.add(cr_lin, off_cr);

    b.output("Y", y);
    b.output("Cb", cb);
    b.output("Cr", cr);
    let dfg = b.build().expect("rgb converter builds");
    let range = Interval::new(RGB_INPUT_RANGE.0, RGB_INPUT_RANGE.1).expect("valid range");
    Design {
        name: "rgb2ycrcb",
        description: "ITU-R BT.601 RGB→YCrCb colour-space converter (paper Figure 2)",
        dfg,
        input_ranges: vec![range; 3],
    }
}

/// Reference conversion, returning `(Y, Cb, Cr)`.
pub fn rgb_reference(r: f64, g: f64, b: f64) -> (f64, f64, f64) {
    (
        Y_COEFFS[0] * r + Y_COEFFS[1] * g + Y_COEFFS[2] * b,
        CB_COEFFS[0] * r + CB_COEFFS[1] * g + CB_COEFFS[2] * b + 128.0,
        CR_COEFFS[0] * r + CR_COEFFS[1] * g + CR_COEFFS[2] * b + 128.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::RangeOptions;

    #[test]
    fn dfg_matches_reference() {
        let d = rgb_to_ycrcb();
        for &(r, g, b) in &[(70.0, 70.0, 70.0), (100.0, 70.0, 85.0), (92.5, 77.25, 99.0)] {
            let got = d.dfg.evaluate(&[r, g, b]).unwrap();
            let (y, cb, cr) = rgb_reference(r, g, b);
            assert!((got[0] - y).abs() < 1e-9);
            assert!((got[1] - cb).abs() < 1e-9);
            assert!((got[2] - cr).abs() < 1e-9);
        }
    }

    #[test]
    fn grayscale_maps_to_neutral_chroma() {
        // R = G = B ⇒ Y = R, Cb = Cr = 128 (coefficients sum to 1 / 0).
        let (y, cb, cr) = rgb_reference(80.0, 80.0, 80.0);
        assert!((y - 80.0).abs() < 1e-9);
        assert!((cb - 128.0).abs() < 1e-6);
        assert!((cr - 128.0).abs() < 1e-6);
    }

    #[test]
    fn structure_and_linearity() {
        let d = rgb_to_ycrcb();
        let c = d.dfg.op_counts();
        assert_eq!(c.muls, 9);
        assert_eq!(c.adds, 8);
        assert!(d.dfg.is_linear());
        assert!(d.dfg.is_combinational());
    }

    #[test]
    fn output_ranges_are_plausible() {
        let d = rgb_to_ycrcb();
        let out = d
            .dfg
            .output_ranges(&d.input_ranges, &RangeOptions::default())
            .unwrap();
        // Y of inputs in [70, 100] stays in [70, 100].
        assert!(out[0].1.lo() >= 69.9 && out[0].1.hi() <= 100.1);
        // Chroma near 128 for balanced input ranges.
        assert!(out[1].1.lo() > 110.0 && out[1].1.hi() < 146.0);
        assert!(out[2].1.lo() > 110.0 && out[2].1.hi() < 146.0);
    }
}
