//! Reproduction harness for the DAC'08 SNA paper: one runner per table /
//! figure, shared by the `table*`/`figure*`/`repro` binaries, the
//! integration tests and the Criterion benches.
//!
//! | paper artifact | runner |
//! |---|---|
//! | Table 1 (quadratic ranges, IA/AA/SNA) | [`table1`] |
//! | Table 2 (SNA statistics vs granularity) | [`table2`] |
//! | Figure 1 (quadratic error histograms) | [`figure1`] |
//! | Figure 3 (RGB→YCrCb error PDFs) | [`figure3`] |
//! | Tables 3–6 (fixed vs optimized WL costs) | [`design_table`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use sna_core::{CartesianEngine, NoiseReport, UncertainInput};
use sna_designs::{quadratic_reference, rgb_to_ycrcb, Design};
use sna_fixp::WlConfig;
use sna_hist::{DepositPolicy, Histogram};
use sna_hls::SynthesisConstraints;
use sna_interval::{AffineContext, Interval};
use sna_opt::Optimizer;

/// Convenience error type for the harness.
pub type Error = Box<dyn std::error::Error>;

// ----------------------------------------------------------------------
// The quadratic example shared by Tables 1–2 / Figure 1
// ----------------------------------------------------------------------

/// The quadratic `y = a·x² + b·x + c` over interval operands.
pub fn quadratic_fn(v: &[Interval]) -> Interval {
    v[1] * v[0].sqr() + v[2] * v[0] + v[3]
}

/// The four uncertain inputs of the quadratic at granularity `g`.
///
/// # Errors
///
/// Histogram construction failures are propagated.
pub fn quadratic_inputs(g: usize) -> Result<Vec<UncertainInput>, Error> {
    Ok(vec![
        UncertainInput::uniform("x", -1.0, 1.0, g)?,
        UncertainInput::uniform("a", 9.0, 10.0, g)?,
        UncertainInput::uniform("b", -6.0, -4.0, g)?,
        UncertainInput::uniform("c", 6.0, 7.0, g)?,
    ])
}

// ----------------------------------------------------------------------
// Table 1
// ----------------------------------------------------------------------

/// The three rows of Table 1.
#[derive(Clone, Debug)]
pub struct Table1 {
    /// Interval-arithmetic output range.
    pub ia: Interval,
    /// Affine form `center ± radius`.
    pub aa_center: f64,
    /// Affine radius.
    pub aa_radius: f64,
    /// SNA output range at the given granularity.
    pub sna: Interval,
    /// Granularity used for the SNA row.
    pub sna_granularity: usize,
}

/// Reproduces Table 1: the quadratic's output range by IA, AA and SNA.
///
/// # Errors
///
/// Propagates engine failures.
pub fn table1(sna_granularity: usize) -> Result<Table1, Error> {
    let x = Interval::new(-1.0, 1.0)?;
    let a = Interval::new(9.0, 10.0)?;
    let b = Interval::new(-6.0, -4.0)?;
    let c = Interval::new(6.0, 7.0)?;
    let ia = a * x.sqr() + b * x + c;

    let ctx = AffineContext::new();
    let xa = ctx.from_interval(x);
    let fa = ctx.from_interval(a);
    let fb = ctx.from_interval(b);
    let fc = ctx.from_interval(c);
    let x2 = xa.mul(&xa.clone(), &ctx);
    let y = fa.mul(&x2, &ctx) + fb.mul(&xa, &ctx) + fc;

    let report =
        CartesianEngine::new(256).analyze(&quadratic_inputs(sna_granularity)?, quadratic_fn)?;
    Ok(Table1 {
        ia,
        aa_center: y.center(),
        aa_radius: y.radius(),
        sna: Interval::new(report.support.0, report.support.1)?,
        sna_granularity,
    })
}

// ----------------------------------------------------------------------
// Table 2
// ----------------------------------------------------------------------

/// One granularity row of Table 2 (error statistics about the centre 6.5).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Granularity (bins per noise symbol).
    pub g: usize,
    /// Mean error.
    pub mean: f64,
    /// Error variance.
    pub variance: f64,
    /// Guaranteed (outer) lower bound `xl`.
    pub xl: f64,
    /// Guaranteed (outer) upper bound `xh`.
    pub xh: f64,
    /// Inner (midpoint-deposit) lower bound, the paper's convention.
    pub xl_inner: f64,
    /// Inner (midpoint-deposit) upper bound.
    pub xh_inner: f64,
}

/// Table 2 plus the Monte-Carlo "Actual Values" row.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// Per-granularity SNA statistics.
    pub rows: Vec<Table2Row>,
    /// Monte-Carlo actuals: `(mean, variance, xl, xh)`.
    pub actual: (f64, f64, f64, f64),
}

/// Reproduces Table 2: SNA statistics of the quadratic error versus
/// granularity, with outer (uniform-deposit) and inner (midpoint-deposit)
/// bounds, against `samples` Monte-Carlo trials.
///
/// # Errors
///
/// Propagates engine failures.
pub fn table2(granularities: &[usize], samples: usize) -> Result<Table2, Error> {
    const CENTRE: f64 = 6.5;
    let mut rows = Vec::new();
    for &g in granularities {
        let outer = CartesianEngine::new(256).analyze(&quadratic_inputs(g)?, quadratic_fn)?;
        let inner = CartesianEngine::new(256)
            .with_deposit(DepositPolicy::Midpoint)
            .analyze(&quadratic_inputs(g)?, quadratic_fn)?;
        rows.push(Table2Row {
            g,
            mean: outer.mean - CENTRE,
            variance: outer.variance,
            xl: outer.support.0 - CENTRE,
            xh: outer.support.1 - CENTRE,
            xl_inner: inner.support.0 - CENTRE,
            xh_inner: inner.support.1 - CENTRE,
        });
    }

    // Monte-Carlo ground truth with a splitmix-style deterministic stream.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        z as f64 / u64::MAX as f64
    };
    let mut mean = 0.0;
    let mut m2 = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for n in 1..=samples.max(1) {
        let x = -1.0 + 2.0 * next();
        let a = 9.0 + next();
        let b = -6.0 + 2.0 * next();
        let c = 6.0 + next();
        let y = quadratic_reference(x, a, b, c) - CENTRE;
        let delta = y - mean;
        mean += delta / n as f64;
        m2 += delta * (y - mean);
        lo = lo.min(y);
        hi = hi.max(y);
    }
    let variance = m2 / samples.max(1) as f64;
    Ok(Table2 {
        rows,
        actual: (mean, variance, lo, hi),
    })
}

// ----------------------------------------------------------------------
// Figures 1 and 3
// ----------------------------------------------------------------------

/// Reproduces Figure 1: the quadratic output-error histogram at each
/// granularity.
///
/// # Errors
///
/// Propagates engine failures.
pub fn figure1(granularities: &[usize]) -> Result<Vec<(usize, Histogram)>, Error> {
    let mut out = Vec::new();
    for &g in granularities {
        let report = CartesianEngine::new(64).analyze(&quadratic_inputs(g)?, quadratic_fn)?;
        let hist = report.histogram.expect("cartesian engine returns a PDF");
        out.push((g, hist));
    }
    Ok(out)
}

/// Reproduces Figure 3: error PDFs of the RGB→YCrCb outputs at word
/// length `w` with `bins` histogram bins.
///
/// # Errors
///
/// Propagates analysis failures.
pub fn figure3(w: u8, bins: usize) -> Result<Vec<(String, NoiseReport)>, Error> {
    let design = rgb_to_ycrcb();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, w)?;
    let reports = sna_core::SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .bins(bins)
        .run()?;
    Ok(reports)
}

// ----------------------------------------------------------------------
// Tables 3–6
// ----------------------------------------------------------------------

/// One word-length block of a design table (the paper prints one block
/// per `W ∈ {8, 16, 24, 32}`).
#[derive(Clone, Debug)]
pub struct DesignRow {
    /// The uniform reference word length.
    pub w: u8,
    /// Fixed-WL cost: `(area µm², power µW, latency cycles)`.
    pub fixed: (f64, f64, u32),
    /// Optimized cost.
    pub optimized: (f64, f64, u32),
    /// Improvements in percent: `(area, power, latency)`.
    pub improvement: (f64, f64, f64),
    /// The noise constraint (total output noise power of the fixed
    /// design).
    pub noise: f64,
}

/// Reproduces one of Tables 3–6 for a design with default constraints.
///
/// # Errors
///
/// Propagates optimizer and synthesis failures.
pub fn design_table(design: &Design, word_lengths: &[u8]) -> Result<Vec<DesignRow>, Error> {
    design_table_with(design, word_lengths, resources_for(design))
}

/// Resource allocation used for the paper tables: the wide, combinational
/// transform blocks (FFT, DCT) get two units per kind — which also lands
/// their latencies in the paper's regime — while the serial filters share
/// a single unit per kind.
pub fn resources_for(design: &Design) -> SynthesisConstraints {
    let ops = design.dfg.op_counts().arithmetic();
    let mut constraints = SynthesisConstraints {
        // The paper's flow builds on multiple-width bus partitioning
        // (their ref. [19]), whose area scales linearly in width — exactly
        // what Tables 3–4 show.  Use the matching library preset.
        tech: sna_hls::TechLibrary::st012_partitioned(),
        ..SynthesisConstraints::default()
    };
    if design.dfg.is_combinational() && ops > 100 {
        constraints.resources.adders = 2;
        constraints.resources.multipliers = 2;
    }
    constraints
}

/// [`design_table`] with explicit synthesis constraints.
///
/// # Errors
///
/// Propagates optimizer and synthesis failures.
pub fn design_table_with(
    design: &Design,
    word_lengths: &[u8],
    constraints: SynthesisConstraints,
) -> Result<Vec<DesignRow>, Error> {
    let opt = Optimizer::new(&design.dfg, &design.input_ranges, constraints)?;
    let mut rows = Vec::new();
    for &w in word_lengths {
        let fixed = opt.uniform(w)?;
        let tuned = opt.greedy(fixed.noise_power, w.saturating_add(8).min(40))?;
        let imp = |a: f64, b: f64| if a > 0.0 { 100.0 * (a - b) / a } else { 0.0 };
        rows.push(DesignRow {
            w,
            fixed: (
                fixed.cost.area_um2,
                fixed.cost.power_uw,
                fixed.cost.latency_cycles,
            ),
            optimized: (
                tuned.cost.area_um2,
                tuned.cost.power_uw,
                tuned.cost.latency_cycles,
            ),
            improvement: (
                imp(fixed.cost.area_um2, tuned.cost.area_um2),
                imp(fixed.cost.power_uw, tuned.cost.power_uw),
                imp(
                    fixed.cost.latency_cycles as f64,
                    tuned.cost.latency_cycles as f64,
                ),
            ),
            noise: fixed.noise_power,
        });
    }
    Ok(rows)
}

/// Formats a design table in the paper's layout.
pub fn render_design_table(name: &str, rows: &[DesignRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Optimization results for {name}.");
    let _ = writeln!(
        out,
        "{:<6} {:<7} | {:>12} | {:>12} | {:>8}",
        "WL", "Cost", "Fixed WL", "Optimized", "Improv.%"
    );
    let _ = writeln!(out, "{}", "-".repeat(56));
    for r in rows {
        let lines = [
            ("Area", r.fixed.0, r.optimized.0, r.improvement.0),
            ("Power", r.fixed.1, r.optimized.1, r.improvement.1),
            (
                "Delay",
                r.fixed.2 as f64,
                r.optimized.2 as f64,
                r.improvement.2,
            ),
        ];
        for (i, (label, f, o, imp)) in lines.iter().enumerate() {
            let head = if i == 1 {
                format!("WL={}", r.w)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{head:<6} {label:<7} | {f:>12.2} | {o:>12.2} | {imp:>8.2}"
            );
        }
        let _ = writeln!(
            out,
            "{:<6} {:<7} | {:>12.3e} | {:>12} |",
            "", "Noise", r.noise, "constrained"
        );
        let _ = writeln!(out, "{}", "-".repeat(56));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = table1(16).unwrap();
        assert_eq!(t.ia, Interval::new(0.0, 23.0).unwrap());
        assert!((t.aa_center - 6.5).abs() < 1e-12);
        assert!((t.aa_radius - 16.5).abs() < 1e-12);
        // SNA encloses the true range [5, 23] and beats AA's width.
        assert!(t.sna.lo() <= 5.0 && t.sna.hi() >= 23.0);
        assert!(t.sna.width() < 33.0);
    }

    #[test]
    fn table2_converges_toward_actuals() {
        let t = table2(&[4, 8, 16], 200_000).unwrap();
        let (am, av, al, ah) = t.actual;
        // Actuals match the analytic values (3.17, 16.57, -1.5, 16.5).
        assert!((am - 3.1667).abs() < 0.02, "actual mean {am}");
        assert!((av - 16.567).abs() < 0.2, "actual var {av}");
        assert!(al > -1.51 && al < -1.40, "actual lo {al}");
        // The supremum 16.5 sits at a box corner; random sampling
        // approaches it slowly.
        assert!(ah > 16.0 && ah < 16.51, "actual hi {ah}");
        // Monotone convergence of the SNA rows toward them.
        for pair in t.rows.windows(2) {
            assert!(pair[1].variance <= pair[0].variance + 1e-9);
            assert!((pair[1].mean - am).abs() <= (pair[0].mean - am).abs() + 1e-9);
        }
        // Outer bounds enclose actuals; inner bounds are enclosed by them.
        for r in &t.rows {
            assert!(r.xl <= al && r.xh >= ah, "outer bounds at g={}", r.g);
            assert!(r.xl_inner >= r.xl && r.xh_inner <= r.xh);
        }
    }

    #[test]
    fn figure1_histograms_sharpen() {
        let figs = figure1(&[8, 16]).unwrap();
        assert_eq!(figs.len(), 2);
        // Higher granularity concentrates more mass near the mode.
        let peak8 = figs[0].1.probs().iter().cloned().fold(0.0, f64::max);
        let peak16 = figs[1].1.probs().iter().cloned().fold(0.0, f64::max);
        assert!(peak16 >= peak8 * 0.8, "peaks {peak8} vs {peak16}");
    }

    #[test]
    fn figure3_produces_three_bounded_pdfs() {
        let reports = figure3(10, 64).unwrap();
        assert_eq!(reports.len(), 3);
        for (name, r) in &reports {
            assert!(r.histogram.is_some(), "{name} missing pdf");
            assert!(r.support.0 < 0.0 && r.support.1 > 0.0, "{name}");
        }
    }

    #[test]
    fn design_table_shape_smoke() {
        // One small design, two word lengths — the full suite runs in the
        // repro binary.
        let design = sna_designs::fir(7);
        let rows = design_table(&design, &[8, 16]).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The optimizer is multi-objective: individual metrics may
            // trade against each other, but the equal-weight sum must
            // never regress.
            let fixed_sum = r.fixed.0 + r.fixed.1 + r.fixed.2 as f64;
            let opt_sum = r.optimized.0 + r.optimized.1 + r.optimized.2 as f64;
            assert!(
                opt_sum <= fixed_sum * (1.0 + 1e-9),
                "weighted cost regressed at W={}: {opt_sum} vs {fixed_sum}",
                r.w
            );
        }
        // Noise scales roughly ×2⁻²ᵂ.
        assert!(rows[0].noise / rows[1].noise > 1.0e3);
        let rendered = render_design_table("Design II (FIR-7)", &rows);
        assert!(rendered.contains("WL=8"));
        assert!(rendered.contains("constrained"));
    }
}
