//! Regenerates Table 2: SNA estimates of the quadratic error versus
//! granularity, plus the Monte-Carlo "Actual Values" row.

fn main() -> Result<(), sna_bench::Error> {
    let t = sna_bench::table2(&[2, 4, 8, 16, 32, 64], 1_000_000)?;
    println!("Table 2: Estimated parameters with the histogram method (g = granularity).");
    println!(
        "{:>6} | {:>9} | {:>10} | {:>17} | {:>17}",
        "g", "Mean", "Variance", "outer [xl, xh]", "inner [xl, xh]"
    );
    println!("{}", "-".repeat(72));
    for r in &t.rows {
        println!(
            "{:>6} | {:>9.4} | {:>10.4} | [{:>7.4},{:>7.4}] | [{:>7.4},{:>7.4}]",
            r.g, r.mean, r.variance, r.xl, r.xh, r.xl_inner, r.xh_inner
        );
    }
    let (am, av, al, ah) = t.actual;
    println!("{}", "-".repeat(72));
    println!(
        "{:>6} | {:>9.4} | {:>10.4} | [{:>7.4},{:>7.4}] |",
        "actual", am, av, al, ah
    );
    println!(
        "\npaper actuals: mean 3.17, variance 16.57, xl -1.5, xh 16.5\n\
         note: the paper's per-g bounds follow the inner convention; the outer\n\
         bounds here are guaranteed enclosures (see EXPERIMENTS.md)."
    );
    Ok(())
}
