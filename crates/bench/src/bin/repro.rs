//! Runs the complete reproduction suite — every table and figure of the
//! paper — and prints a consolidated report (markdown-ish, suitable for
//! pasting into EXPERIMENTS.md).
//!
//! Run with: `cargo run --release -p sna-bench --bin repro`

use sna_hist::RenderOptions;

fn main() -> Result<(), sna_bench::Error> {
    println!("# SNA reproduction run\n");

    // ------------------------------------------------------------------
    println!("## Table 1 — quadratic output range\n");
    let t1 = sna_bench::table1(16)?;
    println!("| method | range |");
    println!("|--------|-------|");
    println!("| IA  | {} |", t1.ia);
    println!(
        "| AA  | {} ± {} = [{}, {}] |",
        t1.aa_center,
        t1.aa_radius,
        t1.aa_center - t1.aa_radius,
        t1.aa_center + t1.aa_radius
    );
    println!(
        "| SNA (g={}) | [{:.4}, {:.4}] |",
        t1.sna_granularity,
        t1.sna.lo(),
        t1.sna.hi()
    );
    println!("| paper | IA [0,23] · AA 6.5±16.5 · true [5,23] |\n");

    // ------------------------------------------------------------------
    println!("## Table 2 — SNA statistics vs granularity\n");
    let t2 = sna_bench::table2(&[2, 4, 8, 16, 32, 64], 1_000_000)?;
    println!("| g | mean | variance | outer xl | outer xh | inner xl | inner xh |");
    println!("|---|------|----------|----------|----------|----------|----------|");
    for r in &t2.rows {
        println!(
            "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |",
            r.g, r.mean, r.variance, r.xl, r.xh, r.xl_inner, r.xh_inner
        );
    }
    let (am, av, al, ah) = t2.actual;
    println!("| actual | {am:.4} | {av:.4} | {al:.4} | {ah:.4} | — | — |");
    println!("| paper actual | 3.17 | 16.57 | -1.5 | 16.5 | | |\n");

    // ------------------------------------------------------------------
    println!("## Figure 1 — quadratic error histograms\n");
    for (g, hist) in sna_bench::figure1(&[8, 16])? {
        println!("granularity g = {g}:\n");
        println!("```");
        print!(
            "{}",
            hist.render_ascii(&RenderOptions {
                max_rows: 16,
                bar_width: 40,
                ..RenderOptions::default()
            })
        );
        println!("```\n");
    }

    // ------------------------------------------------------------------
    println!("## Figure 3 — RGB→YCrCb error PDFs (W = 12)\n");
    for (name, report) in sna_bench::figure3(12, 64)? {
        println!(
            "- **{name}**: mean {:.3e}, σ {:.3e}, bounds [{:.3e}, {:.3e}]",
            report.mean,
            report.std_dev(),
            report.support.0,
            report.support.1
        );
    }
    println!();

    // ------------------------------------------------------------------
    let word_lengths = [8u8, 16, 24, 32];
    for (idx, design) in sna_designs::Design::paper_suite().iter().enumerate() {
        println!("## Table {} — {}\n", idx + 3, design.description);
        let rows = sna_bench::design_table(design, &word_lengths)?;
        println!("| W | metric | fixed | optimized | improvement % |");
        println!("|---|--------|-------|-----------|---------------|");
        for r in &rows {
            println!(
                "| {} | area µm² | {:.0} | {:.0} | {:.2} |",
                r.w, r.fixed.0, r.optimized.0, r.improvement.0
            );
            println!(
                "| {} | power µW | {:.1} | {:.1} | {:.2} |",
                r.w, r.fixed.1, r.optimized.1, r.improvement.1
            );
            println!(
                "| {} | delay cyc | {} | {} | {:.2} |",
                r.w, r.fixed.2, r.optimized.2, r.improvement.2
            );
            println!("| {} | noise | {:.3e} | constrained | |", r.w, r.noise);
        }
        println!();
    }

    println!("done.");
    Ok(())
}
