//! Regenerates Table 4: fixed vs optimized word-length costs for
//! Design II (FIR-25).

fn main() -> Result<(), sna_bench::Error> {
    let design = sna_designs::fir25();
    let rows = sna_bench::design_table(&design, &[8, 16, 24, 32])?;
    print!(
        "{}",
        sna_bench::render_design_table("Design II (FIR-25)", &rows)
    );
    Ok(())
}
