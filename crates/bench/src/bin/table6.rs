//! Regenerates Table 6: fixed vs optimized word-length costs for
//! Design IV (DCT 4x4).

fn main() -> Result<(), sna_bench::Error> {
    let design = sna_designs::dct4x4();
    let rows = sna_bench::design_table(&design, &[8, 16, 24, 32])?;
    print!(
        "{}",
        sna_bench::render_design_table("Design IV (DCT 4x4)", &rows)
    );
    Ok(())
}
