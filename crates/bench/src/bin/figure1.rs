//! Regenerates Figure 1: output-error histograms of the quadratic at
//! granularities 8 and 16.

use sna_hist::RenderOptions;

fn main() -> Result<(), sna_bench::Error> {
    for (g, hist) in sna_bench::figure1(&[8, 16])? {
        println!("Figure 1: output histogram for the quadratic, g = {g}\n");
        print!(
            "{}",
            hist.render_ascii(&RenderOptions {
                max_rows: 24,
                bar_width: 48,
                show_cdf: true,
            })
        );
        println!(
            "mean {:.4}  variance {:.4}  support [{:.4}, {:.4}]\n",
            hist.mean(),
            hist.variance(),
            hist.support().0,
            hist.support().1
        );
    }
    Ok(())
}
