//! Regenerates Figure 3: error PDFs of the RGB→YCrCb converter outputs.

use sna_hist::RenderOptions;

fn main() -> Result<(), sna_bench::Error> {
    let w = 12;
    println!("Figure 3: error PDFs for the RGB outputs (SNA, W = {w})\n");
    for (name, report) in sna_bench::figure3(w, 64)? {
        println!(
            "output {name}: mean {:.4e}, variance {:.4e}, bounds [{:.4e}, {:.4e}]",
            report.mean, report.variance, report.support.0, report.support.1
        );
        if let Some(pdf) = &report.histogram {
            print!(
                "{}",
                pdf.render_ascii(&RenderOptions {
                    max_rows: 16,
                    bar_width: 44,
                    ..RenderOptions::default()
                })
            );
        }
        println!();
    }
    Ok(())
}
