//! Regenerates Table 1: error range of the quadratic by IA, AA, SNA.

fn main() -> Result<(), sna_bench::Error> {
    let t = sna_bench::table1(16)?;
    println!("Table 1: Error range for the quadratic equation.");
    println!("{:<8} | Output Range", "Method");
    println!("{}", "-".repeat(40));
    println!("{:<8} | y = {}", "IA", t.ia);
    println!(
        "{:<8} | y = {} + {}·εy  (⊆ [{}, {}])",
        "AA",
        t.aa_center,
        t.aa_radius,
        t.aa_center - t.aa_radius,
        t.aa_center + t.aa_radius
    );
    println!(
        "{:<8} | y ∈ [{:.4}, {:.4}]  (g = {})",
        "SNA",
        t.sna.lo(),
        t.sna.hi(),
        t.sna_granularity
    );
    println!("\npaper:   IA [0, 23] · AA 6.5 ± 16.5 · true range [5, 23]");
    Ok(())
}
