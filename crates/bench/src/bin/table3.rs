//! Regenerates Table 3: fixed vs optimized word-length costs for
//! Design I (order-18 difference equation).

fn main() -> Result<(), sna_bench::Error> {
    let design = sna_designs::diff_eq18();
    let rows = sna_bench::design_table(&design, &[8, 16, 24, 32])?;
    print!(
        "{}",
        sna_bench::render_design_table("Design I (order-18 difference equation)", &rows)
    );
    Ok(())
}
