//! Regenerates Table 5: fixed vs optimized word-length costs for
//! Design III (8-point FFT).

fn main() -> Result<(), sna_bench::Error> {
    let design = sna_designs::fft8();
    let rows = sna_bench::design_table(&design, &[8, 16, 24, 32])?;
    print!(
        "{}",
        sna_bench::render_design_table("Design III (8-point FFT)", &rows)
    );
    Ok(())
}
