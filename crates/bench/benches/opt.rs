//! Candidate-evaluation throughput of the word-length search loops: the
//! incremental [`sna_opt::NoiseEval`] against the from-scratch
//! [`sna_opt::Optimizer::noise_of`], on both noise backends.
//!
//! * `opt_na_candidate` — FIR-25 (linear, NA moment model): a candidate is
//!   one single-bit probe, the access pattern of greedy / annealing /
//!   exhaustive search.
//! * `opt_hist_candidate` — the paper's nonlinear quadratic (histogram
//!   fallback): scratch pays a full 64-bin propagation per candidate, the
//!   incremental path re-propagates only the moved node's downstream cone
//!   (memoized).
//!
//! Besides the Criterion groups, `main` measures sustained candidates/sec
//! for each mode, verifies incremental-vs-scratch agreement to 1e-12, and
//! writes `BENCH_opt.json` at the workspace root so CI tracks the
//! speedups over time.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_designs::{fir, quadratic, Design};
use sna_hls::SynthesisConstraints;
use sna_opt::Optimizer;

/// Deterministic move sequence: `(node, width)` pairs from an LCG.
fn move_sequence(opt: &Optimizer<'_>, n_nodes: usize, len: usize) -> Vec<(usize, u8)> {
    let min_w = opt.min_word_lengths().to_vec();
    let mut state: u64 = 0x5EED_CAFE_F00D_D00D;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..len)
        .map(|_| {
            let i = (lcg() as usize) % n_nodes;
            let span = 28u8.saturating_sub(min_w[i]).max(1);
            let w = min_w[i] + (lcg() % u64::from(span)) as u8;
            (i, w)
        })
        .collect()
}

struct Throughput {
    incremental: f64,
    scratch: f64,
    max_rel_err: f64,
}

/// Measures candidates/sec for both modes on one design and checks the
/// incremental results match the from-scratch reference within 1e-12.
fn measure(design: &Design, n_inc: usize, n_scr: usize, n_check: usize) -> Throughput {
    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )
    .expect("optimizer builds");
    let n_nodes = design.dfg.len();
    let start: Vec<u8> = opt.min_word_lengths().iter().map(|&m| m.max(16)).collect();
    let seq = move_sequence(&opt, n_nodes, n_inc.max(n_scr).max(n_check));

    // Equivalence: committed walk, compared against scratch every step.
    let mut ev = opt.evaluator(&start).expect("evaluator builds");
    let mut w = start.clone();
    let mut max_rel_err = 0.0f64;
    for &(i, nw) in &seq[..n_check] {
        let p = ev.set(i, nw).expect("incremental move");
        w[i] = nw;
        let scratch = opt.noise_of(&w).expect("scratch evaluation");
        let rel = (p - scratch).abs() / scratch.abs().max(1e-300);
        max_rel_err = max_rel_err.max(rel);
        assert!(
            rel <= 1e-12,
            "incremental {p:e} diverged from scratch {scratch:e} (rel {rel:e})"
        );
    }

    // Incremental throughput: probes (set + undo) from a fixed base — the
    // hot pattern of the search loops.
    let mut ev = opt.evaluator(&start).expect("evaluator builds");
    let t0 = Instant::now();
    for &(i, nw) in &seq[..n_inc] {
        std::hint::black_box(ev.probe(i, nw).expect("probe"));
    }
    let incremental = n_inc as f64 / t0.elapsed().as_secs_f64();

    // Scratch throughput: the same probes as full evaluations.
    let mut w = start.clone();
    let t0 = Instant::now();
    for &(i, nw) in &seq[..n_scr] {
        let old = w[i];
        w[i] = nw;
        std::hint::black_box(opt.noise_of(&w).expect("scratch evaluation"));
        w[i] = old;
    }
    let scratch = n_scr as f64 / t0.elapsed().as_secs_f64();

    Throughput {
        incremental,
        scratch,
        max_rel_err,
    }
}

fn bench_na_candidate(c: &mut Criterion) {
    let design = fir(25);
    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )
    .expect("optimizer builds");
    let start: Vec<u8> = opt.min_word_lengths().iter().map(|&m| m.max(16)).collect();
    let seq = move_sequence(&opt, design.dfg.len(), 4096);

    let mut group = c.benchmark_group("opt_na_candidate");
    let mut k = 0usize;
    let mut w = start.clone();
    group.bench_function("scratch", |b| {
        b.iter(|| {
            let (i, nw) = seq[k % seq.len()];
            k += 1;
            let old = w[i];
            w[i] = nw;
            let p = opt.noise_of(&w).expect("scratch");
            w[i] = old;
            p
        })
    });
    let mut ev = opt.evaluator(&start).expect("evaluator builds");
    let mut k = 0usize;
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let (i, nw) = seq[k % seq.len()];
            k += 1;
            ev.probe(i, nw).expect("probe")
        })
    });
    group.finish();
}

fn bench_hist_candidate(c: &mut Criterion) {
    let design = quadratic();
    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )
    .expect("optimizer builds");
    assert!(opt.na_model().is_none(), "quadratic uses the hist fallback");
    let start: Vec<u8> = opt.min_word_lengths().iter().map(|&m| m.max(16)).collect();
    let seq = move_sequence(&opt, design.dfg.len(), 512);

    let mut group = c.benchmark_group("opt_hist_candidate");
    group.sample_size(10);
    let mut k = 0usize;
    let mut w = start.clone();
    group.bench_function("scratch", |b| {
        b.iter(|| {
            let (i, nw) = seq[k % seq.len()];
            k += 1;
            let old = w[i];
            w[i] = nw;
            let p = opt.noise_of(&w).expect("scratch");
            w[i] = old;
            p
        })
    });
    let mut ev = opt.evaluator(&start).expect("evaluator builds");
    let mut k = 0usize;
    group.bench_function("incremental", |b| {
        b.iter(|| {
            let (i, nw) = seq[k % seq.len()];
            k += 1;
            ev.probe(i, nw).expect("probe")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_na_candidate, bench_hist_candidate);

fn main() {
    benches();

    // Smoke numbers for the perf trajectory (BENCH_opt.json).
    let na = measure(&fir(25), 100_000, 2_000, 200);
    let hist = measure(&quadratic(), 4_000, 250, 100);
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"opt\",\n",
            "  \"na_fir25\": {{\"incremental_cands_per_s\": {:.0}, ",
            "\"scratch_cands_per_s\": {:.0}, \"speedup\": {:.2}, ",
            "\"max_rel_err\": {:e}}},\n",
            "  \"hist_quadratic\": {{\"incremental_cands_per_s\": {:.0}, ",
            "\"scratch_cands_per_s\": {:.0}, \"speedup\": {:.2}, ",
            "\"max_rel_err\": {:e}}}\n",
            "}}\n"
        ),
        na.incremental,
        na.scratch,
        na.incremental / na.scratch,
        na.max_rel_err,
        hist.incremental,
        hist.scratch,
        hist.incremental / hist.scratch,
        hist.max_rel_err,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_opt.json");
    std::fs::write(&path, &json).expect("write BENCH_opt.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
