//! Cached-vs-cold request latency through the service layer — the number
//! the `CompileCache` exists to move.
//!
//! `cold` pays the full pipeline per request (lex + parse + lower +
//! NA-model build + evaluate) by using a fresh cache every iteration;
//! `cached` keeps one warm cache, so repeats skip straight to the
//! `O(#sources)` evaluation. Run on the order-18 difference equation
//! (`diffeq.sna`), whose feedback makes the impulse-response model build
//! the dominant cost, and on the protocol handler end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use sna_service::exec::{analyze, AnalyzeEngine, AnalyzeParams};
use sna_service::CompileCache;

fn diffeq_source() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join("diffeq.sna");
    std::fs::read_to_string(path).expect("diffeq.sna exists")
}

fn na_params() -> AnalyzeParams {
    AnalyzeParams {
        engine: AnalyzeEngine::Na,
        bits: 12,
        bins: 64,
    }
}

fn bench_cold_vs_cached_analyze(c: &mut Criterion) {
    let source = diffeq_source();
    let params = na_params();

    let mut group = c.benchmark_group("service_analyze_diffeq_na");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = CompileCache::new();
            let (entry, _) = cache.get_or_compile(&source).unwrap();
            std::hint::black_box(analyze(&entry, &params).unwrap())
        })
    });
    let warm = CompileCache::new();
    warm.get_or_compile(&source).unwrap().0.na_model().unwrap();
    group.bench_function("cached", |b| {
        b.iter(|| {
            let (entry, lookup) = warm.get_or_compile(&source).unwrap();
            assert!(lookup.is_hit());
            std::hint::black_box(analyze(&entry, &params).unwrap())
        })
    });
    group.finish();
}

fn bench_protocol_handler(c: &mut Criterion) {
    let source = diffeq_source().replace('\n', "\\n");
    let line =
        format!(r#"{{"cmd": "analyze", "source": "{source}", "engine": "na", "pdf": false}}"#);

    let mut group = c.benchmark_group("service_handle_line_diffeq");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let cache = CompileCache::new();
            std::hint::black_box(sna_service::handle_line(&cache, &line))
        })
    });
    let warm = CompileCache::new();
    let _ = sna_service::handle_line(&warm, &line);
    group.bench_function("cached", |b| {
        b.iter(|| std::hint::black_box(sna_service::handle_line(&warm, &line)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_cached_analyze,
    bench_protocol_handler
);
criterion_main!(benches);
