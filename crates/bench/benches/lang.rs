//! Front-end throughput: lex + parse + lower for `.sna` sources — the
//! per-request cost every future batch/server mode pays before any
//! analysis runs.
//!
//! Benchmarked on the largest shipped example (`fir.sna`, 99 nodes) and
//! on synthetically scaled FIR programs (256/1024 taps) to expose the
//! scaling behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fir_example_source() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join("fir.sna");
    std::fs::read_to_string(path).expect("fir.sna exists")
}

/// A synthetic direct-form FIR of `taps` taps, mirroring `fir.sna`.
fn synthetic_fir(taps: usize) -> String {
    let mut out = String::from("input x in [-1, 1];\n");
    for k in 1..taps {
        let prev = if k == 1 {
            "x".to_string()
        } else {
            format!("x{}", k - 1)
        };
        out.push_str(&format!("x{k} = delay {prev};\n"));
    }
    out.push_str("y = 0.125*x");
    for k in 1..taps {
        out.push_str(&format!("\n  + 0.125*x{k}"));
    }
    out.push_str(";\noutput y;\n");
    out
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let source = fir_example_source();
    let mut group = c.benchmark_group("lang_fir25");
    group.sample_size(20);
    group.bench_function("lex", |b| {
        b.iter(|| std::hint::black_box(sna_lang::lex(&source).unwrap()))
    });
    group.bench_function("parse", |b| {
        b.iter(|| std::hint::black_box(sna_lang::parse(&source).unwrap()))
    });
    let program = sna_lang::parse(&source).unwrap();
    group.bench_function("lower", |b| {
        b.iter(|| std::hint::black_box(sna_lang::lower(&program).unwrap()))
    });
    group.bench_function("compile", |b| {
        b.iter(|| std::hint::black_box(sna_lang::compile(&source).unwrap()))
    });
    group.finish();
}

fn bench_compile_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lang_compile_scaling");
    group.sample_size(10);
    for taps in [256usize, 1024] {
        let source = synthetic_fir(taps);
        group.bench_with_input(BenchmarkId::from_parameter(taps), &source, |b, src| {
            b.iter(|| std::hint::black_box(sna_lang::compile(src).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_stages, bench_compile_scaling);
criterion_main!(benches);
