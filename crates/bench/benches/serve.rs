//! Server throughput over loopback TCP — the event-loop transport
//! measured end-to-end (socket framing + cache + engine), the way a
//! client fleet sees it.
//!
//! Three regimes, all against one `spawn_server` instance:
//!
//! * `cold` — every request carries a *distinct* source text, so each
//!   pays parse + lower + model build (a compile-cache miss).
//! * `cached` — the same source repeated: the per-request cost collapses
//!   to a cache hit plus one NA evaluation (the paper's `O(#sources)`
//!   economics, served over a socket).
//! * `pipelined` — 8 concurrent clients, each pipelining batches of the
//!   cached request: the reactor multiplexes while the worker pool fans
//!   out, which is the regime the `--max-conns`/backpressure machinery
//!   exists for.
//!
//! `main` also smoke-checks the observability plane — the final `stats`
//! request must reconcile with the requests sent — then drains the
//! server via `shutdown()` and writes `BENCH_serve.json` at the
//! workspace root for CI.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_service::{spawn_server, CompileCache, Json, ServerConfig, ServerHandle, StatsRegistry};

/// A linear two-tap source, unique per `i` so cold requests never alias.
fn source(i: usize) -> String {
    format!(
        "input x in [-1, 1];\\ny = {:.9}*x + 0.25*x;\\noutput y;\\n",
        0.5 + (i as f64 + 1.0) * 1e-6
    )
}

fn analyze_request(src: &str) -> String {
    let mut line = Json::Obj(vec![
        ("cmd".to_string(), Json::str("analyze")),
        ("source".to_string(), Json::str(src.replace("\\n", "\n"))),
        ("bits".to_string(), Json::int(8)),
        ("pdf".to_string(), Json::Bool(false)),
    ])
    .to_compact();
    line.push('\n');
    line
}

fn start_server() -> (ServerHandle, Arc<StatsRegistry>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let stats = Arc::new(StatsRegistry::new());
    let handle = spawn_server(
        listener,
        Arc::new(CompileCache::new()),
        Arc::clone(&stats),
        ServerConfig::default(),
    )
    .expect("spawn server");
    (handle, stats)
}

fn connect(handle: &ServerHandle) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn round_trip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> Json {
    stream.write_all(request.as_bytes()).expect("send");
    let mut line = String::new();
    assert!(reader.read_line(&mut line).expect("recv") > 0, "server EOF");
    let resp = Json::parse(line.trim()).expect("valid response JSON");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    resp
}

/// Serial round-trips; `distinct` decides cold-vs-cached. Returns
/// requests/sec.
fn measure_serial(handle: &ServerHandle, iters: usize, distinct: bool) -> f64 {
    let (mut stream, mut reader) = connect(handle);
    // Warm the one shared source for the cached regime.
    if !distinct {
        round_trip(&mut stream, &mut reader, &analyze_request(&source(0)));
    }
    let t0 = Instant::now();
    for i in 0..iters {
        let src = if distinct {
            source(1000 + i)
        } else {
            source(0)
        };
        round_trip(&mut stream, &mut reader, &analyze_request(&src));
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

/// 8 clients × `batches` batches of `depth` pipelined cached requests.
/// Returns aggregate requests/sec.
fn measure_pipelined(handle: &ServerHandle, batches: usize, depth: usize) -> f64 {
    const CLIENTS: usize = 8;
    // Warm the cache once so every client measures the hit path.
    let (mut stream, mut reader) = connect(handle);
    round_trip(&mut stream, &mut reader, &analyze_request(&source(0)));
    drop((stream, reader));

    let t0 = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let addr = handle.local_addr();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let request = analyze_request(&source(0));
                let batch = request.repeat(depth);
                for _ in 0..batches {
                    writer.write_all(batch.as_bytes()).expect("send batch");
                    for _ in 0..depth {
                        let mut line = String::new();
                        assert!(reader.read_line(&mut line).expect("recv") > 0);
                        let resp = Json::parse(line.trim()).expect("valid response");
                        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    (CLIENTS * batches * depth) as f64 / t0.elapsed().as_secs_f64()
}

/// Criterion series: the single-request cached round-trip, the number a
/// latency dashboard would alert on.
fn bench_serve_round_trip(c: &mut Criterion) {
    let (handle, _stats) = start_server();
    let (mut stream, mut reader) = connect(&handle);
    let request = analyze_request(&source(0));
    round_trip(&mut stream, &mut reader, &request); // warm
    let mut group = c.benchmark_group("serve");
    group.bench_function("cached_round_trip", |b| {
        b.iter(|| round_trip(&mut stream, &mut reader, &request));
    });
    group.finish();
    drop((stream, reader));
    handle.shutdown_and_join().expect("clean shutdown");
}

criterion_group!(benches, bench_serve_round_trip);

fn main() {
    benches();

    let (handle, _stats) = start_server();
    let cold_rps = measure_serial(&handle, 200, true);
    let cached_rps = measure_serial(&handle, 500, false);
    let pipelined_rps = measure_pipelined(&handle, 10, 32);

    // The observability plane must reconcile: ask the server what it saw.
    let (mut stream, mut reader) = connect(&handle);
    let resp = round_trip(&mut stream, &mut reader, "{\"cmd\":\"stats\"}\n");
    let result = resp.get("result").expect("stats result");
    let requests = result
        .get("counters")
        .and_then(|c| c.get("requests"))
        .and_then(Json::as_f64)
        .expect("requests counter");
    // 200 cold + 500+1 cached + 8*10*32+1 pipelined + 1 stats.
    let expected = 200.0 + 501.0 + 2561.0 + 1.0;
    assert_eq!(requests, expected, "registry lost requests");
    let p99 = result
        .get("verbs")
        .and_then(|v| v.get("analyze"))
        .and_then(|h| h.get("p99_us"))
        .and_then(Json::as_f64)
        .expect("analyze p99 estimate");
    drop((stream, reader));
    handle.shutdown_and_join().expect("clean shutdown");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"cold_rps\": {:.1},\n",
            "  \"cached_rps\": {:.1},\n",
            "  \"pipelined_rps\": {:.1},\n",
            "  \"analyze_p99_us\": {:.1},\n",
            "  \"requests_reconciled\": {}\n",
            "}}\n"
        ),
        cold_rps, cached_rps, pipelined_rps, p99, expected as u64,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
