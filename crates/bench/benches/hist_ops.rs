//! Performance of the histogram-arithmetic kernels versus granularity —
//! the computational trade-off the paper highlights ("higher granularity
//! produces higher precision results but with more calculation
//! overheads").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_hist::Histogram;

fn bench_binary_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hist_binary");
    for &bins in &[16usize, 64, 256] {
        let a = Histogram::uniform(0.0, 1.0, bins).unwrap();
        let b = Histogram::triangular(-1.0, 1.0, bins).unwrap();
        group.bench_with_input(BenchmarkId::new("add_exact", bins), &bins, |bench, _| {
            bench.iter(|| std::hint::black_box(a.add(&b).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("mul", bins), &bins, |bench, _| {
            bench.iter(|| std::hint::black_box(a.mul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_unary_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hist_unary");
    for &bins in &[64usize, 256] {
        let x = Histogram::unit_symbol(bins).unwrap();
        group.bench_with_input(BenchmarkId::new("sqr_exact", bins), &bins, |bench, _| {
            bench.iter(|| std::hint::black_box(x.sqr().unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("quantile", bins), &bins, |bench, _| {
            bench.iter(|| std::hint::black_box(x.quantile(0.99)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binary_ops, bench_unary_ops);
criterion_main!(benches);
