//! Cost of the SNA engines: the exact Cartesian method (exponential in
//! granularity — Tables 1–2), the scalable DFG engine (Figure 3), and the
//! one-off LTI model build versus its per-configuration evaluation — the
//! asymmetry that makes word-length search affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_bench::{quadratic_fn, quadratic_inputs};
use sna_core::{CartesianEngine, DfgEngine, EngineOptions, NaModel};
use sna_dfg::LtiOptions;
use sna_fixp::WlConfig;

fn bench_cartesian_quadratic(c: &mut Criterion) {
    let mut group = c.benchmark_group("cartesian_quadratic");
    group.sample_size(10);
    for &g in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(g), &g, |bench, &g| {
            let inputs = quadratic_inputs(g).unwrap();
            let engine = CartesianEngine::new(128);
            bench.iter(|| std::hint::black_box(engine.analyze(&inputs, quadratic_fn).unwrap()))
        });
    }
    group.finish();
}

fn bench_dfg_engine_rgb(c: &mut Criterion) {
    let design = sna_designs::rgb_to_ycrcb();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 12).unwrap();
    let mut group = c.benchmark_group("dfg_engine_rgb");
    group.sample_size(20);
    for &bins in &[32usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |bench, &bins| {
            let engine = DfgEngine::new(EngineOptions::default().with_bins(bins));
            bench.iter(|| {
                std::hint::black_box(
                    engine
                        .analyze(&design.dfg, &cfg, &design.input_ranges)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_na_model(c: &mut Criterion) {
    let design = sna_designs::fir25();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 12).unwrap();
    let mut group = c.benchmark_group("na_model_fir25");
    group.sample_size(10);
    group.bench_function("build", |bench| {
        bench.iter(|| {
            std::hint::black_box(
                NaModel::build(&design.dfg, &design.input_ranges, &LtiOptions::default()).unwrap(),
            )
        })
    });
    let model = NaModel::build(&design.dfg, &design.input_ranges, &LtiOptions::default()).unwrap();
    group.bench_function("evaluate", |bench| {
        bench.iter(|| std::hint::black_box(model.total_power(&design.dfg, &cfg)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cartesian_quadratic,
    bench_dfg_engine_rgb,
    bench_na_model
);
criterion_main!(benches);
