//! Per-sample error-evaluation throughput: the scalar simulator pair
//! (`Simulator` + `FixedSimulator` in lockstep, the Monte-Carlo
//! harness's inner loop) against the `sna-vm` bytecode interpreter
//! sweeping `LANES` contiguous sample paths per instruction, on
//! FIR-25.
//!
//! Both sides do identical numerical work per sample — one exact and
//! one quantized evaluation of every node, error = quantized − exact —
//! so samples/sec is directly comparable.  The VM is bit-identical to
//! the scalar pair (asserted here on the first lane, and exhaustively
//! in `sna-core`'s differential suite); the win is purely layout:
//! flat registers, no per-step allocation, auto-vectorizable lane
//! loops.
//!
//! Besides the Criterion groups, `main` measures sustained samples/sec
//! for both backends plus the VM's cold compile+bind time, asserts the
//! ≥10× speedup the backend exists for, and writes `BENCH_eval.json`
//! at the workspace root so CI tracks the numbers over time.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_designs::{fir, Design};
use sna_dfg::Simulator;
use sna_fixp::{FixedSimulator, WlConfig};
use sna_vm::{Executable, Program};

const BITS: u8 = 12;
const LANES: usize = 512;

/// Deterministic in-range input frames (statistical quality is
/// irrelevant here; both backends consume the same distribution).
struct Lcg(u64);

impl Lcg {
    fn next_unit(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn frame(&mut self, design: &Design, lanes: usize) -> Vec<Vec<f64>> {
        design
            .input_ranges
            .iter()
            .map(|r| {
                (0..lanes)
                    .map(|_| r.lo() + (r.hi() - r.lo()) * self.next_unit())
                    .collect()
            })
            .collect()
    }
}

struct Measured {
    vm_samples_per_s: f64,
    scalar_samples_per_s: f64,
    compile_us: f64,
}

fn measure(design: &Design) -> Measured {
    let config = WlConfig::from_ranges(&design.dfg, &design.input_ranges, BITS)
        .expect("FIR-25 fits at 12 bits");

    // Cold compile+bind: graph → register-allocated bytecode → bound
    // executable, averaged over enough repeats to resolve microseconds.
    let reps = 200;
    let t0 = Instant::now();
    for _ in 0..reps {
        let program = Arc::new(Program::compile(&design.dfg));
        std::hint::black_box(Executable::new(program, &design.dfg, &config));
    }
    let compile_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    let program = Arc::new(Program::compile(&design.dfg));
    let exe = Executable::new(Arc::clone(&program), &design.dfg, &config);

    // Sanity: first VM lane bit-identical to the scalar pair before
    // timing anything.
    {
        let mut state = exe.new_state(LANES);
        let mut reference = Simulator::new(&design.dfg);
        let mut fixed = FixedSimulator::new(&design.dfg, &config);
        let mut rng = Lcg(0x0BEC);
        for _ in 0..16 {
            let frames = rng.frame(design, LANES);
            exe.step(&mut state, &frames).unwrap();
            let inputs: Vec<f64> = frames.iter().map(|f| f[0]).collect();
            let want_exact = reference.step(&inputs).unwrap();
            let want_fixed = fixed.step(&inputs).unwrap();
            assert_eq!(
                exe.exact_out(&state, 0)[0].to_bits(),
                want_exact[0].to_bits()
            );
            assert_eq!(
                exe.quant_out(&state, 0)[0].to_bits(),
                want_fixed[0].to_bits()
            );
        }
    }

    // VM throughput: samples = lanes × steps (one error observation per
    // lane per step).
    let steps = 256;
    let mut state = exe.new_state(LANES);
    let mut rng = Lcg(0x5EED);
    let frames: Vec<Vec<Vec<f64>>> = (0..8).map(|_| rng.frame(design, LANES)).collect();
    let t0 = Instant::now();
    for t in 0..steps {
        exe.step(&mut state, &frames[t % frames.len()]).unwrap();
        std::hint::black_box(exe.quant_out(&state, 0)[0]);
    }
    let vm_samples_per_s = (LANES * steps) as f64 / t0.elapsed().as_secs_f64();

    // Scalar-pair throughput: the Monte-Carlo inner loop, one sample
    // per step.
    let scalar_steps = 50_000;
    let mut reference = Simulator::new(&design.dfg);
    let mut fixed = FixedSimulator::new(&design.dfg, &config);
    let mut rng = Lcg(0x5EED);
    let inputs: Vec<Vec<f64>> = (0..64)
        .map(|_| {
            design
                .input_ranges
                .iter()
                .map(|r| r.lo() + (r.hi() - r.lo()) * rng.next_unit())
                .collect()
        })
        .collect();
    let t0 = Instant::now();
    for t in 0..scalar_steps {
        let frame = &inputs[t % inputs.len()];
        let e = reference.step(frame).unwrap();
        let q = fixed.step(frame).unwrap();
        std::hint::black_box(q[0] - e[0]);
    }
    let scalar_samples_per_s = scalar_steps as f64 / t0.elapsed().as_secs_f64();

    Measured {
        vm_samples_per_s,
        scalar_samples_per_s,
        compile_us,
    }
}

fn bench_eval(c: &mut Criterion) {
    let design = fir(25);
    let config = WlConfig::from_ranges(&design.dfg, &design.input_ranges, BITS).unwrap();

    let mut group = c.benchmark_group("eval_fir25");
    {
        let mut reference = Simulator::new(&design.dfg);
        let mut fixed = FixedSimulator::new(&design.dfg, &config);
        let mut rng = Lcg(1);
        let frame: Vec<f64> = design
            .input_ranges
            .iter()
            .map(|r| r.lo() + (r.hi() - r.lo()) * rng.next_unit())
            .collect();
        group.bench_function("scalar_pair_step", |b| {
            b.iter(|| {
                let e = reference.step(&frame).unwrap();
                let q = fixed.step(&frame).unwrap();
                q[0] - e[0]
            })
        });
    }
    {
        let program = Arc::new(Program::compile(&design.dfg));
        let exe = Executable::new(program, &design.dfg, &config);
        let mut state = exe.new_state(LANES);
        let mut rng = Lcg(1);
        let frames = rng.frame(&design, LANES);
        group.bench_function("vm_step_512_lanes", |b| {
            b.iter(|| {
                exe.step(&mut state, &frames).unwrap();
                exe.quant_out(&state, 0)[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eval);

fn main() {
    benches();

    let m = measure(&fir(25));
    let speedup = m.vm_samples_per_s / m.scalar_samples_per_s;
    assert!(
        speedup >= 10.0,
        "VM speedup {speedup:.1}× below the 10× floor \
         (vm {:.0}/s, scalar {:.0}/s)",
        m.vm_samples_per_s,
        m.scalar_samples_per_s
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"eval\",\n",
            "  \"fir25\": {{\"vm_samples_per_s\": {:.0}, ",
            "\"scalar_samples_per_s\": {:.0}, \"speedup\": {:.2}, ",
            "\"compile_us\": {:.1}}}\n",
            "}}\n"
        ),
        m.vm_samples_per_s, m.scalar_samples_per_s, speedup, m.compile_us,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_eval.json");
    std::fs::write(&path, &json).expect("write BENCH_eval.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
