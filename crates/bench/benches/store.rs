//! Persistent-store warm load vs cold compile, plus the Pareto-filter
//! scaling guard.
//!
//! Workload 1: FIR-25 (the paper's Design II). `cold` builds the full
//! stage set from scratch — range analysis, NA gain model, VM program.
//! `warm` reads the serialized skeleton back through
//! [`sna_store::Store::get`] and [`sna_core::Session::import_wire`],
//! which is what `sna serve --store-dir` pays after a restart. The
//! ISSUE acceptance floor is ≥5×.
//!
//! Workload 2: [`sna_opt::pareto_front`] over tens of thousands of
//! synthetic evaluations. The filter sorts into the canonical total
//! order and tests each point against the kept frontier only, so big
//! sweeps stay near `n log n` in practice; the absolute bound here is
//! the regression guard.
//!
//! `main` writes `BENCH_store.json` at the workspace root so CI tracks
//! both numbers.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_core::Session;
use sna_designs::fir;
use sna_hls::SynthesisConstraints;
use sna_opt::{pareto_front, Evaluation, Optimizer};
use sna_store::Store;

/// One fully built FIR-25 session (every stage forced).
fn built_session() -> Session {
    let design = fir(25);
    let session = Session::new(design.dfg, design.input_ranges).expect("session opens");
    session.na_model().expect("gain model builds");
    let _ = session.vm_program();
    session
}

struct WarmNumbers {
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    skeleton_bytes: usize,
}

/// Measures `iters` cold full-stage builds against `iters` store-backed
/// warm loads of the same design.
fn measure_warm_load(iters: usize) -> WarmNumbers {
    let dir = std::env::temp_dir().join(format!("sna-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Store::open(&dir).expect("store opens");
    let bytes = built_session().export_wire();
    store.put("skel", 1, &bytes).expect("skeleton stored");

    let design = fir(25);
    let mut cold_s = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        let session =
            Session::new(design.dfg.clone(), design.input_ranges.clone()).expect("session opens");
        session.na_model().expect("gain model builds");
        let _ = session.vm_program();
        cold_s += t0.elapsed().as_secs_f64();
        std::hint::black_box(session);
    }

    let mut warm_s = 0.0;
    for _ in 0..iters {
        let t0 = Instant::now();
        let payload = store.get("skel", 1).expect("skeleton loads");
        let session = Session::import_wire(&payload).expect("skeleton decodes");
        warm_s += t0.elapsed().as_secs_f64();
        // The imported session must answer without rebuilding anything.
        let stats = session.stats();
        assert_eq!(
            (stats.range_builds, stats.na_builds, stats.vm_compiles),
            (0, 0, 0),
            "warm load rebuilt a stage"
        );
        std::hint::black_box(session);
    }

    let _ = std::fs::remove_dir_all(&dir);
    WarmNumbers {
        cold_ms: cold_s * 1e3 / iters as f64,
        warm_ms: warm_s * 1e3 / iters as f64,
        speedup: cold_s / warm_s,
        skeleton_bytes: bytes.len(),
    }
}

/// `n` synthetic evaluations with pseudo-random (deterministic)
/// objectives, cloned off one real FIR-7 evaluation so every field is a
/// value the HLS flow could produce.
fn synthetic_points(template: &Evaluation, n: usize) -> Vec<Evaluation> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        // xorshift64* — deterministic across runs and platforms.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let mut e = template.clone();
            e.cost.area_um2 = 1e3 + 1e4 * next();
            e.cost.power_uw = 1e2 + 1e3 * next();
            e.cost.latency_cycles = 1 + (next() * 64.0) as u32;
            e.noise_power = 1e-9 * (1.0 + next());
            e
        })
        .collect()
}

struct FrontNumbers {
    n: usize,
    front_ms: f64,
    front_len: usize,
}

fn measure_front(template: &Evaluation, n: usize) -> FrontNumbers {
    let points = synthetic_points(template, n);
    let t0 = Instant::now();
    let front = pareto_front(points);
    let front_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!front.is_empty());
    FrontNumbers {
        n,
        front_ms,
        front_len: front.len(),
    }
}

fn bench_store_warm_load(c: &mut Criterion) {
    let bytes = built_session().export_wire();
    let mut group = c.benchmark_group("store_fir25");
    group.sample_size(10);
    group.bench_function("import_wire", |b| {
        b.iter(|| Session::import_wire(std::hint::black_box(&bytes)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_store_warm_load);

fn main() {
    benches();

    let warm = measure_warm_load(30);
    assert!(
        warm.speedup >= 5.0,
        "store warm load must be ≥5× a cold FIR-25 stage build, measured {:.2}×",
        warm.speedup
    );

    let design = fir(7);
    let session = Session::new(design.dfg, design.input_ranges).expect("session opens");
    let template = Optimizer::from_session(&session, SynthesisConstraints::default())
        .expect("optimizer builds")
        .uniform(10)
        .expect("uniform evaluation");
    let front20 = measure_front(&template, 20_000);
    let front40 = measure_front(&template, 40_000);
    assert!(
        front40.front_ms < 1500.0,
        "pareto_front over 40k points took {:.1} ms — the skyline filter regressed",
        front40.front_ms
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store\",\n",
            "  \"fir25_warm_load\": {{\"cold_build_ms\": {:.3}, ",
            "\"warm_load_ms\": {:.3}, \"speedup\": {:.2}, ",
            "\"skeleton_bytes\": {}}},\n",
            "  \"pareto_front\": [",
            "{{\"points\": {}, \"front_ms\": {:.3}, \"front_len\": {}}}, ",
            "{{\"points\": {}, \"front_ms\": {:.3}, \"front_len\": {}}}]\n",
            "}}\n"
        ),
        warm.cold_ms,
        warm.warm_ms,
        warm.speedup,
        warm.skeleton_bytes,
        front20.n,
        front20.front_ms,
        front20.front_len,
        front40.n,
        front40.front_ms,
        front40.front_len,
    );
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json");
    std::fs::write(&path, &json).expect("write BENCH_store.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
