//! Cost of the HLS flow (schedule + bind + cost) and of full word-length
//! optimization runs on the paper's designs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sna_fixp::WlConfig;
use sna_hls::{synthesize, SynthesisConstraints};
use sna_opt::Optimizer;

fn bench_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(20);
    for design in sna_designs::Design::paper_suite() {
        let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 16).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(design.name),
            &design,
            |bench, design| {
                bench.iter(|| {
                    std::hint::black_box(
                        synthesize(&design.dfg, &cfg, &SynthesisConstraints::default()).unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_optimize_fir(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    group.sample_size(10);
    for taps in [7usize, 15] {
        let design = sna_designs::fir(taps);
        group.bench_with_input(
            BenchmarkId::new("greedy_fir", taps),
            &design,
            |bench, design| {
                let opt = Optimizer::new(
                    &design.dfg,
                    &design.input_ranges,
                    SynthesisConstraints::default(),
                )
                .unwrap();
                let budget = opt.uniform(10).unwrap().noise_power;
                bench.iter(|| std::hint::black_box(opt.greedy(budget, 16).unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_synthesize, bench_optimize_fir);
criterion_main!(benches);
