//! Coefficient-swap recompilation vs full compilation through the
//! [`sna_core::Session`] API — the incremental-recompilation number the
//! unified-session redesign exists to move.
//!
//! Workload: FIR-25 (the paper's Design II), the design-space-exploration
//! inner loop of "retune one tap coefficient, re-derive the noise model".
//! `full` compiles the swapped graph from scratch (range analysis + one
//! impulse-response analysis per source); `swap` goes through
//! [`Session::with_coefficients`], which re-evaluates ranges only inside
//! the changed constant's downstream cone and re-simulates gains only for
//! sources whose transfer path crosses the changed coefficient.
//!
//! `main` verifies swap-vs-scratch agreement to 1e-12, measures both
//! paths, and writes `BENCH_session.json` at the workspace root so CI
//! tracks the speedup (the ISSUE acceptance floor is ≥5×).  A second
//! record measures the same loop end-to-end through the service compile
//! cache (`shape-hit` vs cold miss), which additionally pays parse+lower.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use sna_core::{AnalysisRequest, EngineKind, Session, WlChoice};
use sna_designs::fir;
use sna_service::exec::{self, AnalyzeParams};
use sna_service::{CompileCache, Lookup};

/// The center-tap coefficient vector variant `i` (one slot retuned per
/// iteration, every value distinct so no request is a byte-level repeat).
fn variant(base: &[f64], i: usize) -> Vec<f64> {
    let mut v = base.to_vec();
    let k = v.len() / 2;
    v[k] = 0.5 + (i as f64 + 1.0) * 1e-6;
    v
}

fn na_power(session: &Session) -> f64 {
    let report = session
        .analyze(&AnalysisRequest {
            engine: EngineKind::Na,
            words: WlChoice::Uniform(12),
            bins: 32,
            include_pdf: false,
            ..AnalysisRequest::default()
        })
        .expect("NA analysis succeeds");
    report.reports.iter().map(|(_, r)| r.power).sum()
}

struct SessionNumbers {
    full_ms: f64,
    swap_ms: f64,
    speedup: f64,
    max_rel_err: f64,
    gains_rebuilt: u64,
    gains_derived: u64,
    gains_reused: u64,
}

/// Session-level measurement: `iters` single-tap swaps, each timed as a
/// from-scratch compile and as an incremental swap, with agreement
/// checked on every iteration.
fn measure_session(iters: usize) -> SessionNumbers {
    let design = fir(25);
    let base =
        Session::new(design.dfg.clone(), design.input_ranges.clone()).expect("session opens");
    base.na_model().expect("FIR-25 gain model builds");
    let coeffs = base.coefficients();

    let mut full_s = 0.0;
    let mut swap_s = 0.0;
    let mut max_rel_err = 0.0f64;
    for i in 0..iters {
        let v = variant(&coeffs, i);

        let t0 = Instant::now();
        let cold = Session::new(
            design
                .dfg
                .with_const_values(&v)
                .expect("slot count matches"),
            design.input_ranges.clone(),
        )
        .expect("session opens");
        cold.na_model().expect("gain model builds");
        full_s += t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let swapped = base.with_coefficients(&v).expect("swap succeeds");
        swap_s += t0.elapsed().as_secs_f64();

        let (a, b) = (na_power(&swapped), na_power(&cold));
        let rel = (a - b).abs() / b.abs().max(1e-300);
        max_rel_err = max_rel_err.max(rel);
        assert!(
            rel <= 1e-12,
            "swap {a:e} diverged from scratch {b:e} (rel {rel:e})"
        );
    }
    let stats = base.stats();
    SessionNumbers {
        full_ms: full_s * 1e3 / iters as f64,
        swap_ms: swap_s * 1e3 / iters as f64,
        speedup: full_s / swap_s,
        max_rel_err,
        gains_rebuilt: stats.gains_rebuilt / iters as u64,
        gains_derived: stats.gains_derived / iters as u64,
        gains_reused: stats.gains_reused / iters as u64,
    }
}

/// The FIR-25 source with the center tap retuned (same shape, one new
/// constant) — the request stream a parameter sweep sends a server.
fn fir_source(i: usize) -> String {
    let source = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join("fir.sna");
    std::fs::read_to_string(source)
        .expect("fir.sna exists")
        .replace(
            "0.5008473037200887",
            &format!("{}", 0.5 + (i as f64 + 1.0) * 1e-6),
        )
}

struct CacheNumbers {
    miss_ms: f64,
    shape_hit_ms: f64,
    speedup: f64,
}

/// Cache-level measurement: every request is a *new* program text; the
/// cold side uses a fresh cache per request (full compile + model), the
/// warm side rides one cache's shape tier.
fn measure_cache(iters: usize) -> CacheNumbers {
    let params = AnalyzeParams {
        engine: EngineKind::Na,
        bits: 12,
        bins: 32,
    };

    let mut miss_s = 0.0;
    for i in 0..iters {
        let source = fir_source(i);
        let t0 = Instant::now();
        let cache = CompileCache::new();
        let (entry, lookup) = cache.get_or_compile(&source).unwrap();
        assert_eq!(lookup, Lookup::Miss);
        std::hint::black_box(exec::analyze(&entry, &params).unwrap());
        miss_s += t0.elapsed().as_secs_f64();
    }

    let warm = CompileCache::new();
    let (donor, _) = warm.get_or_compile(&fir_source(10_000_000)).unwrap();
    donor.na_model().unwrap();
    let mut hit_s = 0.0;
    for i in 0..iters {
        let source = fir_source(i);
        let t0 = Instant::now();
        let (entry, lookup) = warm.get_or_compile(&source).unwrap();
        assert_eq!(lookup, Lookup::ShapeHit);
        std::hint::black_box(exec::analyze(&entry, &params).unwrap());
        hit_s += t0.elapsed().as_secs_f64();
    }

    CacheNumbers {
        miss_ms: miss_s * 1e3 / iters as f64,
        shape_hit_ms: hit_s * 1e3 / iters as f64,
        speedup: miss_s / hit_s,
    }
}

fn bench_session_recompile(c: &mut Criterion) {
    let design = fir(25);
    let base = Session::new(design.dfg.clone(), design.input_ranges.clone()).unwrap();
    base.na_model().unwrap();
    let coeffs = base.coefficients();

    let mut group = c.benchmark_group("session_fir25_recompile");
    group.sample_size(10);
    let mut k = 0usize;
    group.bench_function("full", |b| {
        b.iter(|| {
            k += 1;
            let v = variant(&coeffs, k);
            let cold = Session::new(
                design.dfg.with_const_values(&v).unwrap(),
                design.input_ranges.clone(),
            )
            .unwrap();
            cold.na_model().unwrap();
            cold
        })
    });
    let mut k = 0usize;
    group.bench_function("coefficient_swap", |b| {
        b.iter(|| {
            k += 1;
            base.with_coefficients(&variant(&coeffs, k)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session_recompile);

fn main() {
    benches();

    let session = measure_session(60);
    let cache = measure_cache(40);
    assert!(
        session.speedup >= 5.0,
        "coefficient-swap recompile must be ≥5× a cold FIR-25 compile, measured {:.2}×",
        session.speedup
    );
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"session\",\n",
            "  \"fir25_session\": {{\"full_compile_ms\": {:.3}, ",
            "\"coefficient_swap_ms\": {:.3}, \"speedup\": {:.2}, ",
            "\"gains_rebuilt\": {}, \"gains_derived\": {}, \"gains_reused\": {}, ",
            "\"max_rel_err\": {:e}}},\n",
            "  \"fir25_cache\": {{\"miss_ms\": {:.3}, ",
            "\"shape_hit_ms\": {:.3}, \"speedup\": {:.2}}}\n",
            "}}\n"
        ),
        session.full_ms,
        session.swap_ms,
        session.speedup,
        session.gains_rebuilt,
        session.gains_derived,
        session.gains_reused,
        session.max_rel_err,
        cache.miss_ms,
        cache.shape_hit_ms,
        cache.speedup,
    );
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_session.json");
    std::fs::write(&path, &json).expect("write BENCH_session.json");
    println!("{json}");
    println!("wrote {}", path.display());
}
