//! # sna — Symbolic Noise Analysis for computational hardware optimization
//!
//! A from-scratch Rust reproduction of Ahmadi & Zwolinski, *"Symbolic Noise
//! Analysis Approach to Computational Hardware Optimization"* (DAC 2008):
//! finite-precision errors modelled as noise symbols with histogram PDFs,
//! propagated symbolically through datapaths, and used to drive
//! noise-constrained word-length optimization inside a high-level synthesis
//! flow.
//!
//! This facade re-exports the workspace crates as modules:
//!
//! | module | contents |
//! |---|---|
//! | [`interval`] | interval + affine arithmetic (the IA/AA baselines) |
//! | [`hist`] | histogram PDFs and Berleant-style histogram arithmetic |
//! | [`expr`] | noise symbols, multivariate polynomials, rational forms |
//! | [`dfg`] | dataflow graphs, simulation, range/LTI analysis |
//! | [`fixp`] | fixed-point formats, bit-true simulation, Monte Carlo |
//! | [`core`] | the SNA engines + classical NA baseline |
//! | [`hls`] | technology models, scheduling, binding, cost reports |
//! | [`designs`] | the paper's six case-study datapaths |
//! | [`opt`] | noise-constrained word-length optimizers |
//! | [`lang`] | the textual `.sna` datapath DSL |
//! | [`trace`] | streaming CSV trace ingestion + empirical input fitting |
//! | [`service`] | batch/server execution: compile cache, worker pool, wire protocol |
//!
//! # Quickstart
//!
//! ```
//! use sna::core::{AnalysisRequest, Budget, EngineKind, Session, WlChoice};
//! use sna::dfg::DfgBuilder;
//! use sna::interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy datapath: y = 0.3·x1 + 0.6·x2.
//! let mut b = DfgBuilder::new();
//! let x1 = b.input("x1");
//! let x2 = b.input("x2");
//! let t1 = b.mul_const(0.3, x1);
//! let t2 = b.mul_const(0.6, x2);
//! let y = b.add(t1, t2);
//! b.output("y", y);
//! let dfg = b.build()?;
//!
//! // One session per compiled datapath: ranges, gain models and views
//! // build lazily and are shared across requests.
//! let ranges = vec![Interval::new(-1.0, 1.0)?; 2];
//! let session = Session::new(dfg, ranges)?;
//!
//! // Symbolic noise analysis at 12 bits: full error PDF + exact
//! // moments + bounds, plus which engine actually ran and the timing.
//! let report = session.analyze(&AnalysisRequest {
//!     engine: EngineKind::Auto,
//!     words: WlChoice::Uniform(12),
//!     bins: 64,
//!     include_pdf: true,
//!     budget: Budget::unlimited(),
//! })?;
//! let noise = &report.reports[0].1;
//! println!("[{}] error ∈ [{:.2e}, {:.2e}], σ = {:.2e}",
//!          report.engine.name(),
//!          noise.support.0, noise.support.1, noise.std_dev());
//!
//! // Coefficient-level incremental recompilation: same shape, new
//! // constants — lowering and unaffected gains are reused.
//! let swapped = session.with_coefficients(&[0.25, 0.65])?;
//! assert_eq!(swapped.coefficients(), vec![0.25, 0.65]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sna_core as core;
pub use sna_designs as designs;
pub use sna_dfg as dfg;
pub use sna_expr as expr;
pub use sna_fixp as fixp;
pub use sna_hist as hist;
pub use sna_hls as hls;
pub use sna_interval as interval;
pub use sna_lang as lang;
pub use sna_opt as opt;
pub use sna_service as service;
pub use sna_trace as trace;
