//! # sna — Symbolic Noise Analysis for computational hardware optimization
//!
//! A from-scratch Rust reproduction of Ahmadi & Zwolinski, *"Symbolic Noise
//! Analysis Approach to Computational Hardware Optimization"* (DAC 2008):
//! finite-precision errors modelled as noise symbols with histogram PDFs,
//! propagated symbolically through datapaths, and used to drive
//! noise-constrained word-length optimization inside a high-level synthesis
//! flow.
//!
//! This facade re-exports the workspace crates as modules:
//!
//! | module | contents |
//! |---|---|
//! | [`interval`] | interval + affine arithmetic (the IA/AA baselines) |
//! | [`hist`] | histogram PDFs and Berleant-style histogram arithmetic |
//! | [`expr`] | noise symbols, multivariate polynomials, rational forms |
//! | [`dfg`] | dataflow graphs, simulation, range/LTI analysis |
//! | [`fixp`] | fixed-point formats, bit-true simulation, Monte Carlo |
//! | [`core`] | the SNA engines + classical NA baseline |
//! | [`hls`] | technology models, scheduling, binding, cost reports |
//! | [`designs`] | the paper's six case-study datapaths |
//! | [`opt`] | noise-constrained word-length optimizers |
//! | [`lang`] | the textual `.sna` datapath DSL |
//! | [`service`] | batch/server execution: compile cache, worker pool, wire protocol |
//!
//! # Quickstart
//!
//! ```
//! use sna::core::{EngineKind, SnaAnalysis};
//! use sna::dfg::DfgBuilder;
//! use sna::fixp::WlConfig;
//! use sna::interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A toy datapath: y = 0.3·x1 + 0.6·x2.
//! let mut b = DfgBuilder::new();
//! let x1 = b.input("x1");
//! let x2 = b.input("x2");
//! let t1 = b.mul_const(0.3, x1);
//! let t2 = b.mul_const(0.6, x2);
//! let y = b.add(t1, t2);
//! b.output("y", y);
//! let dfg = b.build()?;
//!
//! // 12-bit implementation, ranges [-1, 1].
//! let ranges = vec![Interval::new(-1.0, 1.0)?; 2];
//! let cfg = WlConfig::from_ranges(&dfg, &ranges, 12)?;
//!
//! // Symbolic noise analysis: full error PDF + exact moments + bounds.
//! let reports = SnaAnalysis::new(&dfg, &cfg, &ranges)
//!     .engine(EngineKind::Auto)
//!     .bins(64)
//!     .run()?;
//! let noise = &reports[0].1;
//! println!("error ∈ [{:.2e}, {:.2e}], σ = {:.2e}",
//!          noise.support.0, noise.support.1, noise.std_dev());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sna_core as core;
pub use sna_designs as designs;
pub use sna_dfg as dfg;
pub use sna_expr as expr;
pub use sna_fixp as fixp;
pub use sna_hist as hist;
pub use sna_hls as hls;
pub use sna_interval as interval;
pub use sna_lang as lang;
pub use sna_opt as opt;
pub use sna_service as service;
