//! Offline stand-in for the `criterion` crate (see `shims/README.md`).
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups with `sample_size` /
//! `bench_with_input` / `bench_function`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Reporting is plain
//! wall-clock text (mean / min per iteration) — no statistics, plots or
//! baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they wish.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A compound id: `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, recording mean and min per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches and lazy statics).
        black_box(f());
        // Calibrate: grow the batch until one batch takes ≥ ~1 ms.
        let mut batch = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt / batch as u32);
            iters += batch as u64;
            if total > Duration::from_millis(500) {
                break;
            }
        }
        self.result = Some((total / iters.max(1) as u32, min));
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((mean, min)) => println!(
                "bench {:<40} mean {:>12?}  min {:>12?}",
                format!("{}/{}", self.name, label),
                mean,
                min
            ),
            None => println!("bench {}/{label}: no measurement", self.name),
        }
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = id.label.clone();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Benchmarks a closure under a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = id.into().label.clone();
        self.run(&label, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            _criterion: self,
        };
        g.run(name, f);
        drop(g);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| black_box(2 * 2)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_runner() {
        benches();
    }
}
