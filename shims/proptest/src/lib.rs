//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the surface this workspace uses: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`], the [`Strategy`]
//! trait with `prop_map`/`prop_filter`/`prop_filter_map`, range / tuple /
//! [`Just`] / [`collection::vec`] strategies, and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the generated values in
//!   scope (the assertion message carries the details);
//! * **deterministic** — the RNG is seeded from the test function's name,
//!   so runs are reproducible without a failure-persistence file.

#![forbid(unsafe_code)]

use std::ops::Range;

// ----------------------------------------------------------------------
// RNG
// ----------------------------------------------------------------------

/// The deterministic generator driving every strategy.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary byte string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut sm = h;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

// ----------------------------------------------------------------------
// Config
// ----------------------------------------------------------------------

/// Per-`proptest!` block configuration (the `cases` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

// ----------------------------------------------------------------------
// Strategy
// ----------------------------------------------------------------------

/// A boxed strategy, as produced by [`Strategy::boxed`] / [`prop_oneof!`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `pred`, retrying on rejection.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Maps through a partial function, retrying when it returns `None`.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

const MAX_REJECTS: usize = 10_000;

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map: too many rejections ({})", self.whence);
    }
}

/// Uniform choice among boxed strategies — the engine of [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// Ranges sample uniformly over the half-open interval.

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (the `vec` subset).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Generates `Vec`s of values from `element`, sized by `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import target.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

// ----------------------------------------------------------------------
// Macros
// ----------------------------------------------------------------------

/// Defines deterministic randomized tests over strategies.
///
/// Supports the subset of real proptest syntax used in this workspace:
/// an optional leading `#![proptest_config(expr)]`, then any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` under a name the proptest API expects.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API expects.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the rest of the current case when the assumption fails.
///
/// The shim cannot restart a case mid-body, so a failed assumption simply
/// `return`s from the generated test function — later cases of the same
/// test are skipped too, which is conservative but sound.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::deterministic("shim-self-test");
        let s = (0.0..1.0f64, 5usize..10, -3i64..3);
        for _ in 0..1000 {
            let (f, u, i) = s.generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            assert!((5..10).contains(&u));
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn map_filter_and_union_compose() {
        let mut rng = TestRng::deterministic("compose");
        let even = (0u32..100).prop_map(|x| x * 2);
        let odd = (0u32..100).prop_map(|x| x * 2 + 1);
        let either = prop_oneof![even, odd];
        let mut seen_even = false;
        let mut seen_odd = false;
        for _ in 0..200 {
            let v = either.generate(&mut rng);
            assert!(v < 200);
            seen_even |= v % 2 == 0;
            seen_odd |= v % 2 == 1;
        }
        assert!(seen_even && seen_odd);
        let small = (0u32..100).prop_filter("small", |&x| x < 10);
        for _ in 0..50 {
            assert!(small.generate(&mut rng) < 10);
        }
        let halved = (0u32..100).prop_filter_map("even only", |x| (x % 2 == 0).then_some(x / 2));
        for _ in 0..50 {
            assert!(halved.generate(&mut rng) < 50);
        }
    }

    #[test]
    fn vec_sizes_follow_spec() {
        let mut rng = TestRng::deterministic("vec");
        let fixed = collection::vec(0.0..1.0f64, 7usize);
        assert_eq!(fixed.generate(&mut rng).len(), 7);
        let ranged = collection::vec(Just(1u8), 2usize..5);
        for _ in 0..100 {
            let n = ranged.generate(&mut rng).len();
            assert!((2..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0.0..1.0f64, n in 1usize..4) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n.min(3), n);
        }
    }

    proptest! {
        #[test]
        fn default_config_macro_works(v in collection::vec(-1.0..1.0f64, 0usize..6)) {
            prop_assert!(v.len() < 6);
        }
    }
}
