//! Offline stand-in for the `rand` crate (see `shims/README.md`).
//!
//! Implements the exact surface this workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], plus the
//! [`Rng::gen_range`] / [`Rng::gen_bool`] sampling methods. The core
//! generator is xoshiro256++ with SplitMix64 seeding — not the upstream
//! ChaCha12, so streams differ from real `rand`, but all call sites in
//! this workspace only rely on *determinism per seed*, not on particular
//! streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample one value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64());
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the (excluded) end point.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: bias is ≤ span/2⁶⁴, negligible for the
                // span sizes used in this workspace.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60))
            .count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..9);
            assert!((3..9).contains(&n));
            let i = rng.gen_range(-100i64..-50);
            assert!((-100..-50).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
